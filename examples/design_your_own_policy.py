#!/usr/bin/env python3
"""Use the analytical energy model as a design tool (Section 3.2).

Given a reuse-distance distribution, score *every* SLIP with the EOU's
Equation 5 coefficients and see why the optimizer picks what it picks —
the same exercise as the paper's Section 2 walk-through of soplex's
three access patterns.

Usage::

    python examples/design_your_own_policy.py
"""

from repro import LevelEnergyParams, SlipEnergyModel, SlipSpace
from repro.core.distribution import ReuseDistanceDistribution
from repro.core.eou import EnergyOptimizerUnit
from repro.sim.config import default_system


def build_l2_model():
    """The paper's L2: 64/64/128 KB sublevels at 21/33/50 pJ."""
    config = default_system()
    l2 = config.l2
    capacities = tuple(
        l2.sublevel_capacity_lines(i) for i in range(l2.num_sublevels)
    )
    space = SlipSpace(l2.sublevel_ways, capacities)
    params = LevelEnergyParams(
        sublevel_capacity_lines=capacities,
        sublevel_energy_pj=l2.sublevel_energy_pj,
        next_level_energy_pj=config.l3.average_access_energy_pj(),
    )
    return space, SlipEnergyModel(space, params)


# The Section 2 access patterns, as bin probabilities
# (<64K, <128K, <256K, >=256K):
PATTERNS = {
    "rorig  (18% fits 64K, rest misses)": (0.18, 0.0, 0.0, 0.82),
    "rperm  (always misses)": (0.0, 0.0, 0.0, 1.0),
    "cperm  (66% hot, 10% full-cache, 24% miss)": (0.66, 0.05, 0.05, 0.24),
    "resident loop (always fits 64K)": (1.0, 0.0, 0.0, 0.0),
    "uniform (no signal)": (0.25, 0.25, 0.25, 0.25),
}


def main() -> None:
    space, model = build_l2_model()
    eou = EnergyOptimizerUnit(model)

    print("Per-SLIP expected energy (pJ/access) at the paper's L2:\n")
    names = [str(space.slip_of(i)) for i in range(len(space))]
    width = max(len(n) for n in names)

    for label, probs in PATTERNS.items():
        print(f"--- {label} ---")
        energies = [
            (model.energy_of(i, probs), i) for i in range(len(space))
        ]
        for energy, slip_id in sorted(energies):
            marker = "  <== EOU choice" if slip_id == min(
                energies
            )[1] else ""
            print(f"  {names[slip_id]:{width}s}  {energy:7.1f}{marker}")
        print()

    # The same decision through the fixed-point hardware path:
    print("Hardware EEU check (4-bit counters, integer dot products):")
    for label, probs in PATTERNS.items():
        dist = ReuseDistanceDistribution((1024, 2048, 4096))
        dist.counts = [round(p * 15) for p in probs]
        chosen = eou.optimize(dist)
        print(f"  {label:45s} -> {space.slip_of(chosen)}")


if __name__ == "__main__":
    main()
