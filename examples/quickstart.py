#!/usr/bin/env python3
"""Quickstart: compare SLIP+ABP against a regular cache hierarchy.

Runs the soplex benchmark analog through five policies — the regular
baseline, the NuRAPID and LRU-PEA NUCA comparators, and SLIP with and
without the All-Bypass Policy — and prints the L2/L3 energy picture the
paper's Figure 9 is built from.

Usage::

    python examples/quickstart.py [trace_length]
"""

import sys

from repro import run_policy_sweep
from repro.sim.build import POLICY_NAMES


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    print(f"Simulating soplex analog ({length} accesses, 5 policies)...")
    results = run_policy_sweep("soplex", POLICY_NAMES, length=length)
    base = results["baseline"]

    header = (
        f"{'policy':10s} {'L2 energy':>12s} {'L3 energy':>12s} "
        f"{'L2 saved':>9s} {'L3 saved':>9s} {'speedup':>8s} "
        f"{'SL0 hits':>9s}"
    )
    print()
    print(header)
    print("-" * len(header))
    for policy in POLICY_NAMES:
        r = results[policy]
        l2 = r.level_energy_pj("L2") / 1e6
        l3 = r.level_energy_pj("L3") / 1e6
        sl0 = r.l2.sublevel_access_fractions()[0]
        print(
            f"{policy:10s} {l2:10.2f}uJ {l3:10.2f}uJ "
            f"{r.energy_savings_over(base, 'L2'):+9.1%} "
            f"{r.energy_savings_over(base, 'L3'):+9.1%} "
            f"{r.speedup_over(base):+8.2%} {sl0:9.1%}"
        )

    slip = results["slip_abp"]
    print()
    print(
        "SLIP+ABP insertion classes at L2 "
        f"(paper: ~27% full bypass): {slip.l2.insertions_by_class}"
    )
    print(
        "NuRAPID movement energy share: "
        f"{results['nurapid'].l2.energy.move_total_pj / results['nurapid'].l2.energy.total_pj:.0%} "
        "of its L2 energy — promotions are what the paper charges "
        "NUCA policies for."
    )


if __name__ == "__main__":
    main()
