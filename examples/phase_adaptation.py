#!/usr/bin/env python3
"""Watch SLIP adapt to a program phase change (Section 4.2).

mcf's analog switches halfway through: its huge arc array goes from
uniformly random (always misses -> worth bypassing) to hot-set dominated
(worth caching in sublevel 0). Time-based sampling is what lets SLIP
notice: stable pages periodically return to the sampling state, observe
the new behaviour under the Default SLIP, and get re-optimized.

The script snapshots the page-policy mix at intervals and prints how the
population shifts from bypassing policies to caching ones after the
phase change.

Usage::

    python examples/phase_adaptation.py [length]
"""

import sys
from collections import Counter

from repro.core.sampling import PageState
from repro.sim.build import build_hierarchy
from repro.sim.config import default_system
from repro.workloads.benchmarks import make_trace


def policy_census(runtime):
    """Count stable pages by their L2 SLIP class."""
    space = runtime.spaces["L2"]
    census = Counter()
    for entry in runtime.pages.values():
        if entry.state is PageState.STABLE:
            census[space.classify(entry.policies["L2"])] += 1
        else:
            census["(sampling)"] += 1
    return census


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    config = default_system()
    trace = make_trace("mcf", length)
    hierarchy = build_hierarchy(config, "slip_abp")
    # Accelerate page-state convergence to laptop-scale traces, as the
    # simulation drivers do during warmup.
    hierarchy.runtime.sampler.nsamp = 2
    hierarchy.runtime.sampler.nstab = 32

    checkpoints = 8
    step = length // checkpoints
    addresses = trace.addresses.tolist()
    writes = trace.is_write.tolist()

    print(f"mcf analog, {length} accesses; phase change at 50%\n")
    print(f"{'progress':>8s}  {'abp':>5s} {'partial':>7s} {'default':>7s} "
          f"{'other':>5s} {'sampling':>8s}")
    for chunk in range(checkpoints):
        lo, hi = chunk * step, (chunk + 1) * step
        for addr, wr in zip(addresses[lo:hi], writes[lo:hi]):
            hierarchy.access(addr, wr)
        census = policy_census(hierarchy.runtime)
        total = sum(census.values()) or 1
        print(
            f"{(chunk + 1) / checkpoints:>8.0%}  "
            f"{census['abp'] / total:>5.0%} "
            f"{census['partial_bypass'] / total:>7.0%} "
            f"{census['default'] / total:>7.0%} "
            f"{census['other'] / total:>5.0%} "
            f"{census['(sampling)'] / total:>8.0%}"
        )

    stats = hierarchy.runtime.stats
    print(f"\npolicy recomputations: {stats.policy_recomputations}, "
          f"stable->sampling returns: "
          f"{stats.state_transitions_to_sampling}")
    print(
        "After the 50% mark, pages holding the newly-hot arc clusters "
        "drift out of the bypassing classes (watch the partial/default "
        "columns grow) — the stable->sampling returns above are the "
        "Section 4.2 mechanism doing that re-learning. Without "
        "time-based sampling those pages would stay bypassed forever."
    )


if __name__ == "__main__":
    main()
