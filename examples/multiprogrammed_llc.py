#!/usr/bin/env python3
"""Two-core multiprogrammed run with a shared L3 (Figure 16 scenario).

Simulates a pair of benchmark analogs on private 256 KB L2s + shared
2 MB L3 under the baseline and SLIP+ABP, and reports the shared-LLC
energy and DRAM traffic picture. Interleaved cores roughly double each
line's observed reuse distance, which is why the paper's multicore L3
savings (47%) exceed the single-core number (22%).

Usage::

    python examples/multiprogrammed_llc.py [benchA] [benchB] [length]
"""

import sys

from repro import run_mix
from repro.workloads.benchmarks import BENCHMARKS


def main() -> None:
    bench_a = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    bench_b = sys.argv[2] if len(sys.argv) > 2 else "mcf"
    length = int(sys.argv[3]) if len(sys.argv) > 3 else 80_000
    for name in (bench_a, bench_b):
        if name not in BENCHMARKS:
            raise SystemExit(
                f"unknown benchmark {name!r}; pick from "
                f"{sorted(BENCHMARKS)}"
            )

    mix = (bench_a, bench_b)
    print(f"Running mix {bench_a}+{bench_b}, {length} accesses/core...")
    base = run_mix(mix, "baseline", length_per_core=length)
    slip = run_mix(mix, "slip_abp", length_per_core=length)

    print()
    print(f"{'metric':28s} {'baseline':>12s} {'slip_abp':>12s} {'delta':>8s}")
    rows = [
        ("shared L3 energy (uJ)", base.l3_energy_pj() / 1e6,
         slip.l3_energy_pj() / 1e6),
        ("both L2s energy (uJ)", base.l2_energy_pj() / 1e6,
         slip.l2_energy_pj() / 1e6),
        ("L2+L3 energy (uJ)", base.combined_energy_pj() / 1e6,
         slip.combined_energy_pj() / 1e6),
        ("DRAM accesses", float(base.dram_accesses),
         float(slip.dram_accesses)),
    ]
    for label, b, s in rows:
        delta = (s - b) / b if b else 0.0
        print(f"{label:28s} {b:12.2f} {s:12.2f} {delta:+8.1%}")

    print()
    print(f"L3 energy savings:   {slip.savings_over(base, 'L3'):+.1%} "
          "(paper average: +47%)")
    print(f"DRAM traffic saved:  {slip.savings_over(base, 'DRAM'):+.1%} "
          "(paper average: +5.5%)")
    fractions = slip.l3_stats.sublevel_access_fractions()
    print(f"Shared-L3 sublevel access fractions under SLIP: "
          f"{[f'{f:.0%}' for f in fractions]}")


if __name__ == "__main__":
    main()
