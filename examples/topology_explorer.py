#!/usr/bin/env python3
"""Explore how interconnect topology shapes SLIP's opportunity (§2.1).

Derives per-sublevel access energies for the hierarchical-bus,
set-interleaved and H-tree organizations of Figure 4, at 45 nm and
22 nm, and shows the wire-energy asymmetry that SLIP exploits: with way
interleaving the nearest ways are ~2.4x cheaper than the furthest; with
set interleaving or an H-tree there is *no* asymmetry and therefore no
reason to place or move lines at all.

Usage::

    python examples/topology_explorer.py
"""

from repro.topology import (
    htree_energies,
    l2_geometry_45nm,
    l3_geometry_45nm,
    scale_to_22nm,
    set_interleaved_energies,
)

SUBLEVELS = (4, 4, 8)


def describe(name, geometry):
    way_interleaved = geometry.sublevel_energies_pj(SUBLEVELS)
    uniform = geometry.uniform_access_energy_pj()
    set_interleaved = set_interleaved_energies(geometry, 3)
    htree = htree_energies(geometry, 3)

    print(f"=== {name} ({geometry.node.name}) ===")
    print(f"  bank energy: {geometry.bank_energy_pj:.1f} pJ, "
          f"row pitch: {geometry.row_pitch_mm:.2f} mm")
    print(f"  hierarchical bus, way interleaving (Fig 4a): "
          f"{[f'{e:.0f}' for e in way_interleaved]} pJ "
          f"(asymmetry {way_interleaved[-1] / way_interleaved[0]:.2f}x)")
    print(f"  hierarchical bus, set interleaving (Fig 4b): "
          f"{[f'{e:.0f}' for e in set_interleaved]} pJ (no asymmetry)")
    print(f"  H-tree (Fig 4c): {[f'{e:.0f}' for e in htree]} pJ "
          f"({htree[0] / uniform - 1:+.0%} vs the {uniform:.0f} pJ "
          "baseline)")
    print()


def main() -> None:
    for make, name in ((l2_geometry_45nm, "L2 (256 KB)"),
                       (l3_geometry_45nm, "L3 (2 MB)")):
        geometry = make()
        describe(name, geometry)
        describe(name, scale_to_22nm(geometry))

    print("Takeaways (matching the paper):")
    print(" * Way interleaving creates the 21->50 / 67->176 pJ spread of")
    print("   Table 2 — the asymmetry SLIP's insertion policies exploit.")
    print(" * Set interleaving and H-trees are uniform: no movement or")
    print("   placement can save wire energy there (and the H-tree pays")
    print("   ~37%/32% more on every access, Section 2.1).")
    print(" * At 22 nm the near/far spread grows relative to bank energy,")
    print("   which is why SLIP's savings improve with scaling (Section 6).")


if __name__ == "__main__":
    main()
