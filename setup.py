"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses PEP 517 editable installs which require building
a wheel; this offline environment lacks the `wheel` package, so
`python setup.py develop` (which needs only egg-info) is the fallback.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
