"""Figure 15: access fractions per sublevel for all policies."""

from _utils import run_once
from repro.experiments import fig15_sublevel_fractions


def test_fig15_sublevel_fractions_l2(benchmark, settings):
    data = run_once(
        benchmark, fig15_sublevel_fractions.average_fractions, settings,
        "L2",
    )
    print("\n" + fig15_sublevel_fractions.run(settings, level="L2")
          .formatted())
    # Baseline splits roughly by capacity (25/25/50).
    assert abs(data["baseline"][0] - 0.25) < 0.12
    # Promotion/insertion policies shift accesses toward sublevel 0.
    for policy in ("nurapid", "lru_pea", "slip_abp"):
        assert data[policy][0] > data["baseline"][0], policy
    # Plain SLIP (no ABP) shifts least and can tie baseline at small
    # trace scales; it must not fall materially below.
    assert data["slip"][0] > data["baseline"][0] - 0.03
    # The promotion-based NUCA policies concentrate hardest.
    assert data["nurapid"][0] > data["slip"][0]


def test_fig15_sublevel_fractions_l3(benchmark, settings):
    data = run_once(
        benchmark, fig15_sublevel_fractions.average_fractions, settings,
        "L3",
    )
    print("\n" + fig15_sublevel_fractions.run(settings, level="L3")
          .formatted())
    # At L3 reuse is low and NuRAPID's hits are often the first hit at
    # a demoted location (the promotion lands after the hit), so the
    # robust check is LRU-PEA, whose random insertion + promotion
    # clearly shifts toward sublevel 0.
    assert data["lru_pea"][0] > data["baseline"][0]
