"""Figure 10: full-system dynamic energy savings (paper: 0.73%/1.68%)."""

from _utils import run_once
from repro.experiments import fig10_fullsystem


def test_fig10_full_system_savings(benchmark, settings):
    table = run_once(benchmark, fig10_fullsystem.run, settings)
    print("\n" + table.formatted())
    average = table.rows[-1]
    abp = float(average[2].lstrip("+").rstrip("%")) / 100
    # Cache savings compress to low single digits at system level.
    # DRAM dominates full-system energy; at laptop-scale traces the
    # result sits within a couple of percent of baseline either way.
    assert -0.06 < abp < 0.10
