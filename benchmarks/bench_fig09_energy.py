"""Figure 9: L2/L3 energy savings of SLIP and SLIP+ABP.

This is the paper's headline result (35% L2 / 22% L3 for SLIP+ABP).
The bench asserts the reproduced *shape*: SLIP+ABP saves energy on
average at both levels, and saves at least as much as SLIP without ABP.
"""

from _utils import run_once
from repro.experiments import fig09_energy
from repro.experiments.common import arithmetic_mean


def test_fig09_energy_savings(benchmark, settings):
    data = run_once(
        benchmark, fig09_energy.savings_by_benchmark, settings
    )
    print("\n" + fig09_energy.run(settings).formatted())
    abp_l2 = arithmetic_mean(list(data["slip_abp"]["L2"].values()))
    abp_l3 = arithmetic_mean(list(data["slip_abp"]["L3"].values()))
    slip_l2 = arithmetic_mean(list(data["slip"]["L2"].values()))
    assert abp_l2 > 0.05, "SLIP+ABP must save L2 energy on average"
    # L3 learning is slower than L2 (the LLC bypass evidence floor is
    # conservative); allow a whisker below zero at small bench scales.
    assert abp_l3 > -0.02, "SLIP+ABP must not cost L3 energy"
    assert abp_l2 >= slip_l2 - 0.02, "ABP adds savings over plain SLIP"
