"""Figure 3: soplex per-region reuse-distance classes."""

from _utils import run_once
from repro.experiments import fig03_soplex


def test_fig03_soplex_regions(benchmark, settings):
    table = run_once(benchmark, fig03_soplex.run, settings)
    print("\n" + table.formatted())
    rows = {row[0]: row[1:] for row in table.rows}
    # rperm almost always misses (paper: ~100% beyond 256 KB).
    rperm_miss = float(rows["rperm"][3].rstrip("%"))
    assert rperm_miss > 80
    # cperm has a dominant 64 KB hot fraction (paper: 66%).
    cperm_hot = float(rows["cperm"][0].rstrip("%"))
    assert cperm_hot > 40
