"""Figure 1: lines by number of reuses before LLC eviction."""

from _utils import run_once
from repro.experiments import fig01_reuse


def test_fig01_reuse_histogram(benchmark, settings):
    table = run_once(benchmark, fig01_reuse.run, settings)
    print("\n" + table.formatted())
    average = table.rows[-1]
    nr0 = float(average[1].rstrip("%")) / 100
    # The paper's motivating observation: >70% of LLC lines die unused.
    assert nr0 > 0.60
