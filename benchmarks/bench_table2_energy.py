"""Table 2: derive the published energy parameters from wire geometry."""

import pytest

from _utils import run_once
from repro.topology import (
    l2_geometry_45nm,
    l3_geometry_45nm,
    scale_to_22nm,
)

SUBLEVELS = (4, 4, 8)


def derive_table2():
    l2 = l2_geometry_45nm()
    l3 = l3_geometry_45nm()
    return {
        "L2 sublevels": l2.sublevel_energies_pj(SUBLEVELS),
        "L2 baseline": l2.uniform_access_energy_pj(),
        "L3 sublevels": l3.sublevel_energies_pj(SUBLEVELS),
        "L3 baseline": l3.uniform_access_energy_pj(),
        "L2 htree": l2.htree_access_energy_pj(),
        "L3 htree": l3.htree_access_energy_pj(),
        "L2 22nm": scale_to_22nm(l2).sublevel_energies_pj(SUBLEVELS),
    }


def test_table2_energy_parameters(benchmark):
    table = run_once(benchmark, derive_table2)
    print("\nTable 2 (derived from wire geometry, paper values in []):")
    print(f"  L2 sublevels: "
          f"{[round(e, 1) for e in table['L2 sublevels']]} [21, 33, 50]")
    print(f"  L2 baseline:  {table['L2 baseline']:.1f} [39]")
    print(f"  L3 sublevels: "
          f"{[round(e, 1) for e in table['L3 sublevels']]} [67, 113, 176]")
    print(f"  L3 baseline:  {table['L3 baseline']:.1f} [136]")
    for ours, paper in zip(table["L2 sublevels"], (21, 33, 50)):
        assert ours == pytest.approx(paper, rel=0.05)
    for ours, paper in zip(table["L3 sublevels"], (67, 113, 176)):
        assert ours == pytest.approx(paper, rel=0.05)
    assert table["L2 baseline"] == pytest.approx(39, rel=0.05)
    assert table["L3 baseline"] == pytest.approx(136, rel=0.05)
