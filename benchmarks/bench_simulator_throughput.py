"""Microbenchmark: simulator throughput (accesses/second).

Not a paper figure — a regression guard for the substrate itself, and
the one bench where pytest-benchmark's multi-round statistics are
meaningful.
"""

import os

import pytest

from repro.experiments.parallel import RunRequest, run_jobs
from repro.sim.build import build_hierarchy
from repro.sim.config import default_system
from repro.sim.filtered import capture_front_end, run_trace_filtered
from repro.sim.single_core import run_trace
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import MemoryCaptureStore

N = 20_000
MEASURED = N - N // 4  # replay results count post-warmup accesses only


def drive(policy: str) -> int:
    config = default_system()
    hierarchy = build_hierarchy(config, policy)
    trace = make_trace("soplex", N)
    access = hierarchy.access
    for addr, wr in zip(trace.addresses.tolist(), trace.is_write.tolist()):
        access(addr, wr)
    return hierarchy.counters.demand_accesses


def test_throughput_baseline(benchmark):
    # One warmup round: the first build pays one-time import and
    # allocator costs that would otherwise dominate a 2-round mean.
    assert benchmark.pedantic(drive, args=("baseline",), rounds=5,
                              warmup_rounds=1, iterations=1) == N


def test_throughput_slip_abp(benchmark):
    assert benchmark.pedantic(drive, args=("slip_abp",), rounds=5,
                              warmup_rounds=1, iterations=1) == N


SWEEP_GRID = [
    RunRequest(b, p, length=N)
    for b in ("soplex", "lbm")
    for p in ("baseline", "slip", "slip_abp")
]
CELLS = [(r.benchmark, r.policy) for r in SWEEP_GRID]


def make_replay_cell(bench: str, policy: str):
    """A warmed zero-arg replay closure for one sweep grid cell.

    The first (capture-through) run fills a private in-memory store, so
    every call of the returned closure times exactly one warm replay —
    the unit the aggregate sweep bench repeats six times. Also used by
    ``scripts/throughput_gate.py`` for the per-kind replay gates.
    """
    config = default_system()
    trace = make_trace(bench, N)
    store = MemoryCaptureStore()
    run_trace_filtered(trace, policy, config=config, store=store)

    def replay() -> int:
        result = run_trace_filtered(trace, policy, config=config,
                                    store=store)
        return result.counters.demand_accesses

    return replay


@pytest.mark.parametrize("bench,policy", CELLS,
                         ids=[f"{b}-{p}" for b, p in CELLS])
def test_replay_cell(benchmark, bench, policy):
    # Per-kind warm replay: baseline cells take the batched
    # vector_replay kernel, slip/slip_abp cells the phase-split
    # vector_replay_slip kernel (scalar fallback would still pass but
    # shows up as a per-cell slowdown the aggregate sweep can hide).
    replay = make_replay_cell(bench, policy)
    assert benchmark.pedantic(replay, rounds=3, warmup_rounds=1,
                              iterations=1) == MEASURED


def make_capture_cell(bench: str):
    """A zero-arg cold-capture closure for one benchmark trace.

    Every call times one full front-end capture pass — the cost a cold
    sweep pays per (trace, front-end fingerprint) before any replay can
    happen. The batched vector_frontend kernel serves it by default;
    ``REPRO_VECTOR_FRONTEND=0`` would fall back to the scalar walk and
    show up as a multi-x slowdown. Also used by
    ``scripts/throughput_gate.py`` for the cold-capture gates.
    """
    config = default_system()
    trace = make_trace(bench, N)

    def capture() -> int:
        return capture_front_end(trace, config).n

    return capture


@pytest.mark.parametrize("bench", ("soplex", "lbm"))
def test_capture_cell(benchmark, bench):
    capture = make_capture_cell(bench)
    assert benchmark.pedantic(capture, rounds=3, warmup_rounds=1,
                              iterations=1) == N


DIRECT_CELLS = (("soplex", "baseline"), ("soplex", "slip_abp"))


def make_direct_cell(bench: str, policy: str):
    """A zero-arg composed direct-run closure for one cell.

    Every call is one full ``run_trace`` — the cold path a user pays
    without a capture store: front-end kernel capture composed with
    kernel replay (``try_run_direct``), scalar walk on decline. The
    first call builds the ReplayPlan; later calls hit the in-process
    direct-plan LRU, which is the steady state a sweep of cold cells
    sees. Also used by ``scripts/throughput_gate.py`` for the
    direct-drive gates.
    """
    config = default_system()
    trace = make_trace(bench, N)

    def direct() -> int:
        result = run_trace(trace, policy, config=config)
        return result.counters.demand_accesses

    return direct


@pytest.mark.parametrize("bench,policy", DIRECT_CELLS,
                         ids=[f"{b}-{p}" for b, p in DIRECT_CELLS])
def test_direct_cell(benchmark, bench, policy):
    # Composed pipeline vs the scalar `drive` above: the same trace and
    # geometry, so a decline regression (pipeline silently falling back
    # to the scalar walk) shows up as this converging on drive()'s cost.
    direct = make_direct_cell(bench, policy)
    assert benchmark.pedantic(direct, rounds=3, warmup_rounds=1,
                              iterations=1) == MEASURED


def sweep(jobs: int) -> int:
    report = run_jobs(SWEEP_GRID, jobs=jobs)
    return report.total_accesses


def test_sweep_throughput_serial(benchmark):
    # One warmup round populates the capture store (capture-through),
    # so the measured rounds time the replay path — the same protocol
    # as scripts/throughput_gate.py, which warms before timing.
    assert benchmark.pedantic(sweep, args=(1,), rounds=3,
                              warmup_rounds=1,
                              iterations=1) == N * len(SWEEP_GRID)


@pytest.mark.multiproc
@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="needs >=2 cores for a meaningful pool sweep")
def test_sweep_throughput_parallel(benchmark):
    jobs = min(4, os.cpu_count() or 1)
    assert benchmark.pedantic(sweep, args=(jobs,), rounds=2,
                              warmup_rounds=1,
                              iterations=1) == N * len(SWEEP_GRID)
