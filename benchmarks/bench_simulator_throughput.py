"""Microbenchmark: simulator throughput (accesses/second).

Not a paper figure — a regression guard for the substrate itself, and
the one bench where pytest-benchmark's multi-round statistics are
meaningful.
"""

import os

import pytest

from repro.experiments.parallel import RunRequest, run_jobs
from repro.sim.build import build_hierarchy
from repro.sim.config import default_system
from repro.workloads.benchmarks import make_trace

N = 20_000


def drive(policy: str) -> int:
    config = default_system()
    hierarchy = build_hierarchy(config, policy)
    trace = make_trace("soplex", N)
    access = hierarchy.access
    for addr, wr in zip(trace.addresses.tolist(), trace.is_write.tolist()):
        access(addr, wr)
    return hierarchy.counters.demand_accesses


def test_throughput_baseline(benchmark):
    # One warmup round: the first build pays one-time import and
    # allocator costs that would otherwise dominate a 2-round mean.
    assert benchmark.pedantic(drive, args=("baseline",), rounds=5,
                              warmup_rounds=1, iterations=1) == N


def test_throughput_slip_abp(benchmark):
    assert benchmark.pedantic(drive, args=("slip_abp",), rounds=5,
                              warmup_rounds=1, iterations=1) == N


SWEEP_GRID = [
    RunRequest(b, p, length=N)
    for b in ("soplex", "lbm")
    for p in ("baseline", "slip", "slip_abp")
]


def sweep(jobs: int) -> int:
    report = run_jobs(SWEEP_GRID, jobs=jobs)
    return report.total_accesses


def test_sweep_throughput_serial(benchmark):
    # One warmup round populates the capture store (capture-through),
    # so the measured rounds time the replay path — the same protocol
    # as scripts/throughput_gate.py, which warms before timing.
    assert benchmark.pedantic(sweep, args=(1,), rounds=2,
                              warmup_rounds=1,
                              iterations=1) == N * len(SWEEP_GRID)


@pytest.mark.multiproc
@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="needs >=2 cores for a meaningful pool sweep")
def test_sweep_throughput_parallel(benchmark):
    jobs = min(4, os.cpu_count() or 1)
    assert benchmark.pedantic(sweep, args=(jobs,), rounds=2,
                              warmup_rounds=1,
                              iterations=1) == N * len(SWEEP_GRID)
