"""Figure 14: insertions by optimal-SLIP class (27% L2 / 14% L3 bypass)."""

from _utils import run_once
from repro.experiments import fig14_insertion_classes
from repro.experiments.common import arithmetic_mean


def test_fig14_insertion_classes_l2(benchmark, settings):
    data = run_once(
        benchmark, fig14_insertion_classes.class_fractions, settings,
        "slip_abp", "L2",
    )
    print("\n" + fig14_insertion_classes.run(settings, level="L2")
          .formatted())
    abp = arithmetic_mean([v["abp"] for v in data.values()])
    covered = arithmetic_mean([
        v["abp"] + v["partial_bypass"] + v["default"]
        for v in data.values()
    ])
    assert abp > 0.05, "a meaningful fraction of L2 inserts fully bypass"
    assert covered > 0.9, "ABP+partial+default cover most insertions"


def test_fig14_insertion_classes_l3(benchmark, settings):
    data = run_once(
        benchmark, fig14_insertion_classes.class_fractions, settings,
        "slip_abp", "L3",
    )
    print("\n" + fig14_insertion_classes.run(settings, level="L3")
          .formatted())
    l3_abp = arithmetic_mean([v["abp"] for v in data.values()])
    assert l3_abp >= 0.0
