"""Section 7 ablation: rd-block granularity below page size."""

from _utils import run_once
from repro.experiments import ablations


def test_ablation_rdblock(benchmark, settings):
    table = run_once(benchmark, ablations.run_rdblock, settings,
                     (0, 16))
    print("\n" + table.formatted())
    savings = {
        row[0]: float(row[1].lstrip("+").rstrip("%")) for row in table.rows
    }
    # Sub-page blocks must stay in the same savings regime as per-page
    # profiles (they trade metadata traffic for profile sharpness).
    page = savings["page (4KB)"]
    block = savings["1024 B"]
    assert abs(block - page) < 25.0
