"""Section 7 ablation: SLIP under LRU / DRRIP / SHiP replacement."""

from _utils import run_once
from repro.experiments import ablations


def test_ablation_replacement(benchmark, settings):
    table = run_once(benchmark, ablations.run_replacement, settings)
    print("\n" + table.formatted())
    savings = {
        row[0]: float(row[1].lstrip("+").rstrip("%")) for row in table.rows
    }
    # The randomized-sublevel adaptation must not destroy SLIP's
    # benefit: all replacement policies land in a similar band.
    assert savings["drrip"] > savings["lru"] - 20.0
    assert savings["ship"] > savings["lru"] - 20.0
