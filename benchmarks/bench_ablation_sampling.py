"""Section 4.2 ablation: time-based sampling vs always-fetch metadata."""

from _utils import run_once
from repro.experiments import ablations


def test_ablation_sampling(benchmark, settings):
    table = run_once(benchmark, ablations.run_sampling, settings)
    print("\n" + table.formatted())
    for row in table.rows:
        always_l2 = float(row[1].lstrip("+").rstrip("%"))
        sampled_l2 = float(row[2].lstrip("+").rstrip("%"))
        # Sampling must cut L2 metadata traffic versus always-fetch
        # (paper: 27% -> <2% on the worst workload).
        assert sampled_l2 < always_l2, row[0]
