"""Figure 11: access vs movement energy breakdown per policy."""

from _utils import run_once
from repro.experiments import fig11_breakdown
from repro.experiments.common import arithmetic_mean


def test_fig11_breakdown_l2(benchmark, settings):
    data = run_once(
        benchmark, fig11_breakdown.normalized_breakdowns, settings, "L2"
    )
    print("\n" + fig11_breakdown.run(settings, level="L2").formatted())
    nurapid_total = arithmetic_mean(
        [sum(v["nurapid"]) for v in data.values()]
    )
    slip_total = arithmetic_mean(
        [sum(v["slip_abp"]) for v in data.values()]
    )
    nurapid_movement = arithmetic_mean(
        [v["nurapid"][1] for v in data.values()]
    )
    baseline_movement = arithmetic_mean(
        [v["baseline"][1] for v in data.values()]
    )
    # Paper: NuRAPID's movement energy explodes; SLIP lowers the total.
    assert nurapid_total > 1.2
    assert nurapid_movement > baseline_movement
    assert slip_total < 1.0


def test_fig11_breakdown_l3(benchmark, settings):
    data = run_once(
        benchmark, fig11_breakdown.normalized_breakdowns, settings, "L3"
    )
    print("\n" + fig11_breakdown.run(settings, level="L3").formatted())
    nurapid_total = arithmetic_mean(
        [sum(v["nurapid"]) for v in data.values()]
    )
    assert nurapid_total > 1.2
