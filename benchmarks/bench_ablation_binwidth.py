"""Section 6 ablation: distribution counter width (4b within 1% of 8b)."""

from _utils import run_once
from repro.experiments import ablations


def test_ablation_binwidth(benchmark, settings):
    table = run_once(benchmark, ablations.run_binwidth, settings)
    print("\n" + table.formatted())
    savings = {
        row[0]: float(row[1].lstrip("+").rstrip("%"))
        for row in table.rows
    }
    # 4-bit counters close to the 8-bit reference (paper: within 1%;
    # we allow a few points at laptop scale).
    assert abs(savings["4-bit"] - savings["8-bit"]) < 8.0
