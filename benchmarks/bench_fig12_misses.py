"""Figure 12: relative miss traffic including metadata overhead."""

from _utils import run_once
from repro.experiments import fig12_misses


def test_fig12_relative_misses_l2(benchmark, settings):
    table = run_once(benchmark, fig12_misses.run, settings, "L2")
    print("\n" + table.formatted())
    average_total = float(table.rows[-1][2].split()[0])
    # Paper: 0.976 for SLIP+ABP; we accept the laptop-scale band where
    # metadata warmup keeps total traffic near baseline.
    assert average_total < 1.15


def test_fig12_relative_misses_l3(benchmark, settings):
    table = run_once(benchmark, fig12_misses.run, settings, "L3")
    print("\n" + table.formatted())
    average_total = float(table.rows[-1][2].split()[0])
    assert average_total < 1.15
