"""Helpers shared by the benchmark modules."""


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are full simulations (seconds to minutes); the
    default multi-round calibration would multiply that for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
