"""Figure 13: speedups vs the regular hierarchy (paper: all within 1%)."""

from _utils import run_once
from repro.experiments import fig13_speedup


def test_fig13_speedups(benchmark, settings):
    table = run_once(benchmark, fig13_speedup.run, settings)
    print("\n" + table.formatted())
    average = table.rows[-1]
    for cell in average[1:]:
        value = float(cell.lstrip("+").rstrip("%")) / 100
        # The paper's central claim: every policy lands within a few
        # percent of baseline because DRAM time dominates.
        assert abs(value) < 0.05
