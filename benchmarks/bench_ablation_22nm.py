"""Section 6 ablation: 22 nm node (paper: savings grow to 36%/25%)."""

from _utils import run_once
from repro.experiments import ablations


def test_ablation_22nm(benchmark, settings):
    table = run_once(benchmark, ablations.run_22nm, settings)
    print("\n" + table.formatted())
    by_node = {row[0]: row[1:] for row in table.rows}
    l2_45 = float(by_node["45nm"][0].lstrip("+").rstrip("%"))
    l2_22 = float(by_node["22nm"][0].lstrip("+").rstrip("%"))
    # Savings must not shrink when wires dominate more of the energy.
    assert l2_22 >= l2_45 - 3.0
