"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables or figures and prints
it (run with ``-s`` to see them). Scale is controlled by the
``REPRO_BENCH_LENGTH`` environment variable (default 80k accesses per
benchmark — minutes, not hours; the committed EXPERIMENTS.md numbers use
300k+). Benches share one memoized policy sweep, so the first
figure bench pays for the simulations and the rest reuse them.
"""

import os

import pytest

from repro.experiments.common import ExperimentSettings, shared_cache

BENCH_LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", 80_000))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(length=BENCH_LENGTH, seed=0)


@pytest.fixture(scope="session")
def sweep(settings):
    return shared_cache(settings)
