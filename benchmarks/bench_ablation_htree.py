"""Section 2.1 ablation: H-tree interconnect (paper: +37% L2, +32% L3)."""

from _utils import run_once
from repro.experiments import ablations


def test_ablation_htree(benchmark, settings):
    table = run_once(benchmark, ablations.run_htree, settings)
    print("\n" + table.formatted())
    average = table.rows[-1]
    l2 = float(average[1].lstrip("+").rstrip("%")) / 100
    l3 = float(average[2].lstrip("+").rstrip("%")) / 100
    assert 0.2 < l2 < 0.7
    assert 0.2 < l3 < 0.7
