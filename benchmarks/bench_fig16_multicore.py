"""Figure 16: two-core shared-L3 mixes (paper: 47% L3, 5.5% DRAM)."""

from _utils import run_once
from repro.experiments import fig16_multicore


def test_fig16_multicore(benchmark, settings):
    table = run_once(benchmark, fig16_multicore.run, settings)
    print("\n" + table.formatted())
    average = table.rows[-1]
    l3 = float(average[1].lstrip("+").rstrip("%")) / 100
    # Shared-L3 savings must be positive and larger than zero on
    # average (the paper's multicore amplification effect).
    assert l3 > 0.0
