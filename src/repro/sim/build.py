"""Assemble a memory hierarchy for each evaluated policy.

Policy names follow the paper's figures:

* ``baseline``  — regular cache hierarchy (insert anywhere, never move);
* ``nurapid``   — NuRAPID with d-groups equal to the SLIP sublevels;
* ``lru_pea``   — LRU-PEA with bankclusters equal to the SLIP sublevels;
* ``slip``      — SLIP without the All-Bypass Policy in the pool;
* ``slip_abp``  — SLIP with ABP (the paper's headline configuration).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.controller import SlipPlacement
from ..core.energy_model import LevelEnergyParams
from ..core.runtime import BaselineRuntime, SlipRuntime
from ..mem.hierarchy import MemoryHierarchy
from ..mem.replacement import make_replacement
from ..policies.baseline import BaselinePlacement
from ..policies.lru_pea import LruPeaPlacement, PeaLruReplacement
from ..policies.nurapid import NurapidPlacement
from .config import SystemConfig

POLICY_NAMES: Tuple[str, ...] = (
    "baseline", "nurapid", "lru_pea", "slip", "slip_abp",
)

#: Which MMU runtime each policy builds. Policies sharing a kind also
#: share a policy-invariant front end (TLB behaviour and L1 leg), which
#: is what :mod:`repro.sim.filtered` exploits to capture it once.
RUNTIME_KINDS: Dict[str, str] = {
    "baseline": "baseline",
    "nurapid": "baseline",
    "lru_pea": "baseline",
    "slip": "slip",
    "slip_abp": "slip",
}


def runtime_kind(policy: str) -> str:
    """``"baseline"`` or ``"slip"`` for a known policy name."""
    try:
        return RUNTIME_KINDS[policy.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {POLICY_NAMES}"
        ) from None


def maybe_boost_sampler(runtime, enabled: bool = True) -> bool:
    """Apply the short-trace warmup sampling boost to a SLIP runtime.

    Scale compensation: our traces are ~1000x shorter than the paper's
    500M-instruction SimPoints, so with Nsamp=16/Nstab=256 most pages
    would never finish learning. Scaling both by 8 (to 2/32) shortens
    the page-learning timescale while keeping the distribution-fetch
    fraction Nsamp/(Nsamp+Nstab) at the paper's 5.9% exactly, so
    metadata-traffic results stay faithful. Shared by the direct and
    filtered-replay drivers so both configure the sampler identically.
    Returns True when the boost was applied.
    """
    if not (enabled and getattr(runtime, "slip_enabled", False)):
        return False
    sampler = runtime.sampler
    sampler.nsamp, sampler.nstab = 2, 32
    return True


def build_hierarchy(
    config: SystemConfig,
    policy: str,
    seed: int = 0,
    replacement: str = "lru",
    level_energy_overrides: Optional[Dict[str, LevelEnergyParams]] = None,
    always_sample: bool = False,
) -> MemoryHierarchy:
    """A single-core hierarchy running the named policy."""
    policy = policy.lower()
    mq_pj = config.slip.movement_queue_lookup_pj

    if policy == "baseline":
        return MemoryHierarchy(
            config,
            l2_placement=BaselinePlacement(),
            l3_placement=BaselinePlacement(),
            runtime=BaselineRuntime(config),
            l2_replacement=make_replacement(replacement, seed),
            l3_replacement=make_replacement(replacement, seed + 1),
        )

    if policy == "nurapid":
        return MemoryHierarchy(
            config,
            l2_placement=NurapidPlacement(mq_pj),
            l3_placement=NurapidPlacement(mq_pj),
            runtime=BaselineRuntime(config),
            l2_replacement=make_replacement(replacement, seed),
            l3_replacement=make_replacement(replacement, seed + 1),
        )

    if policy == "lru_pea":
        return MemoryHierarchy(
            config,
            l2_placement=LruPeaPlacement(mq_pj, seed=seed),
            l3_placement=LruPeaPlacement(mq_pj, seed=seed + 1),
            runtime=BaselineRuntime(config),
            l2_replacement=PeaLruReplacement(),
            l3_replacement=PeaLruReplacement(),
        )

    if policy in ("slip", "slip_abp"):
        runtime = SlipRuntime(
            config,
            allow_abp=(policy == "slip_abp"),
            seed=seed,
            level_energy_overrides=level_energy_overrides,
            always_sample=always_sample,
        )
        return MemoryHierarchy(
            config,
            l2_placement=SlipPlacement(runtime.spaces["L2"], runtime, mq_pj),
            l3_placement=SlipPlacement(runtime.spaces["L3"], runtime, mq_pj),
            runtime=runtime,
            l2_replacement=make_replacement(replacement, seed),
            l3_replacement=make_replacement(replacement, seed + 1),
            track_slip_metadata_energy=True,
        )

    raise ValueError(
        f"unknown policy {policy!r}; expected one of {POLICY_NAMES}"
    )
