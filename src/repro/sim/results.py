"""Result containers and energy roll-ups for simulation runs."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, Optional

from ..mem.hierarchy import HierarchyCounters, MemoryHierarchy
from ..mem.stats import DramStats, LevelStats
from .config import SystemConfig
from .timing import TimingResult


@dataclass
class RunResult:
    """Everything measured from one (policy, benchmark) simulation."""

    policy: str
    benchmark: str
    config: SystemConfig
    l1: LevelStats
    l2: LevelStats
    l3: LevelStats
    dram: DramStats
    counters: HierarchyCounters
    timing: TimingResult
    eou_energy_pj: Dict[str, float] = field(default_factory=dict)
    runtime_stats: Optional[object] = None

    # ------------------------------------------------------------------
    # Stable serialization (determinism checks, result archiving)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Every measured quantity as plain nested dicts/lists."""
        out: Dict[str, Any] = {
            "policy": self.policy,
            "benchmark": self.benchmark,
            "config": asdict(self.config),
            "l1": asdict(self.l1),
            "l2": asdict(self.l2),
            "l3": asdict(self.l3),
            "dram": asdict(self.dram),
            "counters": asdict(self.counters),
            "timing": asdict(self.timing),
            "eou_energy_pj": dict(self.eou_energy_pj),
            "runtime_stats": (
                asdict(self.runtime_stats)
                if is_dataclass(self.runtime_stats) else None
            ),
        }
        return out

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace variance.

        Two runs of the same simulation must produce byte-identical
        output here — the determinism smoke tests diff this string.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    # ------------------------------------------------------------------
    # Energy roll-ups
    # ------------------------------------------------------------------
    def level_energy_pj(self, level: str) -> float:
        """Total energy of one cache level, including its EOU share."""
        stats = {"L1": self.l1, "L2": self.l2, "L3": self.l3}[level]
        return stats.energy.total_pj + self.eou_energy_pj.get(level, 0.0)

    def full_system_energy_pj(self) -> float:
        """Core + L1 + L2 + L3 + DRAM dynamic energy (Figure 10)."""
        core = self.config.core
        core_pj = core.core_energy_pj_per_instr * self.timing.instructions
        return (
            core_pj
            + self.level_energy_pj("L1")
            + self.level_energy_pj("L2")
            + self.level_energy_pj("L3")
            + self.dram.energy_pj
        )

    # ------------------------------------------------------------------
    # Traffic metrics
    # ------------------------------------------------------------------
    def miss_traffic(self, level: str) -> Dict[str, int]:
        """Demand and metadata miss counts at one level (Figure 12)."""
        stats = {"L2": self.l2, "L3": self.l3}[level]
        return {
            "demand": stats.demand_misses,
            "metadata": stats.metadata_misses,
        }

    def dram_traffic(self) -> int:
        """Total DRAM accesses: fills + writebacks, demand + metadata."""
        return self.dram.accesses

    # ------------------------------------------------------------------
    # Comparisons against a baseline run
    # ------------------------------------------------------------------
    def energy_savings_over(self, baseline: "RunResult",
                            level: str) -> float:
        """Fractional energy savings at one level (0.35 == 35%)."""
        base = baseline.level_energy_pj(level)
        if base == 0:
            return 0.0
        return 1.0 - self.level_energy_pj(level) / base

    def full_system_savings_over(self, baseline: "RunResult") -> float:
        base = baseline.full_system_energy_pj()
        if base == 0:
            return 0.0
        return 1.0 - self.full_system_energy_pj() / base

    def relative_misses(self, baseline: "RunResult", level: str) -> float:
        """(demand + metadata misses) relative to baseline demand misses."""
        mine = self.miss_traffic(level)
        base = baseline.miss_traffic(level)["demand"]
        if base == 0:
            return 1.0
        return (mine["demand"] + mine["metadata"]) / base

    def relative_dram_traffic(self, baseline: "RunResult") -> float:
        base = baseline.dram_traffic()
        if base == 0:
            return 1.0
        return self.dram_traffic() / base

    def speedup_over(self, baseline: "RunResult") -> float:
        return self.timing.speedup_over(baseline.timing)


def collect_result(policy: str, benchmark: str, config: SystemConfig,
                   hierarchy: MemoryHierarchy,
                   timing: TimingResult) -> RunResult:
    """Snapshot a finished hierarchy into a RunResult."""
    # Deferred event-count accounting: fold counters into *_pj fields
    # (idempotent; a no-op when finalize already materialized).
    hierarchy.materialize_energy()
    eou = {}
    runtime = hierarchy.runtime
    if getattr(runtime, "slip_enabled", False):
        eou = {name: runtime.eou_energy_pj(name) for name in ("L2", "L3")}
    return RunResult(
        policy=policy,
        benchmark=benchmark,
        config=config,
        l1=hierarchy.l1.stats,
        l2=hierarchy.l2.stats,
        l3=hierarchy.l3.stats,
        dram=hierarchy.dram.stats,
        counters=hierarchy.counters,
        timing=timing,
        eou_energy_pj=eou,
        runtime_stats=getattr(runtime, "stats", None),
    )
