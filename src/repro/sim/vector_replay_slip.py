"""Phase-split replay kernel for slip-runtime-kind cells.

The scalar slip replay (:func:`repro.sim.filtered._replay_slip`) drives
the live :class:`~repro.core.runtime.SlipRuntime` at the captured TLB-
and L1-miss positions through the full hierarchy machinery — ``Line``
objects, ``FillOutcome`` allocation, placement dispatch and per-event
statistics bumps. Unlike the baseline-kind kernel
(:mod:`repro.sim.vector_replay`), the SLIP back end cannot be replayed
per set: reuse samples taken on L2/L3 hits and misses feed the page
state machine that steers *future* fills at both levels, so the two
levels must be co-simulated in global event order.

The kernel therefore splits the work differently:

* **Phase 1 (page-policy + placement pass)** — one merged-order sweep
  over the captured TLB-miss and L1-miss positions that (a) drives the
  real runtime's page machinery (``_key_metadata_fetches``: sampler RNG
  draws, page-state transitions, memoized EOU argmins and their live
  statistics) exactly where the scalar replay would, and (b) replays
  the L2/L3 back end against a *flat-array* way model — per-way tag /
  LRU-stamp / timestamp / SLIP-metadata columns plus per-set probe
  dicts — instead of ``Line`` objects. Cascade movement uses rotation
  tables precomputed for every ``(SLIP id, chunk)`` pair, extending the
  ``chunk0_orders_by_id`` idea from :class:`~repro.core.policy.
  SlipSpace` to the non-insertion chunks. The sweep emits one packed
  annotation byte per level event (``(kind << 4) | (sublevel + 1)``)
  plus a per-TLB-miss metadata-fetch count; only the rare events
  (insertions, bypasses, movements, departures, writebacks-out, DRAM
  writes) are tallied inline.
* **Phase 2 (accounting pass)** — ``np.bincount`` over the measured
  slice of the annotation streams yields the per-sublevel hit /
  absorbed-writeback counts and the miss totals; the measured-phase
  latency is an exact integer dot product of demand counts and level
  latencies. The ``slip-vector-replay-conservation`` invariant
  (:func:`repro.analysis.invariants.check_slip_vector_replay`)
  cross-balances the annotation streams against the capture, the live
  runtime ledger and the inline tallies before anything is published
  through :meth:`~repro.mem.stats.LevelStats.adopt_counts`.

Byte-identity with the scalar path holds because every stateful step is
reproduced in the scalar order: the level access counters tick per
event, the allocation rotors advance once per non-bypassed fill and
once per cascade victim selection, LRU stamps come from a per-level
monotone clock, timestamps quantize the post-tick access counter, and
the sampler RNG/EOU sequence is the real runtime's own. The scalar walk
remains the golden reference: ``REPRO_VECTOR_REPLAY=0``, SimCheck,
rd-block mode, non-SLIP placements, foreign runtimes and non-LRU
replacement ablations all decline cleanly (reason recorded via
:func:`repro.sim.vector_replay.record_decline`).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.invariants import check_slip_vector_replay
from ..core.controller import SlipPlacement
from ..core.sampling import PageState
from ..mem.replacement import LruReplacement
from ..mem.tlb import PTES_PER_LINE, PTE_TABLE_BASE
from ..workloads.capture_store import TraceCapture
from ..workloads.trace import Trace
from .vector_replay import record_decline, vector_enabled

_INF = float("inf")

#: Annotation kinds, packed as ``(kind << 4) | (sublevel + 1)`` into one
#: byte per level event. The sublevel bits stay zero where no way was
#: resolved (misses, forwarded writebacks).
ANN_DEMAND_HIT = 0
ANN_METADATA_HIT = 1
ANN_DEMAND_MISS = 2
ANN_METADATA_MISS = 3
ANN_WB_ABSORBED = 4
ANN_WB_FORWARDED = 5

_MISS_D = ANN_DEMAND_MISS << 4
_MISS_M = ANN_METADATA_MISS << 4
_FWD = ANN_WB_FORWARDED << 4
_ANN_SPAN = 96  # one past the largest code (_FWD + num_sublevels)

#: Insertion classes in tally order (Figure 14).
_CLASSES = ("abp", "partial_bypass", "default", "other")


class SlipLevelTally:
    """Measured-phase event counts for one SLIP-managed level.

    Hit / miss / absorbed-writeback columns come from the phase-2
    annotation bincount; the rest are phase-1 inline tallies. The
    conservation invariant cross-checks the two sources against each
    other and against the capture.
    """

    __slots__ = (
        "nsub", "dh_sub", "mh_sub", "demand_misses", "metadata_misses",
        "ins_sub", "bypasses", "class_counts", "mvr_sub", "mvw_sub",
        "wbin_sub", "wbout_sub", "forwarded_wbs", "hist",
    )

    def __init__(self, nsub: int) -> None:
        self.nsub = nsub
        self.dh_sub: List[int] = [0] * nsub
        self.mh_sub: List[int] = [0] * nsub
        self.demand_misses = 0
        self.metadata_misses = 0
        self.ins_sub: List[int] = [0] * nsub
        self.bypasses = 0
        self.class_counts: List[int] = [0, 0, 0, 0]
        self.mvr_sub: List[int] = [0] * nsub
        self.mvw_sub: List[int] = [0] * nsub
        self.wbin_sub: List[int] = [0] * nsub
        self.wbout_sub: List[int] = [0] * nsub
        self.forwarded_wbs = 0
        self.hist: List[int] = [0, 0, 0, 0]


def slip_eligible(hierarchy) -> bool:
    """Whether the SLIP kernel may replay this hierarchy.

    Exact-type checks, like :func:`~repro.sim.vector_replay.
    eligible_kind`: a subclassed placement or replacement could observe
    events the kernel never generates. Unlike the baseline-kind kernel,
    metadata-energy tracking is supported (SLIP levels always track it;
    the event count is a derived total here). Declines record a reason
    on ``hierarchy.vector_replay_decline``.
    """
    if hierarchy.simcheck is not None:
        record_decline(hierarchy, "simcheck")
        return False
    runtime = hierarchy.runtime
    if not getattr(runtime, "slip_enabled", False):
        record_decline(hierarchy, "kind:not-slip")
        return False
    if runtime.block_shift is not None:
        record_decline(hierarchy, "rd-block")
        return False
    for level, placement in ((hierarchy.l2, hierarchy.l2_placement),
                             (hierarchy.l3, hierarchy.l3_placement)):
        if type(placement) is not SlipPlacement:
            record_decline(
                hierarchy,
                f"placement:{level.cfg.name}:{type(placement).__name__}")
            return False
        if placement._paged_runtime is not runtime:
            record_decline(hierarchy, f"runtime:{level.cfg.name}:foreign")
            return False
        if type(level.replacement) is not LruReplacement:
            record_decline(
                hierarchy,
                f"replacement:{level.cfg.name}:"
                f"{type(level.replacement).__name__}")
            return False
    return True


_LEVEL_MODEL_CACHE: Dict[Tuple, Tuple] = {}


def _level_model(level, placement) -> Tuple:
    """Structural constants of one SLIP level for the flat-array model.

    ``rots[pid][chunk][r]`` is the way visit order ``choose_victim``
    produces for rotor value ``r`` on that chunk — the chunk-0 slice
    reproduces ``SlipSpace.chunk0_orders_by_id`` and the deeper chunks
    extend the same precomputation to cascade victim selection.
    Memoised on the hashable structural inputs (the SlipSpace way/class
    tables plus the level's sublevel/latency shape), so repeated
    replays of the same hierarchy shape skip the nested rotation-table
    construction per call.
    """
    space = placement.space
    nsub = level.cfg.num_sublevels
    sub = tuple(level.sublevel_by_way)
    lat = tuple(level.latency_by_way)
    key = (space.chunk_ways_by_id, space.class_by_id, nsub, sub, lat)
    cached = _LEVEL_MODEL_CACHE.get(key)
    if cached is None:
        rots = tuple(
            tuple(
                tuple(tuple(ways[r:] + ways[:r])
                      for r in range(len(ways)))
                for ways in per_chunk
            )
            for per_chunk in space.chunk_ways_by_id
        )
        cls_idx = tuple(_CLASSES.index(c) for c in space.class_by_id)
        lat_by_sub = [0] * nsub
        for way, s in enumerate(sub):
            lat_by_sub[s] = lat[way]
        cached = (rots, cls_idx, nsub, sub, tuple(lat_by_sub))
        _LEVEL_MODEL_CACHE[key] = cached
    return cached


_CODE_TABLE_CACHE: Dict[Tuple, Tuple] = {}


def _code_tables(sub: Tuple[int, ...], ways: int, size: int) -> Tuple:
    """Flat-index annotation code tables, memoised per geometry.

    Pure function of the way->sublevel map and the flat array size, so
    repeated replays of the same hierarchy shape (every sweep) skip the
    ~6 ms of tuple construction per call.
    """
    key = (sub, size)
    cached = _CODE_TABLE_CACHE.get(key)
    if cached is None:
        cached = (
            tuple(sub[i % ways] + 1 for i in range(size)),
            tuple(17 + sub[i % ways] for i in range(size)),
            tuple(65 + sub[i % ways] for i in range(size)),
        )
        _CODE_TABLE_CACHE[key] = cached
    return cached


# slip-audit: twin=slip-vector-replay role=fast
def replay_capture_vector_slip(hierarchy, trace: Trace,
                               capture: TraceCapture,
                               plan=None) -> bool:
    """Phase-split replay of a slip-kind capture; False to fall back.

    On success the hierarchy's L2/L3/DRAM statistics, counters and the
    live runtime/TLB ledgers hold exactly what the scalar replay would
    have produced; the cache arrays themselves stay empty (``finalize``
    adds nothing — resident-line reuse is accounted here) and the
    always-on ``capture-replay-conservation`` audit still runs in the
    caller. A verified :class:`~repro.sim.replay_plan.ReplayPlan`
    supplies the captured-position address/page/PTE resolutions (and
    their sentinel-terminated list forms) precomputed; ``plan=None``
    derives them locally with the same arithmetic.
    """
    from .kernel_report import record_success
    if not vector_enabled():
        record_decline(hierarchy, "env:REPRO_VECTOR_REPLAY")
        return False
    if not slip_eligible(hierarchy):
        return False
    record_success(hierarchy, "replay")

    runtime = hierarchy.runtime
    l2, l3 = hierarchy.l2, hierarchy.l3
    rot2, cidx2, nsub2, sub2, lat2 = _level_model(l2,
                                                  hierarchy.l2_placement)
    rot3, cidx3, nsub3, sub3, lat3 = _level_model(l3,
                                                  hierarchy.l3_placement)

    # ----- captured positions, resolved to addresses/pages up front ---
    n = capture.n
    warmup = capture.warmup
    num_miss = int(capture.l1_miss_pos.shape[0])
    if plan is not None:
        # Plan lists are shared across cells and already carry the
        # merge sentinels; the kernel must not mutate them.
        (miss_positions, miss_addrs, miss_pages, wb_addrs,
         tlb_positions, tlb_pages, pte_addrs) = plan.slip_lists(capture)
    else:
        shift = hierarchy._page_shift
        addresses = trace.addresses
        miss_positions = capture.l1_miss_pos.tolist()
        miss_np = addresses[np.asarray(capture.l1_miss_pos)]
        miss_addrs = miss_np.tolist()
        miss_pages = (miss_np >> shift).tolist()
        wb_addrs = capture.l1_miss_wb.tolist()
        tlb_positions = capture.tlb_miss_pos.tolist()
        tlb_pages_np = addresses[np.asarray(capture.tlb_miss_pos)] \
            >> shift
        tlb_pages = tlb_pages_np.tolist()
        pte_addrs = (PTE_TABLE_BASE
                     + tlb_pages_np // PTES_PER_LINE).tolist()
        # Sentinel-terminated merge: both position lists end with n,
        # which is >= every stop, so the walk needs no bounds checks.
        tlb_positions.append(n)
        miss_positions.append(n)

    # ----- live runtime surface (the page machinery runs for real) ---
    pages = runtime.pages
    always = runtime.always_sample
    SAMPLING = PageState.SAMPLING
    key_fetches = runtime._key_metadata_fetches
    name2 = hierarchy.l2_placement._level_name
    name3 = hierarchy.l3_placement._level_name

    # ----- flat-array way model, one column set per level -----
    S2, W2 = l2.num_sets, l2.cfg.ways
    wrap2, gran2, mask2 = l2.timestamp_wrap, l2._granule, l2._ts_mask
    maxd2 = l2.cfg.lines - 1
    nch2 = hierarchy.l2_placement._num_chunks_by_id
    def2 = hierarchy.l2_placement._level_default_id
    sdef2 = hierarchy.l2_placement._default_id
    guard2 = W2 * (nsub2 + 1)
    size2 = S2 * W2
    tag2 = [-1] * size2
    lru2 = [0] * size2
    ts2 = [0] * size2
    hits2 = [0] * size2
    pid2 = [0] * size2
    ci2 = [0] * size2
    pg2 = [-1] * size2
    dirty2 = [False] * size2
    meta2 = [False] * size2
    # Global probe dict: line address -> flat index (set * ways + way).
    # Addresses are globally unique across sets, so one dict replaces
    # the per-set index and the hit path needs no set arithmetic.
    d2: dict = {}

    S3, W3 = l3.num_sets, l3.cfg.ways
    wrap3, gran3, mask3 = l3.timestamp_wrap, l3._granule, l3._ts_mask
    maxd3 = l3.cfg.lines - 1
    nch3 = hierarchy.l3_placement._num_chunks_by_id
    def3 = hierarchy.l3_placement._level_default_id
    sdef3 = hierarchy.l3_placement._default_id
    guard3 = W3 * (nsub3 + 1)
    size3 = S3 * W3
    tag3 = [-1] * size3
    lru3 = [0] * size3
    ts3 = [0] * size3
    hits3 = [0] * size3
    pid3 = [0] * size3
    ci3 = [0] * size3
    pg3 = [-1] * size3
    dirty3 = [False] * size3
    meta3 = [False] * size3
    d3: dict = {}

    # Mutable per-level machine state, mirroring the scalar hierarchy:
    # access counter T, allocation rotor, LRU clock.
    a2 = l2.access_counter
    r2 = l2._alloc_rotor
    c2 = l2.replacement._clock
    a3 = l3.access_counter
    r3 = l3._alloc_rotor
    c3 = l3.replacement._clock

    # ----- inline tallies (rare events) + annotation streams -----
    ins2 = [0] * nsub2
    mvr2 = [0] * nsub2
    mvw2 = [0] * nsub2
    wbout2 = [0] * nsub2
    cls2 = [0, 0, 0, 0]
    hist2 = [0, 0, 0, 0]
    byp2 = 0
    ins3 = [0] * nsub3
    mvr3 = [0] * nsub3
    mvw3 = [0] * nsub3
    wbout3 = [0] * nsub3
    cls3 = [0, 0, 0, 0]
    hist3 = [0, 0, 0, 0]
    byp3 = 0
    dram_wb = 0
    ann2 = bytearray()
    ann3 = bytearray()
    fetch_ann = bytearray()

    # Per-flat-index annotation codes, sublevel pre-resolved (indexable
    # straight off a probe-dict hit without recovering the way).
    hd2, hm2, wa2 = _code_tables(sub2, W2, size2)
    hd3, hm3, wa3 = _code_tables(sub3, W3, size3)

    # Hot-path method bindings: every below-L1 event probes a level
    # dict and appends an annotation code, and the attribute lookups
    # are measurable at that rate.
    d2_get = d2.get
    d3_get = d3.get
    pages_get = pages.get
    ann2_app = ann2.append
    ann3_app = ann3.append

    def wb_l3(addr: int) -> None:
        """Mirror of ``_writeback_to_l3`` against the flat model."""
        nonlocal a3, dram_wb
        a3 += 1
        if a3 == wrap3:
            a3 = 0
        f = d3_get(addr)
        if f is not None:
            dirty3[f] = True
            ann3_app(wa3[f])
        else:
            ann3_app(_FWD)
            dram_wb += 1

    def l1_wb(addr: int) -> None:
        """Mirror of ``_writeback_below_l1`` against the flat model."""
        nonlocal a2
        a2 += 1
        if a2 == wrap2:
            a2 = 0
        f = d2_get(addr)
        if f is not None:
            dirty2[f] = True
            ann2_app(wa2[f])
        else:
            ann2_app(_FWD)
            wb_l3(addr)

    def below(addr: int, page: int, is_meta: bool) -> None:
        """Mirror of ``_access_below_l1``: L2 -> L3 -> DRAM + fills.

        The per-level SLIP fills are inlined at their (single) call
        sites rather than factored into helpers: this body runs once
        per below-L1 event and the two extra call frames are
        measurable on the replay path.
        """
        nonlocal a2, a3, c2, c3, r2, r3, byp2, byp3, dram_wb
        a2 += 1
        if a2 == wrap2:
            a2 = 0
        f = d2_get(addr)
        if f is not None:
            hits2[f] += 1
            ann2_app(hm2[f] if is_meta else hd2[f])
            c2 += 1
            lru2[f] = c2
            now = (a2 // gran2) & mask2
            # on_hit: reuse-distance sample for sampling pages + TL.
            pgv = pg2[f]
            if pgv >= 0 and not meta2[f]:
                entry = pages_get(pgv)
                if entry is not None and (always
                                          or entry.state is SAMPLING):
                    distance = ((now - ts2[f]) & mask2) * gran2
                    if distance > maxd2:
                        distance = maxd2
                    # ``ReuseDistanceDistribution.record`` inlined (as
                    # at every sample site in this kernel): one frame
                    # per sampled event is measurable here.
                    dist = entry.distributions[name2]
                    counts = dist.counts
                    bin_idx = bisect_right(dist.boundaries, distance)
                    if counts[bin_idx] >= dist.counter_max:
                        dist.counts = counts = [c >> 1 for c in counts]
                    counts[bin_idx] += 1
                    if entry.period_samples < 63:
                        entry.period_samples += 1
            ts2[f] = now
            return
        ann2_app(_MISS_M if is_meta else _MISS_D)
        # One page-entry probe per event: nothing between here and the
        # fills can change the page table (recomputation only happens
        # inside key_fetches, between events).
        pe = None
        if not is_meta:
            # record_miss_sample("L2", page), gating inlined.
            pe = pages_get(page)
            if pe is not None and (always or pe.state is SAMPLING):
                dist = pe.distributions[name2]
                counts = dist.counts
                if counts[-1] >= dist.counter_max:
                    dist.counts = counts = [c >> 1 for c in counts]
                counts[-1] += 1
                if pe.period_samples < 63:
                    pe.period_samples += 1

        # ----- L3 -----
        a3 += 1
        if a3 == wrap3:
            a3 = 0
        f = d3_get(addr)
        if f is not None:
            hits3[f] += 1
            ann3_app(hm3[f] if is_meta else hd3[f])
            c3 += 1
            lru3[f] = c3
            now = (a3 // gran3) & mask3
            pgv = pg3[f]
            if pgv >= 0 and not meta3[f]:
                entry = pages_get(pgv)
                if entry is not None and (always
                                          or entry.state is SAMPLING):
                    distance = ((now - ts3[f]) & mask3) * gran3
                    if distance > maxd3:
                        distance = maxd3
                    dist = entry.distributions[name3]
                    counts = dist.counts
                    bin_idx = bisect_right(dist.boundaries, distance)
                    if counts[bin_idx] >= dist.counter_max:
                        dist.counts = counts = [c >> 1 for c in counts]
                    counts[bin_idx] += 1
                    if entry.period_samples < 63:
                        entry.period_samples += 1
            ts3[f] = now
        else:
            ann3_app(_MISS_M if is_meta else _MISS_D)
            if pe is not None and (always or pe.state is SAMPLING):
                dist = pe.distributions[name3]
                counts = dist.counts
                if counts[-1] >= dist.counter_max:
                    dist.counts = counts = [c >> 1 for c in counts]
                counts[-1] += 1
                if pe.period_samples < 63:
                    pe.period_samples += 1
            # SLIP fill at L3.  The DRAM read is derived from the miss
            # annotation in phase 2.
            if is_meta or page < 0:
                sid = sdef3
            elif pe is None:
                sid = def3
            elif pe.state is SAMPLING:
                sid = def3
            else:
                sid = pe.policies[name3]
            rchunks = rot3[sid]
            if not rchunks:
                # All-Bypass Policy; fills on this path are never dirty.
                byp3 += 1
                cls3[cidx3[sid]] += 1
            else:
                orders = rchunks[0]
                r3 = (r3 + 1) % 64
                order = orders[r3 % len(orders)]
                base = (addr % S3) * W3
                # Merged invalid-first/min-LRU scan; see the L2 fill.
                vw = -1
                best = _INF
                for w in order:
                    stamp = lru3[base + w]
                    if stamp < best:
                        vw = w
                        if not stamp:
                            break
                        best = stamp
                f = base + vw
                wb = -1
                vt = tag3[f]
                cascade = vt >= 0 and ci3[f] + 1 < nch3[pid3[f]]
                if cascade:
                    cv = (vt, dirty3[f], pid3[f], ci3[f], ts3[f],
                          hits3[f], pg3[f], meta3[f], lru3[f], vw)
                    del d3[vt]
                elif vt >= 0:
                    h = hits3[f]
                    hist3[h if h < 3 else 3] += 1
                    del d3[vt]
                    if dirty3[f]:
                        wbout3[sub3[vw]] += 1
                        wb = vt
                tag3[f] = addr
                d3[addr] = f
                dirty3[f] = False
                pid3[f] = sid
                ci3[f] = 0
                pg3[f] = page
                meta3[f] = is_meta
                ts3[f] = (a3 // gran3) & mask3
                hits3[f] = 0
                c3 += 1
                lru3[f] = c3
                ins3[sub3[vw]] += 1
                cls3[cidx3[sid]] += 1
                if cascade:
                    (vt, vdirty, vpid, vci, vts, vhits, vpg, vmeta,
                     vlru, vfrom) = cv
                    guard = guard3
                    while True:
                        guard -= 1
                        nc = vci + 1
                        if guard <= 0 or nc >= nch3[vpid]:
                            hist3[vhits if vhits < 3 else 3] += 1
                            if vdirty:
                                wbout3[sub3[vfrom]] += 1
                                wb = vt
                            break
                        orders = rot3[vpid][nc]
                        r3 = (r3 + 1) % 64
                        order = orders[r3 % len(orders)]
                        w = -1
                        best = _INF
                        for cand in order:
                            stamp = lru3[base + cand]
                            if stamp < best:
                                w = cand
                                if not stamp:
                                    break
                                best = stamp
                        f = base + w
                        dt = tag3[f]
                        if dt >= 0:
                            disp = (dt, dirty3[f], pid3[f], ci3[f],
                                    ts3[f], hits3[f], pg3[f],
                                    meta3[f], lru3[f], w)
                            del d3[dt]
                        else:
                            disp = None
                        tag3[f] = vt
                        d3[vt] = f
                        dirty3[f] = vdirty
                        pid3[f] = vpid
                        ci3[f] = nc
                        ts3[f] = vts
                        hits3[f] = vhits
                        pg3[f] = vpg
                        meta3[f] = vmeta
                        lru3[f] = vlru
                        mvr3[sub3[vfrom]] += 1
                        mvw3[sub3[w]] += 1
                        if disp is None:
                            break
                        (vt, vdirty, vpid, vci, vts, vhits, vpg,
                         vmeta, vlru, vfrom) = disp
                if wb >= 0:
                    dram_wb += 1

        # Fill L2 on the way back (possibly bypassed).
        if is_meta or page < 0:
            sid = sdef2
        elif pe is None:
            sid = def2
        elif pe.state is SAMPLING:
            sid = def2
        else:
            sid = pe.policies[name2]
        rchunks = rot2[sid]
        if not rchunks:
            # All-Bypass Policy; fills on this path are never dirty.
            byp2 += 1
            cls2[cidx2[sid]] += 1
            return
        orders = rchunks[0]
        r2 = (r2 + 1) % 64
        order = orders[r2 % len(orders)]
        base = (addr % S2) * W2
        # Invalid slots keep lru == 0 forever (clocks start >= 0 and
        # every fill stamps c2+1 >= 1), so one strict-min scan finds
        # the first invalid way in rotation order, else the LRU way —
        # the same choice as the scalar invalid-first/min-LRU walk.
        vw = -1
        best = _INF
        for w in order:
            stamp = lru2[base + w]
            if stamp < best:
                vw = w
                if not stamp:
                    break
                best = stamp
        f = base + vw
        wb = -1
        vt = tag2[f]
        cascade = vt >= 0 and ci2[f] + 1 < nch2[pid2[f]]
        if cascade:
            cv = (vt, dirty2[f], pid2[f], ci2[f], ts2[f], hits2[f],
                  pg2[f], meta2[f], lru2[f], vw)
            del d2[vt]
        elif vt >= 0:
            h = hits2[f]
            hist2[h if h < 3 else 3] += 1
            del d2[vt]
            if dirty2[f]:
                wbout2[sub2[vw]] += 1
                wb = vt
        tag2[f] = addr
        d2[addr] = f
        dirty2[f] = False
        pid2[f] = sid
        ci2[f] = 0
        pg2[f] = page
        meta2[f] = is_meta
        ts2[f] = (a2 // gran2) & mask2
        hits2[f] = 0
        c2 += 1
        lru2[f] = c2
        ins2[sub2[vw]] += 1
        cls2[cidx2[sid]] += 1
        if cascade:
            (vt, vdirty, vpid, vci, vts, vhits, vpg, vmeta, vlru,
             vfrom) = cv
            guard = guard2
            while True:
                guard -= 1
                nc = vci + 1
                if guard <= 0 or nc >= nch2[vpid]:
                    hist2[vhits if vhits < 3 else 3] += 1
                    if vdirty:
                        wbout2[sub2[vfrom]] += 1
                        wb = vt
                    break
                orders = rot2[vpid][nc]
                r2 = (r2 + 1) % 64
                order = orders[r2 % len(orders)]
                w = -1
                best = _INF
                for cand in order:
                    stamp = lru2[base + cand]
                    if stamp < best:
                        w = cand
                        if not stamp:
                            break
                        best = stamp
                f = base + w
                dt = tag2[f]
                if dt >= 0:
                    disp = (dt, dirty2[f], pid2[f], ci2[f], ts2[f],
                            hits2[f], pg2[f], meta2[f], lru2[f], w)
                    del d2[dt]
                else:
                    disp = None
                tag2[f] = vt
                d2[vt] = f
                dirty2[f] = vdirty
                pid2[f] = vpid
                ci2[f] = nc
                ts2[f] = vts
                hits2[f] = vhits
                pg2[f] = vpg
                meta2[f] = vmeta
                lru2[f] = vlru
                mvr2[sub2[vfrom]] += 1
                mvw2[sub2[w]] += 1
                if disp is None:
                    break
                (vt, vdirty, vpid, vci, vts, vhits, vpg, vmeta, vlru,
                 vfrom) = disp
        if wb >= 0:
            wb_l3(wb)

    # ----- phase 1: merged-order sweep (warmup, then measured) -----
    tlb_i = miss_i = 0
    tlb_misses = 0
    b2 = b3 = bf = 0
    measured_miss_start = 0
    for stop, warm_phase in ((warmup, True), (n, False)):
        while True:
            tlb_p = tlb_positions[tlb_i]
            miss_p = miss_positions[miss_i]
            p = tlb_p if tlb_p < miss_p else miss_p
            if p >= stop:
                break
            if tlb_p == p:
                # Mirror on_reference: the fetch list (and the page
                # state machinery) runs before the metadata lines
                # travel below L1.
                fetches = key_fetches(tlb_pages[tlb_i])
                below(pte_addrs[tlb_i], -1, True)
                for fetch in fetches:
                    below(fetch, -1, True)
                fetch_ann.append(1 + len(fetches))
                tlb_misses += 1
                tlb_i += 1
            if miss_p == p:
                below(miss_addrs[miss_i], miss_pages[miss_i], False)
                wba = wb_addrs[miss_i]
                if wba >= 0:
                    l1_wb(wba)
                miss_i += 1
        if warm_phase:
            # Same boundary as the scalar replay: counters reset, cache
            # / TLB / page state stays warm (EOU memo survives).
            hierarchy.reset_stats()
            for t in (ins2, mvr2, mvw2, wbout2):
                t[:] = [0] * nsub2
            for t in (ins3, mvr3, mvw3, wbout3):
                t[:] = [0] * nsub3
            cls2[:] = [0, 0, 0, 0]
            cls3[:] = [0, 0, 0, 0]
            hist2[:] = [0, 0, 0, 0]
            hist3[:] = [0, 0, 0, 0]
            byp2 = byp3 = 0
            dram_wb = 0
            tlb_misses = 0
            b2, b3, bf = len(ann2), len(ann3), len(fetch_ann)
            measured_miss_start = miss_i

    # finalize()'s resident-line reuse sweep (the real arrays are empty).
    for f in d2.values():
        h = hits2[f]
        hist2[h if h < 3 else 3] += 1
    for f in d3.values():
        h = hits3[f]
        hist3[h if h < 3 else 3] += 1

    # ----- phase 2: batched accounting over the annotation streams ---
    def _tally(ann: bytearray, boundary: int, nsub: int,
               ins: List[int], byp: int, cls: List[int], mvr: List[int],
               mvw: List[int], wbout: List[int],
               hist: List[int]) -> SlipLevelTally:
        codes = np.frombuffer(ann, dtype=np.uint8)[boundary:]
        counts = np.bincount(codes, minlength=_ANN_SPAN)
        tally = SlipLevelTally(nsub)
        tally.dh_sub = [int(counts[1 + s]) for s in range(nsub)]
        tally.mh_sub = [int(counts[17 + s]) for s in range(nsub)]
        tally.demand_misses = int(counts[_MISS_D])
        tally.metadata_misses = int(counts[_MISS_M])
        tally.wbin_sub = [int(counts[65 + s]) for s in range(nsub)]
        tally.forwarded_wbs = int(counts[_FWD])
        tally.ins_sub = list(ins)
        tally.bypasses = byp
        tally.class_counts = list(cls)
        tally.mvr_sub = list(mvr)
        tally.mvw_sub = list(mvw)
        tally.wbout_sub = list(wbout)
        tally.hist = list(hist)
        return tally

    tally2 = _tally(ann2, b2, nsub2, ins2, byp2, cls2, mvr2, mvw2,
                    wbout2, hist2)
    tally3 = _tally(ann3, b3, nsub3, ins3, byp3, cls3, mvr3, mvw3,
                    wbout3, hist3)

    # Live runtime/TLB ledgers: one page-grain probe per access, one
    # manual miss bump per captured TLB-miss position (as in the scalar
    # replay); hits are the complement of the measured-phase misses.
    runtime_stats = runtime.stats
    runtime_stats.tlb_miss_fetches = tlb_misses
    tlb_stats = runtime.tlb.stats
    tlb_stats.misses = tlb_misses
    tlb_stats.hits = (n - warmup) - tlb_misses

    fetch_events = int(
        np.frombuffer(fetch_ann, dtype=np.uint8)[bf:].sum())
    check_slip_vector_replay(
        demand_events=num_miss - measured_miss_start,
        metadata_events=(runtime_stats.tlb_miss_fetches
                         + runtime_stats.distribution_fetches),
        fetch_events=fetch_events,
        wb_events=sum(
            1 for x in wb_addrs[measured_miss_start:] if x >= 0),
        l2_tally=tally2, l3_tally=tally3,
        dram_writebacks=dram_wb,
    )

    # Measured-phase latency: only demand events contribute below L1,
    # and every term is an integer count times an integer latency.
    total = (
        sum(c * t for c, t in zip(tally2.dh_sub, lat2))
        + tally2.demand_misses * l2.cfg.latency_cycles
        + sum(c * t for c, t in zip(tally3.dh_sub, lat3))
        + tally3.demand_misses * (l3.cfg.latency_cycles
                                  + hierarchy.dram._latency)
    )

    for level, placement, tally in (
        (l2, hierarchy.l2_placement, tally2),
        (l3, hierarchy.l3_placement, tally3),
    ):
        dh = sum(tally.dh_sub)
        mh = sum(tally.mh_sub)
        insertions = sum(tally.ins_sub)
        metadata_events = (
            dh + mh + tally.demand_misses + tally.metadata_misses
            + insertions
        ) if level.track_metadata_energy else 0
        level.stats.adopt_counts(
            demand_hits=dh,
            demand_misses=tally.demand_misses,
            metadata_hits=mh,
            metadata_misses=tally.metadata_misses,
            hits_by_sublevel=[d + m for d, m in
                              zip(tally.dh_sub, tally.mh_sub)],
            insert_events=list(tally.ins_sub),
            move_read_events=list(tally.mvr_sub),
            move_write_events=list(tally.mvw_sub),
            wb_in_events=list(tally.wbin_sub),
            wb_out_events=list(tally.wbout_sub),
            reuse_histogram={
                "0": tally.hist[0], "1": tally.hist[1],
                "2": tally.hist[2], ">2": tally.hist[3],
            },
            insertions_by_class={
                "abp": tally.class_counts[0],
                "partial_bypass": tally.class_counts[1],
                "default": tally.class_counts[2],
                "other": tally.class_counts[3],
            },
            bypasses=tally.bypasses,
            dirty_bypass_forwards=0,
            metadata_events=metadata_events,
            movement_queue_events=sum(tally.mvr_sub),
            movement_queue_pj=placement.movement_queue_pj,
        )

    counters = hierarchy.counters
    counters.total_latency_cycles += total
    counters.dram_demand_reads = tally3.demand_misses
    counters.dram_metadata_reads = tally3.metadata_misses
    counters.dram_writebacks = dram_wb
    dram_stats = hierarchy.dram.stats
    dram_stats.reads = tally3.demand_misses + tally3.metadata_misses
    dram_stats.writes = dram_wb
    return True
