"""AMAT-based execution-time model (for Figure 13's speedups).

The paper's speedups are fractions of a percent: SPEC hit rates in
L2/L3 are low enough that DRAM time dominates, and SLIP's effects are a
few cycles on L2/L3 hits plus slightly better hit rates under bypassing.
We therefore model execution time as base work plus the exposed part of
memory stalls, rather than simulating an OoO core cycle by cycle; only
orderings and signs are expected to transfer, not absolute percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.hierarchy import MemoryHierarchy
from .config import CoreConfig


@dataclass(frozen=True)
class TimingResult:
    instructions: float
    exec_cycles: float
    stall_cycles: float
    amat_cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.exec_cycles if self.exec_cycles else 0.0

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Relative speedup vs a baseline run (0.01 == +1%)."""
        if self.exec_cycles == 0:
            return 0.0
        return baseline.exec_cycles / self.exec_cycles - 1.0


def execution_time(hierarchy: MemoryHierarchy, instructions: float,
                   core: CoreConfig) -> TimingResult:
    """Execution time estimate after a trace has been simulated."""
    counters = hierarchy.counters
    accesses = counters.demand_accesses
    l1_latency = hierarchy.l1.cfg.latency_cycles
    total_latency = counters.total_latency_cycles
    # L1-hit latency is assumed pipelined away; only the excess stalls.
    stall = max(0.0, total_latency - accesses * l1_latency)
    stall += hierarchy.runtime.extra_stall_cycles()
    exec_cycles = instructions * core.base_cpi + core.stall_exposure * stall
    amat = total_latency / accesses if accesses else 0.0
    return TimingResult(
        instructions=instructions,
        exec_cycles=exec_cycles,
        stall_cycles=stall,
        amat_cycles=amat,
    )
