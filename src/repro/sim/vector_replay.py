"""Batched back-end replay kernel for baseline-runtime-kind cells.

The scalar replay (:func:`repro.sim.filtered._replay_events`) walks the
captured L1->L2 event stream one event at a time through the full
hierarchy machinery — ``Line`` objects, placement dispatch,
``FillOutcome`` allocation — even though for the baseline runtime kind
(baseline / nurapid / lru_pea) the back end is a closed deterministic
function of the event stream. This module replays the same stream as a
batch: set indices for the whole stream are computed vectorized, events
are grouped per L2 set with a stable argsort, and each set's short
event run is simulated with a tight loop over small per-set state,
accumulating integer event counts per (sublevel x event kind) that feed
the existing deferred :meth:`~repro.mem.stats.EnergyBreakdown.
materialize` path. The L3 back end consumes the L2 miss stream the
same way, with the L3 event order derived (vectorized) from the
per-event L2 outcomes.

Byte-identity with the scalar replay rests on a few structural facts
of the three eligible policies, each pinned down by the equivalence
suite in ``tests/test_vector_replay.py``:

* **baseline** — lines never move, so a line's way (and with it every
  sublevel-resolved count) is fixed at fill time. The tag-level
  trajectory of a set (hits, victim identity, writebacks) is
  independent of way choice: the victim of a full set is the unique
  min-LRU line, and invalid-way choice only affects which way a fill
  lands in. Way assignment is reconstructed in a second pass from the
  level's allocation rotor, which advances exactly once per fill — so
  the rotor value of the k-th fill (in global event order) is
  ``(k + 1) % 64``, recovered from a cumulative sum of the miss flags.
* **nurapid** — lines live in known *sublevels* (fills into sublevel 0,
  promotion swaps with sublevel 0, demotion cascades one sublevel
  deeper); within a sublevel every way has the same energy and
  latency, victims are the unique min-LRU (or an invalid way, whose
  existence is a pure occupancy count), and moved lines keep their LRU
  stamp — so per-line sublevel plus a sorted stamp list per (set,
  sublevel) reproduces the scalar run exactly, rotor-free.
* **lru_pea** — like nurapid with demoted-first victim selection (two
  stamp lists per (set, sublevel)), except the insertion sublevel is
  one ``random.Random`` draw per fill in *global fill order*, so the
  L2 pass runs in global event order and consumes the placement's own
  RNG object, keeping the draw stream byte-identical.

LRU stamps are global per level in the scalar hierarchy, but only
their relative order *within a set* is ever compared, so a per-set
counter reproduces victim selection exactly. Latency is integral and
only demand events contribute below L1, so the measured-phase latency
is an exact integer dot product of hit counts and sublevel latencies.
``movement_queue_pj`` is the one live float: the scalar path
accumulates a constant per movement, so the kernel replays the same
number of additions (see :meth:`LevelStats.adopt_counts`).

Replays fall back to the scalar path (``return False``) whenever the
hierarchy is not eligible: SLIP kinds never reach this module, and
non-LRU-family replacement ablations (random / DRRIP / SHiP), SimCheck
and metadata-energy tracking are rejected here. ``REPRO_VECTOR_REPLAY``
(default on, same falsey values as ``REPRO_FILTERED``) disables the
kernel entirely.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.invariants import check_vector_replay
from ..mem.replacement import LruReplacement
from ..policies.baseline import BaselinePlacement
from ..policies.lru_pea import LruPeaPlacement, PeaLruReplacement
from ..policies.nurapid import NurapidPlacement
from ..workloads.capture_store import (
    OP_DEMAND_MISS,
    OP_METADATA,
    OP_WRITEBACK,
    TraceCapture,
)

_VECTOR_ENV = "REPRO_VECTOR_REPLAY"
_FALSEY = ("0", "false", "no", "off")

#: Sentinel opcode for empty slots of the interleaved L3 stream.
_OP_NONE = 255


def vector_enabled() -> bool:
    """Vector replay is on unless ``REPRO_VECTOR_REPLAY`` disables it."""
    return os.environ.get(_VECTOR_ENV, "").strip().lower() not in _FALSEY


def record_decline(hierarchy, reason: str) -> None:
    """Remember why a replay kernel bypassed this hierarchy.

    Thin wrapper over :func:`repro.sim.kernel_report.record_decline`
    (which owns the structured record, the decline tallies, and the
    shared stderr format) kept under the historical name because the
    SLIP replay kernel and the tests import it from here.
    """
    from .kernel_report import record_decline as _record
    _record(hierarchy, "replay", reason)


def eligible_kind(hierarchy) -> Optional[str]:
    """The kernel flavour for a hierarchy, or ``None`` to bypass.

    Exact-type checks throughout: a subclassed placement or replacement
    could observe events the kernel never generates, so anything but
    the stock trio falls back to the scalar golden path. Each bypass
    records its reason via :func:`record_decline` (SLIP kinds land in
    the generic placement bucket here; their own kernel records the
    precise reason in :func:`repro.sim.vector_replay_slip.
    slip_eligible`).
    """
    if hierarchy.simcheck is not None:
        record_decline(hierarchy, "simcheck")
        return None
    l2, l3 = hierarchy.l2, hierarchy.l3
    if l2.track_metadata_energy or l3.track_metadata_energy:
        record_decline(hierarchy, "metadata-energy")
        return None
    t = type(hierarchy.l2_placement)
    if type(hierarchy.l3_placement) is not t:
        record_decline(
            hierarchy,
            f"placement:mismatched:{t.__name__}/"
            f"{type(hierarchy.l3_placement).__name__}")
        return None
    r2, r3 = type(l2.replacement), type(l3.replacement)
    if t is BaselinePlacement:
        kind = "baseline"
    elif t is NurapidPlacement:
        kind = "nurapid"
    elif t is LruPeaPlacement:
        if r2 is PeaLruReplacement and r3 is PeaLruReplacement:
            return "lru_pea"
        record_decline(
            hierarchy, f"replacement:{r2.__name__}/{r3.__name__}")
        return None
    else:
        record_decline(hierarchy, f"placement:{t.__name__}")
        return None
    if r2 is not LruReplacement or r3 is not LruReplacement:
        record_decline(
            hierarchy, f"replacement:{r2.__name__}/{r3.__name__}")
        return None
    return kind


# ----------------------------------------------------------------------
# Per-level tallies
# ----------------------------------------------------------------------
class _LevelTally:
    """Measured-phase integer event counts for one cache level."""

    __slots__ = (
        "nsub", "demand_misses", "metadata_misses", "dh_sub", "mh_sub",
        "ins_sub", "mvr_sub", "mvw_sub", "wbin_sub", "wbout_sub", "hist",
    )

    def __init__(self, nsub: int) -> None:
        self.nsub = nsub
        self.demand_misses = 0
        self.metadata_misses = 0
        self.dh_sub = [0] * nsub       # measured demand hits / sublevel
        self.mh_sub = [0] * nsub       # measured metadata hits / sublevel
        self.ins_sub = [0] * nsub      # measured insertions / sublevel
        self.mvr_sub = [0] * nsub      # movement reads / sublevel
        self.mvw_sub = [0] * nsub      # movement writes / sublevel
        self.wbin_sub = [0] * nsub     # absorbed writebacks / sublevel
        self.wbout_sub = [0] * nsub    # emitted writebacks / sublevel
        self.hist = [0, 0, 0, 0]       # reuse histogram 0 / 1 / 2 / >2


def _level_geometry(level) -> Tuple[int, List[int], List[int], List[int]]:
    """(nsub, ways per sublevel, latency per sublevel, sublevel of way)."""
    sub_by_way = list(level.sublevel_by_way)
    nsub = level.cfg.num_sublevels
    ways_count = [0] * nsub
    lat_by_sub = [0] * nsub
    for way, sub in enumerate(sub_by_way):
        ways_count[sub] += 1
        lat_by_sub[sub] = level.latency_by_way[way]
    return nsub, ways_count, lat_by_sub, sub_by_way


def _group_by_set(ops: np.ndarray, addrs: np.ndarray, meas: np.ndarray,
                  num_sets: int):
    """Stable per-set grouping of the event stream.

    Returns set-slice offsets plus the event order / opcode / address /
    measured-flag columns as plain lists, sorted by set with the global
    order preserved inside each set.
    """
    set_idx = addrs % num_sets
    order = np.argsort(set_idx, kind="stable")
    counts = np.bincount(set_idx, minlength=num_sets)
    offs = np.concatenate(([0], np.cumsum(counts))).tolist()
    return (
        offs,
        order.tolist(),
        ops[order].tolist(),
        addrs[order].tolist(),
        meas[order].tolist(),
    )


# ----------------------------------------------------------------------
# Baseline kernel (two passes: tag-level, then way assignment)
# ----------------------------------------------------------------------
def _run_baseline(level, placement, ops, addrs, meas, plan_data=None):
    n = int(ops.shape[0])
    num_sets = level.num_sets
    ways = level.cfg.ways
    nsub, _, _, sub_by_way = _level_geometry(level)
    tally = _LevelTally(nsub)
    hist = tally.hist
    miss: List[bool] = [False] * n
    victim_tag: List[int] = [-1] * n
    offs, evt, ops_l, addr_l, meas_l = plan_data or _group_by_set(
        ops, addrs, meas, num_sets,
    )

    # ----- pass A: per-set tag-level trajectory -----
    # Recency is kept as an explicit order list (front == LRU): the
    # global LRU clock stamps every touch with a unique value, so the
    # within-set order *is* the stamp order and min-LRU is the front.
    sets_out = []
    demand_misses = metadata_misses = 0
    for s in range(num_sets):
        a, b = offs[s], offs[s + 1]
        if a == b:
            continue
        where: dict = {}
        order_: List[int] = []
        f_evt: List[int] = []
        f_vic: List[int] = []
        f_tag: List[int] = []
        f_dirty: List[bool] = []
        f_hits: List[int] = []
        f_md: List[int] = []
        f_mm: List[int] = []
        f_wbin: List[int] = []
        f_wbout: List[int] = []
        # Per-fill appends and the probe dominate this loop; method
        # bindings amortize the attribute lookups over the set's events.
        where_get = where.get
        ap_evt, ap_vic, ap_tag = f_evt.append, f_vic.append, f_tag.append
        ap_dirty, ap_hits = f_dirty.append, f_hits.append
        ap_md, ap_mm = f_md.append, f_mm.append
        ap_wbin, ap_wbout = f_wbin.append, f_wbout.append
        for k in range(a, b):
            op = ops_l[k]
            tag = addr_l[k]
            j = where_get(tag)
            if op == OP_WRITEBACK:
                if j is None:
                    miss[evt[k]] = True  # forwarded below
                else:
                    f_dirty[j] = True
                    if meas_l[k]:
                        f_wbin[j] += 1
                continue
            if j is not None:  # hit
                f_hits[j] += 1
                if meas_l[k]:
                    if op:
                        f_mm[j] += 1
                    else:
                        f_md[j] += 1
                order_.remove(j)
                order_.append(j)
                continue
            e = evt[k]
            m = meas_l[k]
            miss[e] = True
            if m:
                if op:
                    metadata_misses += 1
                else:
                    demand_misses += 1
            if len(order_) == ways:  # full set: evict the unique LRU
                v = order_.pop(0)
                del where[f_tag[v]]
                if m:
                    h = f_hits[v]
                    hist[h if h < 3 else 3] += 1
                if f_dirty[v]:
                    victim_tag[e] = f_tag[v]
                    if m:
                        f_wbout[v] = 1
            else:
                v = -1
            j = len(f_evt)
            ap_evt(e)
            ap_vic(v)
            ap_tag(tag)
            ap_dirty(False)
            ap_hits(0)
            ap_md(0)
            ap_mm(0)
            ap_wbin(0)
            ap_wbout(0)
            where[tag] = j
            order_.append(j)
        for j in where.values():  # finalize(): resident-line reuse
            h = f_hits[j]
            hist[h if h < 3 else 3] += 1
        sets_out.append((f_evt, f_vic, f_md, f_mm, f_wbin, f_wbout))
    tally.demand_misses = demand_misses
    tally.metadata_misses = metadata_misses

    # ----- rotor reconstruction: one advance per fill, global order --
    miss_np = np.asarray(miss, dtype=bool)
    fill_flag = miss_np & (ops != OP_WRITEBACK)
    rank = (np.cumsum(fill_flag) - 1).tolist()
    meas_by_evt = meas.tolist()

    # ----- pass B: way assignment + per-fill count folding -----
    orders = tuple(
        tuple(range(r, ways)) + tuple(range(r)) for r in range(ways)
    )
    dh_sub, mh_sub = tally.dh_sub, tally.mh_sub
    ins_sub = tally.ins_sub
    wbin_sub, wbout_sub = tally.wbin_sub, tally.wbout_sub
    for f_evt, f_vic, f_md, f_mm, f_wbin, f_wbout in sets_out:
        occupied = [False] * ways
        f_way: List[int] = []
        for j in range(len(f_evt)):
            v = f_vic[j]
            if v >= 0:
                w = f_way[v]  # eviction installs into the victim's way
            else:
                rotated = orders[(rank[f_evt[j]] + 1) % 64 % ways]
                for w in rotated:
                    if not occupied[w]:
                        break
                occupied[w] = True
            f_way.append(w)
            sub = sub_by_way[w]
            if meas_by_evt[f_evt[j]]:
                ins_sub[sub] += 1
            dh_sub[sub] += f_md[j]
            mh_sub[sub] += f_mm[j]
            wbin_sub[sub] += f_wbin[j]
            wbout_sub[sub] += f_wbout[j]
    return tally, miss_np, np.asarray(victim_tag, dtype=np.int64)


# ----------------------------------------------------------------------
# NuRAPID kernel (per-set pass with per-sublevel sorted stamp lists)
# ----------------------------------------------------------------------
def _run_nurapid(level, placement, ops, addrs, meas, plan_data=None):
    from bisect import bisect_left, insort

    n = int(ops.shape[0])
    num_sets = level.num_sets
    nsub, ways_count, _, _ = _level_geometry(level)
    tally = _LevelTally(nsub)
    hist = tally.hist
    dh_sub, mh_sub, ins_sub = tally.dh_sub, tally.mh_sub, tally.ins_sub
    mvr, mvw = tally.mvr_sub, tally.mvw_sub
    wbin_sub, wbout_sub = tally.wbin_sub, tally.wbout_sub
    miss: List[bool] = [False] * n
    victim_tag: List[int] = [-1] * n
    offs, evt, ops_l, addr_l, meas_l = plan_data or _group_by_set(
        ops, addrs, meas, num_sets,
    )
    demand_misses = metadata_misses = 0
    last = nsub - 1
    w0 = ways_count[0]

    for s in range(num_sets):
        a, b = offs[s], offs[s + 1]
        if a == b:
            continue
        # recs: tag -> [sublevel, dirty, hits, stamp]; per-sublevel
        # sorted stamp lists with aligned tag lists (front == LRU).
        recs: dict = {}
        st = [[] for _ in range(nsub)]
        tg = [[] for _ in range(nsub)]
        occ = [0] * nsub
        clock = 0
        for k in range(a, b):
            op = ops_l[k]
            tag = addr_l[k]
            m = meas_l[k]
            rec = recs.get(tag)
            if op == OP_WRITEBACK:
                if rec is None:
                    miss[evt[k]] = True
                else:
                    rec[1] = True
                    if m:
                        wbin_sub[rec[0]] += 1
                continue
            if rec is not None:  # hit: account at the pre-promotion way
                sub = rec[0]
                rec[2] += 1
                if m:
                    if op:
                        mh_sub[sub] += 1
                    else:
                        dh_sub[sub] += 1
                lst = st[sub]
                i = bisect_left(lst, rec[3])
                lst.pop(i)
                tg[sub].pop(i)
                clock += 1
                rec[3] = clock
                if sub == 0:
                    st[0].append(clock)
                    tg[0].append(tag)
                    continue
                # on_hit: promote to sublevel 0, swapping with its LRU
                if occ[0] < w0:
                    occ[0] += 1
                    occ[sub] -= 1
                    if m:
                        mvr[sub] += 1
                        mvw[0] += 1
                else:
                    dst = st[0].pop(0)
                    dtag = tg[0].pop(0)
                    drec = recs[dtag]
                    drec[0] = sub
                    i = bisect_left(st[sub], dst)
                    st[sub].insert(i, dst)
                    tg[sub].insert(i, dtag)
                    if m:
                        mvr[sub] += 1
                        mvw[0] += 1
                        mvr[0] += 1
                        mvw[sub] += 1
                rec[0] = 0
                st[0].append(clock)
                tg[0].append(tag)
                continue
            # miss + fill into sublevel 0
            e = evt[k]
            miss[e] = True
            if m:
                if op:
                    metadata_misses += 1
                else:
                    demand_misses += 1
            if occ[0] < w0:
                occ[0] += 1
            else:
                # demote the sublevel-0 LRU one sublevel deeper,
                # cascading; the line falling off the last sublevel
                # leaves the level (wb_out charged there).
                cur_st = st[0].pop(0)
                cur_tag = tg[0].pop(0)
                ts = 1
                while True:
                    if ts > last:
                        vrec = recs.pop(cur_tag)
                        if m:
                            h = vrec[2]
                            hist[h if h < 3 else 3] += 1
                        if vrec[1]:
                            victim_tag[e] = cur_tag
                            if m:
                                wbout_sub[last] += 1
                        break
                    if occ[ts] < ways_count[ts]:
                        occ[ts] += 1
                        recs[cur_tag][0] = ts
                        insort(st[ts], cur_st)
                        tg[ts].insert(bisect_left(st[ts], cur_st), cur_tag)
                        if m:
                            mvr[ts - 1] += 1
                            mvw[ts] += 1
                        break
                    dst = st[ts].pop(0)
                    dtag = tg[ts].pop(0)
                    recs[cur_tag][0] = ts
                    i = bisect_left(st[ts], cur_st)
                    st[ts].insert(i, cur_st)
                    tg[ts].insert(i, cur_tag)
                    if m:
                        mvr[ts - 1] += 1
                        mvw[ts] += 1
                    cur_st, cur_tag = dst, dtag
                    ts += 1
            clock += 1
            recs[tag] = [0, False, 0, clock]
            st[0].append(clock)
            tg[0].append(tag)
            if m:
                ins_sub[0] += 1
        for rec in recs.values():
            h = rec[2]
            hist[h if h < 3 else 3] += 1
    tally.demand_misses = demand_misses
    tally.metadata_misses = metadata_misses
    return tally, np.asarray(miss, dtype=bool), \
        np.asarray(victim_tag, dtype=np.int64)


# ----------------------------------------------------------------------
# LRU-PEA kernel (global-order pass: one RNG draw per fill)
# ----------------------------------------------------------------------
def _run_lru_pea(level, placement, ops, addrs, meas, plan_data=None):
    from bisect import bisect_left

    n = int(ops.shape[0])
    num_sets = level.num_sets
    nsub, ways_count, _, _ = _level_geometry(level)
    tally = _LevelTally(nsub)
    hist = tally.hist
    dh_sub, mh_sub, ins_sub = tally.dh_sub, tally.mh_sub, tally.ins_sub
    mvr, mvw = tally.mvr_sub, tally.mvw_sub
    wbin_sub, wbout_sub = tally.wbin_sub, tally.wbout_sub
    miss: List[bool] = [False] * n
    victim_tag: List[int] = [-1] * n
    if plan_data is not None:
        set_l, ops_l, addr_l, meas_l = plan_data
    else:
        set_l = (addrs % num_sets).tolist()
        ops_l = ops.tolist()
        addr_l = addrs.tolist()
        meas_l = meas.tolist()

    # The insertion-sublevel draw replicates random.Random.choices with
    # k=1 over the sublevel-way weights: one self.random() call per
    # fill, mapped through bisect(cum_weights, u * total, 0, len - 1).
    # Consuming the placement's own RNG keeps the stream byte-equal.
    rng_random = placement._rng.random
    weights = list(level.cfg.sublevel_ways) or [level.cfg.ways]
    cum: List[int] = []
    acc = 0
    for w in weights:
        acc += w
        cum.append(acc)
    total = cum[-1] + 0.0
    hi = len(cum) - 1

    demand_misses = metadata_misses = 0
    # Per-set state, lazily created: recs (tag -> [sublevel, dirty,
    # hits, stamp, demoted]) plus per-sublevel sorted stamp/tag lists
    # split by the demoted flag (PEA victimizes demoted lines first).
    states: List[Optional[tuple]] = [None] * num_sets

    for k in range(n):
        op = ops_l[k]
        tag = addr_l[k]
        m = meas_l[k]
        state = states[set_l[k]]
        if state is None:
            state = states[set_l[k]] = (
                {},                             # recs
                [[] for _ in range(nsub)],      # plain stamps
                [[] for _ in range(nsub)],      # plain tags
                [[] for _ in range(nsub)],      # demoted stamps
                [[] for _ in range(nsub)],      # demoted tags
                [0] * nsub,                     # occupancy
                [0],                            # clock box
            )
        recs, stp, tgp, std, tgd, occ, clock = state
        rec = recs.get(tag)
        if op == OP_WRITEBACK:
            if rec is None:
                miss[k] = True
            else:
                rec[1] = True
                if m:
                    wbin_sub[rec[0]] += 1
            continue
        if rec is not None:  # hit at the pre-promotion way
            sub = rec[0]
            rec[2] += 1
            if m:
                if op:
                    mh_sub[sub] += 1
                else:
                    dh_sub[sub] += 1
            lst = std[sub] if rec[4] else stp[sub]
            tgl = tgd[sub] if rec[4] else tgp[sub]
            i = bisect_left(lst, rec[3])
            lst.pop(i)
            tgl.pop(i)
            clock[0] += 1
            rec[3] = clock[0]
            if sub == 0:
                lst.append(rec[3])
                tgl.append(tag)
                continue
            # on_hit: promote one sublevel nearer (demoted-first LRU
            # victim there moves to the vacated way, flagged demoted).
            t = sub - 1
            if occ[t] < ways_count[t]:
                occ[t] += 1
                occ[sub] -= 1
                if m:
                    mvr[sub] += 1
                    mvw[t] += 1
            else:
                if std[t]:
                    dst = std[t].pop(0)
                    dtag = tgd[t].pop(0)
                else:
                    dst = stp[t].pop(0)
                    dtag = tgp[t].pop(0)
                drec = recs[dtag]
                drec[0] = sub
                drec[4] = True
                i = bisect_left(std[sub], dst)
                std[sub].insert(i, dst)
                tgd[sub].insert(i, dtag)
                if m:
                    mvr[sub] += 1
                    mvw[t] += 1
                    mvr[t] += 1
                    mvw[sub] += 1
            rec[0] = t
            rec[4] = False
            stp[t].append(rec[3])
            tgp[t].append(tag)
            continue
        # miss + fill into a weighted-random sublevel
        miss[k] = True
        if m:
            if op:
                metadata_misses += 1
            else:
                demand_misses += 1
        u = rng_random() * total
        t = hi
        for i in range(hi):
            if u < cum[i]:
                t = i
                break
        if occ[t] < ways_count[t]:
            occ[t] += 1
        else:
            if std[t]:
                vtag = tgd[t].pop(0)
                std[t].pop(0)
            else:
                vtag = tgp[t].pop(0)
                stp[t].pop(0)
            vrec = recs.pop(vtag)
            if m:
                h = vrec[2]
                hist[h if h < 3 else 3] += 1
            if vrec[1]:
                victim_tag[k] = vtag
                if m:
                    wbout_sub[t] += 1
        clock[0] += 1
        recs[tag] = [t, False, 0, clock[0], False]
        stp[t].append(clock[0])
        tgp[t].append(tag)
        if m:
            ins_sub[t] += 1
    for state in states:
        if state is None:
            continue
        for rec in state[0].values():
            h = rec[2]
            hist[h if h < 3 else 3] += 1
    tally.demand_misses = demand_misses
    tally.metadata_misses = metadata_misses
    return tally, np.asarray(miss, dtype=bool), \
        np.asarray(victim_tag, dtype=np.int64)


_RUNNERS = {
    "baseline": _run_baseline,
    "nurapid": _run_nurapid,
    "lru_pea": _run_lru_pea,
}


# ----------------------------------------------------------------------
# L3 stream derivation
# ----------------------------------------------------------------------
def _derive_l3_stream(ops, addrs, meas, l2_miss, l2_victim, plan=None):
    """The event stream L3 sees, in the scalar replay's exact order.

    Per L2 event: the demand/metadata access travels on to L3 when it
    missed L2 (an unabsorbed L1 writeback becomes an L3 writeback), and
    the L2 victim's writeback — emitted *after* the L3 access of the
    same event — follows immediately. Interleaving even slots (the
    forwarded event) with odd slots (the victim writeback) and masking
    the empties reproduces that order without a python loop. With a
    :class:`~repro.sim.replay_plan.ReplayPlan`, the policy-invariant
    interleaved address/measured scaffolds come precomputed; only the
    opcode lanes (which depend on the per-policy L2 outcome) are built
    here.
    """
    n = int(ops.shape[0])
    ops2 = np.full(2 * n, _OP_NONE, dtype=np.uint8)
    ops2[0::2] = np.where(l2_miss, ops, _OP_NONE)
    ops2[1::2] = np.where(l2_victim >= 0, OP_WRITEBACK, _OP_NONE)
    if plan is not None:
        addr2 = np.asarray(plan.l3_addr2).copy()
        addr2[1::2] = l2_victim
        meas2 = np.asarray(plan.l3_meas2)
    else:
        addr2 = np.empty(2 * n, dtype=np.int64)
        addr2[0::2] = addrs
        addr2[1::2] = l2_victim
        meas2 = np.empty(2 * n, dtype=bool)
        meas2[0::2] = meas
        meas2[1::2] = meas
    mask = ops2 != _OP_NONE
    return ops2[mask], addr2[mask], meas2[mask]


# ----------------------------------------------------------------------
# Publication into the (otherwise untouched) hierarchy
# ----------------------------------------------------------------------
def _publish_level(level, tally: _LevelTally, mq_pj: float) -> None:
    movements = sum(tally.mvr_sub)
    level.stats.adopt_counts(
        demand_hits=sum(tally.dh_sub),
        demand_misses=tally.demand_misses,
        metadata_hits=sum(tally.mh_sub),
        metadata_misses=tally.metadata_misses,
        hits_by_sublevel=[d + m for d, m in
                          zip(tally.dh_sub, tally.mh_sub)],
        insert_events=list(tally.ins_sub),
        move_read_events=list(tally.mvr_sub),
        move_write_events=list(tally.mvw_sub),
        wb_in_events=list(tally.wbin_sub),
        wb_out_events=list(tally.wbout_sub),
        reuse_histogram={
            "0": tally.hist[0], "1": tally.hist[1],
            "2": tally.hist[2], ">2": tally.hist[3],
        },
        default_insertions=sum(tally.ins_sub),
        movement_queue_events=movements,
        movement_queue_pj=mq_pj,
    )


# slip-audit: twin=vector-replay role=fast
def replay_capture_vector(hierarchy, capture: TraceCapture,
                          plan=None) -> bool:
    """Batched replay of a baseline-kind capture; False to fall back.

    On success the hierarchy's L2/L3/DRAM statistics and counters hold
    exactly what the scalar replay would have produced; the cache
    arrays themselves stay empty (``finalize`` adds nothing — the
    kernel accounts resident-line reuse itself), and the always-on
    ``capture-replay-conservation`` audit still runs in the caller.
    A verified :class:`~repro.sim.replay_plan.ReplayPlan` supplies the
    policy-invariant precompute (per-set grouping, L3 scaffold,
    measured mask); ``plan=None`` derives everything locally with the
    same arithmetic.
    """
    from .kernel_report import record_success
    if not vector_enabled():
        record_decline(hierarchy, "env:REPRO_VECTOR_REPLAY")
        return False
    kind = eligible_kind(hierarchy)
    if kind is None:
        return False
    record_success(hierarchy, "replay")
    run = _RUNNERS[kind]

    ops = np.asarray(capture.ops, dtype=np.uint8)
    addrs = np.asarray(capture.addrs, dtype=np.int64)
    n = int(ops.shape[0])
    if plan is not None:
        meas = np.asarray(plan.measured_mask())
        plan_data = (plan.l2_stream(capture) if kind == "lru_pea"
                     else plan.l2_grouped(capture))
    else:
        meas = np.zeros(n, dtype=bool)
        meas[capture.event_boundary:] = True
        plan_data = None

    l2, l3 = hierarchy.l2, hierarchy.l3
    tally2, miss2, victim2 = run(l2, hierarchy.l2_placement,
                                 ops, addrs, meas, plan_data)
    ops3, addrs3, meas3 = _derive_l3_stream(ops, addrs, meas,
                                            miss2, victim2, plan)
    tally3, miss3, victim3 = run(l3, hierarchy.l3_placement,
                                 ops3, addrs3, meas3)

    # DRAM: every measured L3 access miss is one read; writes are the
    # measured L3 victim writebacks plus unabsorbed writeback events.
    l3_meas_miss = miss3 & meas3
    dram_demand = int(np.count_nonzero(
        l3_meas_miss & (ops3 == OP_DEMAND_MISS)))
    dram_meta = int(np.count_nonzero(l3_meas_miss & (ops3 == OP_METADATA)))
    dram_wb = int(np.count_nonzero(l3_meas_miss & (ops3 == OP_WRITEBACK))) \
        + int(np.count_nonzero((victim3 >= 0) & meas3))

    check_vector_replay(
        ops, meas, ops3, meas3, tally2, tally3,
        dram_demand=dram_demand, dram_metadata=dram_meta,
    )

    # Measured-phase latency: only demand events contribute below L1,
    # and every term is an integer count times an integer latency.
    _, _, lat2, _ = _level_geometry(l2)
    _, _, lat3, _ = _level_geometry(l3)
    total = (
        sum(c * t for c, t in zip(tally2.dh_sub, lat2))
        + tally2.demand_misses * l2.cfg.latency_cycles
        + sum(c * t for c, t in zip(tally3.dh_sub, lat3))
        + tally3.demand_misses * (l3.cfg.latency_cycles
                                  + hierarchy.dram._latency)
    )

    mq2 = getattr(hierarchy.l2_placement, "movement_queue_pj", 0.0)
    mq3 = getattr(hierarchy.l3_placement, "movement_queue_pj", 0.0)
    _publish_level(l2, tally2, mq2)
    _publish_level(l3, tally3, mq3)
    counters = hierarchy.counters
    counters.total_latency_cycles += total
    counters.dram_demand_reads = dram_demand
    counters.dram_metadata_reads = dram_meta
    counters.dram_writebacks = dram_wb
    dram_stats = hierarchy.dram.stats
    dram_stats.reads = dram_demand + dram_meta
    dram_stats.writes = dram_wb
    return True
