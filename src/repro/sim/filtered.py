"""Filtered-trace capture/replay: skip the policy-invariant front end.

Every sweep cell re-simulates the full trace, yet the front end of
:meth:`~repro.mem.hierarchy.MemoryHierarchy.access` — the
``runtime.on_reference`` TLB handling, the profile-key derivation and
the whole L1 leg — is identical for every policy; only the L2/L3 back
end (and, for SLIP, the live metadata stream) differs. This module
captures that front end once per (trace, front-end fingerprint) and
then *replays* only the L1->L2 boundary events per policy cell,
producing a :class:`~repro.sim.results.RunResult` whose ``to_json()``
is byte-identical to a direct
:func:`~repro.sim.single_core.run_trace`.

Captures come from one of two passes:

* **Capture-through** (:func:`run_trace_capturing`): a direct run of a
  baseline-runtime-kind cell (baseline / nurapid / lru_pea) with thin
  recording wrappers around ``_access_below_l1`` /
  ``_writeback_below_l1`` that delegate to the real methods. The cell's
  own result comes out of the very same run, so the first cell of a
  sweep pays only the (small) recording overhead, not a separate pass.
* **Capture pass** (:func:`capture_front_end`): when the first cell to
  miss the store is a SLIP cell, a baseline hierarchy is driven with
  the below-L1 entry points *shadowed* by recorders returning zero
  latency — front-end accounting is still produced by exactly the code
  a direct run executes, and ``counters.total_latency_cycles`` at the
  end is precisely the frozen L1-side latency.

Both passes first offer the work to the batched capture kernel
(:mod:`~repro.sim.vector_frontend`), which simulates the TLB and L1
over the whole trace in three numpy phases and emits a byte-identical
:class:`~repro.workloads.capture_store.TraceCapture`; the scalar walks
below stay in place as the golden reference and serve every shape the
kernel declines (``hierarchy.vector_frontend_decline`` records why).

The captured stream is **runtime-kind invariant** — TLB hit/miss
positions are one page-grain probe per access regardless of runtime,
and the back end never feeds back into L1 or TLB state — so one
capture per (trace digest, L1 geometry, TLB size, warmup split, seed)
serves every policy; the fingerprint deliberately excludes the runtime
kind, sampler parameters and all back-end knobs:

* For the **baseline runtime kind** the metadata stream is a pure
  function of the TLB, so the flat captured event stream is replayed
  verbatim against a fresh back end and the frozen runtime/TLB stats
  are restored as-is.
* For the **slip runtime kind** (slip / slip_abp) the metadata stream
  depends on back-end feedback (reuse samples drive the page state
  machine), so the :class:`~repro.core.runtime.SlipRuntime` runs live:
  the replay merge-walks the captured TLB-miss and L1-miss positions,
  re-issuing the runtime's TLB-miss path at exactly the captured
  positions; the sampler RNG draws once per TLB miss in both direct
  and replayed runs, so the RNG stream is preserved.

Frozen front-end statistics (L1 LevelStats, TLB and runtime stats,
latency/hit counters) are merged back before ``finalize()``; the
restored L1 stats carry no energy tables, so materialization leaves
the frozen energy figures untouched.

Replay is bypassed (falling back to the direct path) when SimCheck is
enabled (``REPRO_CHECK_INVARIANTS``: the invariant wrappers observe
per-access events a replay does not generate), when the Section 7
rd-block extension is active for a SLIP policy (the SLIP-cache miss
stream is not captured), when per-level energy overrides are supplied
(frozen L1 energy would not reflect them), or when
``REPRO_FILTERED=0``. Every replay ends with the always-on
``capture-replay-conservation`` invariant
(:func:`repro.analysis.invariants.check_capture_replay`).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.invariants import (
    InvariantViolation,
    check_capture_replay,
    invariants_enabled,
)
from ..core.energy_model import LevelEnergyParams
from ..core.runtime import RuntimeStats
from ..mem.stats import EnergyBreakdown, LevelStats
from ..mem.tlb import TlbStats, pte_line_address
from ..workloads.capture_store import (
    OP_DEMAND_MISS,
    OP_METADATA,
    OP_WRITEBACK,
    CAPTURE_VERSION,
    CaptureError,
    TraceCapture,
    default_store,
    fingerprint_key,
    trace_content_digest,
)
from ..workloads.trace import Trace
from .build import build_hierarchy, maybe_boost_sampler, runtime_kind
from .config import SystemConfig, default_system
from .replay_plan import (
    build_plan,
    ensure_plan_verified,
    plan_enabled,
    plan_geometry,
    plan_geometry_key,
)
from .results import RunResult, collect_result
from .single_core import run_trace
from .timing import execution_time
from .vector_frontend import capture_front_end_vector
from .vector_replay import replay_capture_vector
from .vector_replay_slip import replay_capture_vector_slip

_FILTERED_ENV = "REPRO_FILTERED"
_DIRECT_ENV = "REPRO_DIRECT_PIPELINE"
_FALSEY = ("0", "false", "no", "off")


def filtered_enabled() -> bool:
    """Filtered replay is on unless ``REPRO_FILTERED`` disables it."""
    return os.environ.get(_FILTERED_ENV, "").strip().lower() not in _FALSEY


def direct_enabled() -> bool:
    """The composed direct pipeline is on unless
    ``REPRO_DIRECT_PIPELINE`` disables it."""
    return os.environ.get(_DIRECT_ENV, "").strip().lower() not in _FALSEY


def debug_flag(env_var: str) -> bool:
    """One truthy-env convention for the kernel debug toggles.

    ``REPRO_VECTOR_REPLAY_DEBUG`` and ``REPRO_VECTOR_FRONTEND_DEBUG``
    both resolve through here (empty/unset is off, and the usual falsey
    spellings stay off), so the two decline-echo switches can never
    drift apart.
    """
    value = os.environ.get(env_var, "").strip().lower()
    return bool(value) and value not in _FALSEY


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def front_end_fingerprint(
    trace: Trace,
    config: SystemConfig,
    seed: int,
    warmup_fraction: float,
) -> Dict:
    """Everything that can influence the captured front end.

    Deliberately *not* the full config hash: back-end knobs (L2/L3
    geometry and energies, DRAM, replacement ablations), the runtime
    kind and the sampler parameters never reach the L1 leg or the TLB
    probe sequence, so sweeps over them all share one capture. SLIP
    replays rebuild their runtime live from ``seed`` and the config.
    """
    return {
        "version": CAPTURE_VERSION,
        "trace": {
            "digest": trace_content_digest(trace),
            "length": len(trace),
        },
        "l1": asdict(config.l1),
        "l1_replacement": "lru",  # the hierarchy hard-wires L1 to LRU
        "tlb_entries": config.tlb_entries,
        "lines_per_page": config.lines_per_page,
        "timestamp_bits": config.slip.timestamp_bits,
        "warmup_fraction": warmup_fraction,
        "seed": seed,
    }


# ----------------------------------------------------------------------
# Capture assembly (shared by both capture modes)
# ----------------------------------------------------------------------
def _assemble_capture(
    hierarchy,
    n: int,
    warmup: int,
    event_boundary: int,
    ops: List[int],
    addrs: List[int],
    miss_pos: List[int],
    miss_wb: List[int],
    tlb_pos: List[int],
    l1_latency_cycles: int,
) -> TraceCapture:
    """Freeze the front-end statistics and pack the event arrays."""
    measured = ops[event_boundary:]
    counters = hierarchy.counters
    frozen = {
        "l1": asdict(hierarchy.l1.stats),
        "runtime": asdict(hierarchy.runtime.stats),
        "tlb": asdict(hierarchy.runtime.tlb.stats),
        "l1_latency_cycles": l1_latency_cycles,
        "l1_hits": counters.l1_hits,
        "demand_accesses": counters.demand_accesses,
        "event_counts": {
            "demand": measured.count(OP_DEMAND_MISS),
            "metadata": measured.count(OP_METADATA),
            "writeback": measured.count(OP_WRITEBACK),
        },
    }
    return TraceCapture(
        n=n,
        warmup=warmup,
        event_boundary=event_boundary,
        ops=np.asarray(ops, dtype=np.uint8),
        addrs=np.asarray(addrs, dtype=np.int64),
        l1_miss_pos=np.asarray(miss_pos, dtype=np.int64),
        l1_miss_wb=np.asarray(miss_wb, dtype=np.int64),
        tlb_miss_pos=np.asarray(tlb_pos, dtype=np.int64),
        frozen=frozen,
    )


# ----------------------------------------------------------------------
# Capture pass (shadowed back end)
# ----------------------------------------------------------------------
# slip-audit: twin=vector-frontend role=ref
def capture_front_end(trace: Trace, config: SystemConfig,
                      warmup_fraction: float = 0.25) -> TraceCapture:
    """Run the policy-invariant front end once; record the boundary.

    Builds a baseline hierarchy, shadows its below-L1 entry points with
    recorders and drives the real ``access()`` loop, so the frozen
    L1/TLB statistics are produced by the exact code a direct run
    executes.
    """
    hierarchy = build_hierarchy(config, "baseline")
    if hierarchy.simcheck is not None:
        raise CaptureError("capture pass cannot run under SimCheck")

    # Batched kernel first; it declines (returns None) outside its
    # eligibility matrix and the scalar walk below stays the golden
    # reference, exactly like the replay kernels.
    capture = capture_front_end_vector(hierarchy, trace, config,
                                       warmup_fraction)
    if capture is not None:
        return capture

    ops: list = []
    addrs: list = []
    miss_pos: list = []
    miss_wb: list = []
    tlb_pos: list = []
    pos = [0]

    def record_access(line_addr, is_metadata, page):
        addrs.append(line_addr)
        if is_metadata:
            ops.append(OP_METADATA)
            tlb_pos.append(pos[0])
        else:
            ops.append(OP_DEMAND_MISS)
            miss_pos.append(pos[0])
            miss_wb.append(-1)
        return 0

    def record_writeback(line_addr):
        # The fused L1 fill emits at most one writeback, attached to
        # the demand miss of the same access; anything else cannot be
        # replayed from the per-miss writeback slot.
        if (not miss_wb or miss_wb[-1] != -1
                or miss_pos[-1] != pos[0]):
            raise CaptureError("unrepresentable L1 writeback pattern")
        ops.append(OP_WRITEBACK)
        addrs.append(line_addr)
        miss_wb[-1] = line_addr

    hierarchy._access_below_l1 = record_access
    hierarchy._writeback_below_l1 = record_writeback

    addresses = trace.addresses.tolist()
    writes = trace.is_write.tolist()
    n = len(addresses)
    warmup = int(n * warmup_fraction)
    access = hierarchy.access
    index = 0
    for addr, is_write in zip(addresses[:warmup], writes[:warmup]):
        pos[0] = index
        access(addr, is_write)
        index += 1
    event_boundary = len(ops)
    hierarchy.reset_stats()
    for addr, is_write in zip(addresses[warmup:], writes[warmup:]):
        pos[0] = index
        access(addr, is_write)
        index += 1
    hierarchy.finalize()
    # Drop the recorder overrides: the closures reference the
    # hierarchy, and leaving them in its instance dict would cycle the
    # whole (large) object graph into the garbage collector.
    del hierarchy._access_below_l1, hierarchy._writeback_below_l1

    # Shadowed recorders returned zero latency, so the counter holds
    # exactly the L1-side (front-end) latency.
    return _assemble_capture(
        hierarchy, n, warmup, event_boundary, ops, addrs,
        miss_pos, miss_wb, tlb_pos,
        hierarchy.counters.total_latency_cycles,
    )


# ----------------------------------------------------------------------
# Capture-through (recording direct run)
# ----------------------------------------------------------------------
def run_trace_capturing(
    trace: Trace,
    policy: str,
    config: SystemConfig,
    seed: int = 0,
    replacement: str = "lru",
    warmup_fraction: float = 0.25,
    warmup_sampling_boost: bool = True,
    always_sample: bool = False,
) -> Tuple[RunResult, Optional[TraceCapture]]:
    """A direct run of a baseline-kind cell that also emits a capture.

    The below-L1 entry points are wrapped (not shadowed): every event
    is recorded *and* executed, so the returned result is the direct
    run's result and the capture is byte-equal to what
    :func:`capture_front_end` would produce — the event stream and the
    frozen front end are independent of this cell's back end. Returns
    ``(result, None)`` when no capture could be taken (SimCheck, or an
    unrepresentable L1 writeback pattern).
    """
    hierarchy = build_hierarchy(
        config, policy, seed=seed, replacement=replacement,
        always_sample=always_sample,
    )
    recording = hierarchy.simcheck is None

    # Batched kernel first: capture the front end without driving the
    # trace, then produce this cell's result by replaying the capture
    # (byte-identical to the direct run by the replay contract). Only
    # baseline-kind policies record the policy-invariant stream — a
    # slip-kind runtime would interleave its own metadata fetches.
    if recording and runtime_kind(policy) == "baseline":
        capture = capture_front_end_vector(hierarchy, trace, config,
                                           warmup_fraction)
        if capture is not None:
            result = replay_capture(
                trace, policy, capture, config, seed=seed,
                replacement=replacement,
                warmup_sampling_boost=warmup_sampling_boost,
                always_sample=always_sample,
            )
            return result, capture

    ops: list = []
    addrs: list = []
    miss_pos: list = []
    miss_wb: list = []
    tlb_pos: list = []
    pos = [0]
    below_demand_lat = [0]
    poisoned = [False]

    if recording:
        real_access = hierarchy._access_below_l1
        real_writeback = hierarchy._writeback_below_l1

        def record_access(line_addr, is_metadata, page):
            addrs.append(line_addr)
            if is_metadata:
                ops.append(OP_METADATA)
                tlb_pos.append(pos[0])
                return real_access(line_addr, True, page)
            ops.append(OP_DEMAND_MISS)
            miss_pos.append(pos[0])
            miss_wb.append(-1)
            latency = real_access(line_addr, False, page)
            below_demand_lat[0] += latency
            return latency

        def record_writeback(line_addr):
            if (not miss_wb or miss_wb[-1] != -1
                    or miss_pos[-1] != pos[0]):
                # Can't be represented in the per-miss writeback slot:
                # keep executing (the direct result is still valid),
                # just drop the capture at the end.
                poisoned[0] = True
            else:
                ops.append(OP_WRITEBACK)
                addrs.append(line_addr)
                miss_wb[-1] = line_addr
            real_writeback(line_addr)

        hierarchy._access_below_l1 = record_access
        hierarchy._writeback_below_l1 = record_writeback

    addresses = trace.addresses.tolist()
    writes = trace.is_write.tolist()
    n = len(addresses)
    warmup = int(n * warmup_fraction)
    maybe_boost_sampler(hierarchy.runtime, warmup_sampling_boost)
    access = hierarchy.access
    index = 0
    for addr, is_write in zip(addresses[:warmup], writes[:warmup]):
        pos[0] = index
        access(addr, is_write)
        index += 1
    event_boundary = len(ops)
    hierarchy.reset_stats()
    below_demand_lat[0] = 0
    for addr, is_write in zip(addresses[warmup:], writes[warmup:]):
        pos[0] = index
        access(addr, is_write)
        index += 1
    hierarchy.finalize()
    if recording:
        # As in capture_front_end: the wrapper closures reference the
        # hierarchy; remove them so the graph stays acyclic.
        del hierarchy._access_below_l1, hierarchy._writeback_below_l1

    capture: Optional[TraceCapture] = None
    if recording and not poisoned[0]:
        # The L1-side latency is whatever the below-L1 demand legs did
        # not contribute (metadata latency is discarded in access()).
        capture = _assemble_capture(
            hierarchy, n, warmup, event_boundary, ops, addrs,
            miss_pos, miss_wb, tlb_pos,
            hierarchy.counters.total_latency_cycles
            - below_demand_lat[0],
        )

    measured_instructions = (n - warmup) * trace.instructions_per_access
    timing = execution_time(hierarchy, measured_instructions, config.core)
    return collect_result(policy, trace.name, config, hierarchy,
                          timing), capture


# ----------------------------------------------------------------------
# Frozen-statistics restore
# ----------------------------------------------------------------------
def _restore_level_stats(payload: Dict) -> LevelStats:
    """A LevelStats carrying frozen figures and *no* energy tables.

    Without attached tables ``materialize()`` is a no-op, so the
    frozen energy breakdown survives ``finalize``/``collect_result``
    untouched. Containers are copied so a shared (store-resident)
    frozen dict can never be mutated by a replay.
    """
    data = dict(payload)
    energy = EnergyBreakdown(**data.pop("energy"))
    data["hits_by_sublevel"] = list(data["hits_by_sublevel"])
    data["insertions_by_class"] = dict(data["insertions_by_class"])
    data["reuse_histogram"] = dict(data["reuse_histogram"])
    stats = LevelStats(**data)
    stats.energy = energy
    return stats


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
# slip-audit: twin=vector-replay role=ref
def _replay_events(hierarchy, capture: TraceCapture) -> None:
    """Baseline-kind replay: feed the flat event stream verbatim."""
    ops = capture.ops.tolist()
    addrs = capture.addrs.tolist()
    pages = (capture.addrs >> hierarchy._page_shift).tolist()
    boundary = capture.event_boundary
    access_below = hierarchy._access_below_l1
    wb_below = hierarchy._writeback_below_l1
    demand, metadata = OP_DEMAND_MISS, OP_METADATA
    for op, addr, page in zip(ops[:boundary], addrs[:boundary],
                              pages[:boundary]):
        if op == demand:
            access_below(addr, False, page)
        elif op == metadata:
            access_below(addr, True, -1)
        else:
            wb_below(addr)
    hierarchy.reset_stats()
    total = 0
    for op, addr, page in zip(ops[boundary:], addrs[boundary:],
                              pages[boundary:]):
        if op == demand:
            # Metadata latency is discarded in access(); only demand
            # accesses contribute below-L1 latency.
            total += access_below(addr, False, page)
        elif op == metadata:
            access_below(addr, True, -1)
        else:
            wb_below(addr)
    hierarchy.counters.total_latency_cycles += total


# slip-audit: twin=slip-vector-replay role=ref
def _replay_slip(hierarchy, trace: Trace, capture: TraceCapture) -> None:
    """Slip-kind replay: live runtime driven at captured positions.

    Walks the captured TLB-miss and L1-miss positions in merged order,
    re-running the runtime's TLB-miss path (PTE fetch plus
    ``_key_metadata_fetches``) exactly where the direct run would, so
    sampler RNG draws, page-state transitions and EOU invocations all
    happen in the direct run's order.
    """
    runtime = hierarchy.runtime
    n = capture.n
    shift = hierarchy._page_shift
    addresses = trace.addresses
    miss_positions = capture.l1_miss_pos.tolist()
    miss_np = addresses[np.asarray(capture.l1_miss_pos)]
    miss_addrs = miss_np.tolist()
    miss_pages = (miss_np >> shift).tolist()
    wb_addrs = capture.l1_miss_wb.tolist()
    tlb_positions = capture.tlb_miss_pos.tolist()
    tlb_pages = (
        addresses[np.asarray(capture.tlb_miss_pos)] >> shift
    ).tolist()
    access_below = hierarchy._access_below_l1
    wb_below = hierarchy._writeback_below_l1
    key_fetches = runtime._key_metadata_fetches
    num_tlb, num_miss = len(tlb_positions), len(miss_positions)
    cursor = [0, 0]  # [tlb index, miss index]

    def run_phase(stop: int) -> int:
        tlb_i, miss_i = cursor
        total = 0
        runtime_stats = runtime.stats
        tlb_stats = runtime.tlb.stats
        while True:
            tlb_p = tlb_positions[tlb_i] if tlb_i < num_tlb else n
            miss_p = miss_positions[miss_i] if miss_i < num_miss else n
            p = tlb_p if tlb_p < miss_p else miss_p
            if p >= stop:
                break
            if tlb_p == p:
                page = tlb_pages[tlb_i]
                tlb_i += 1
                tlb_stats.misses += 1
                runtime_stats.tlb_miss_fetches += 1
                # Mirror on_reference: the fetch list (and with it the
                # page-state machinery) is computed before any of the
                # metadata lines travel below L1.
                fetches = key_fetches(page)
                access_below(pte_line_address(page), True, -1)
                for fetch in fetches:
                    access_below(fetch, True, -1)
            if miss_p == p:
                total += access_below(miss_addrs[miss_i], False,
                                      miss_pages[miss_i])
                wb = wb_addrs[miss_i]
                if wb >= 0:
                    wb_below(wb)
                miss_i += 1
        cursor[0], cursor[1] = tlb_i, miss_i
        return total

    run_phase(capture.warmup)
    hierarchy.reset_stats()
    total = run_phase(n)
    hierarchy.counters.total_latency_cycles += total
    # One page-grain TLB probe per access: hits are the complement of
    # the measured-phase misses (counted live above).
    tlb_stats = runtime.tlb.stats
    tlb_stats.hits = (n - capture.warmup) - tlb_stats.misses


def replay_capture(
    trace: Trace,
    policy: str,
    capture: TraceCapture,
    config: SystemConfig,
    seed: int = 0,
    replacement: str = "lru",
    warmup_sampling_boost: bool = True,
    level_energy_overrides: Optional[Dict[str, LevelEnergyParams]] = None,
    always_sample: bool = False,
    plan=None,
    hierarchy=None,
) -> RunResult:
    """Build only the back end and feed it the captured boundary.

    ``plan`` optionally carries the verified policy-invariant replay
    precompute (see :mod:`~repro.sim.replay_plan`) shared across cells;
    ``hierarchy`` lets the composed direct pipeline reuse the hierarchy
    it already built for the capture-kernel eligibility probe.
    """
    if hierarchy is None:
        hierarchy = build_hierarchy(
            config, policy, seed=seed, replacement=replacement,
            level_energy_overrides=level_energy_overrides,
            always_sample=always_sample,
        )
    if hierarchy.simcheck is not None:
        raise CaptureError("replay cannot run under SimCheck")
    runtime = hierarchy.runtime
    slip_kind = getattr(runtime, "slip_enabled", False)
    if slip_kind:
        if runtime.block_shift is not None:
            raise CaptureError("rd-block mode cannot be replayed")
        maybe_boost_sampler(runtime, warmup_sampling_boost)
        # Phase-split kernel first; it declines (returns False) outside
        # its eligibility matrix and the scalar walk stays the golden
        # reference.
        if not replay_capture_vector_slip(hierarchy, trace, capture,
                                          plan):
            _replay_slip(hierarchy, trace, capture)
    else:
        # Batched kernel first; it declines (returns False) whenever
        # the hierarchy is outside its eligibility matrix, and the
        # scalar walk below remains the golden reference.
        if not replay_capture_vector(hierarchy, capture, plan):
            _replay_events(hierarchy, capture)

    # Merge the frozen front end. The replay's own L1 is empty (never
    # filled), so finalize() touches only live L2/L3 state.
    frozen = capture.frozen
    hierarchy.l1.stats = _restore_level_stats(frozen["l1"])
    counters = hierarchy.counters
    counters.demand_accesses = int(frozen["demand_accesses"])
    counters.l1_hits = int(frozen["l1_hits"])
    counters.total_latency_cycles += int(frozen["l1_latency_cycles"])
    if not slip_kind:
        runtime.stats = RuntimeStats(**frozen["runtime"])
        runtime.tlb.stats = TlbStats(**frozen["tlb"])
    hierarchy.finalize()
    check_capture_replay(hierarchy, capture, slip_kind=slip_kind)
    measured_instructions = (
        (capture.n - capture.warmup) * trace.instructions_per_access
    )
    timing = execution_time(hierarchy, measured_instructions, config.core)
    return collect_result(policy, trace.name, config, hierarchy, timing)


# ----------------------------------------------------------------------
# Plan resolution (store-backed)
# ----------------------------------------------------------------------
def _resolve_plan(store, key: str, geometry: Dict,
                  capture: TraceCapture, trace: Trace):
    """The verified plan for one (capture, geometry), building on miss.

    Loaded plans (memory hit or disk sidecar) are structurally
    validated and pushed through the ``replay-plan-conservation``
    invariant before first use; any failure invalidates the cached
    plan and falls through to a fresh build, so a damaged or stale
    sidecar can only ever cost a rebuild, never change a result.
    """
    geom_key = plan_geometry_key(geometry)
    plan = store.get_plan(key, geom_key)
    if plan is not None and not plan.verified:
        try:
            plan.validate(capture)
            ensure_plan_verified(plan, capture, trace)
        except (CaptureError, InvariantViolation):
            store.invalidate_plan(key, geom_key)
            plan = None
    if plan is None:
        plan = ensure_plan_verified(
            build_plan(capture, trace, geometry), capture, trace)
        store.put_plan(key, geom_key, plan)
    return plan


# ----------------------------------------------------------------------
# Public driver
# ----------------------------------------------------------------------
def run_trace_filtered(
    trace: Trace,
    policy: str,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    replacement: str = "lru",
    warmup_fraction: float = 0.25,
    warmup_sampling_boost: bool = True,
    level_energy_overrides: Optional[Dict[str, LevelEnergyParams]] = None,
    always_sample: bool = False,
    store=None,
) -> RunResult:
    """Drop-in ``run_trace`` using capture/replay where it is legal.

    Byte-identical to :func:`~repro.sim.single_core.run_trace` by
    construction; falls back to it whenever a capture cannot represent
    the run (SimCheck, rd-block SLIP, per-level energy overrides,
    ``REPRO_FILTERED=0``, or a capture/store failure).
    """
    config = config or default_system()
    kind = runtime_kind(policy)
    if (
        not filtered_enabled()
        or invariants_enabled()
        or level_energy_overrides
        or (kind == "slip" and config.slip.rd_block_lines)
    ):
        return run_trace(
            trace, policy, config=config, seed=seed,
            replacement=replacement, warmup_fraction=warmup_fraction,
            warmup_sampling_boost=warmup_sampling_boost,
            level_energy_overrides=level_energy_overrides,
            always_sample=always_sample,
        )
    fingerprint = front_end_fingerprint(
        trace, config, seed, warmup_fraction,
    )
    key = fingerprint_key(fingerprint)
    if store is None:
        store = default_store()
    capture = store.get(key)
    if capture is None:
        if kind == "baseline":
            # Capture-through: the direct run of this very cell records
            # the boundary as a side effect, so the first cell of a
            # sweep costs one run, not a capture pass plus a replay.
            result, capture = run_trace_capturing(
                trace, policy, config, seed=seed,
                replacement=replacement,
                warmup_fraction=warmup_fraction,
                warmup_sampling_boost=warmup_sampling_boost,
                always_sample=always_sample,
            )
            if capture is not None:
                store.put(key, capture, fingerprint=fingerprint)
            return result
        try:
            capture = capture_front_end(trace, config, warmup_fraction)
        except CaptureError:
            return run_trace(
                trace, policy, config=config, seed=seed,
                replacement=replacement, warmup_fraction=warmup_fraction,
                warmup_sampling_boost=warmup_sampling_boost,
                level_energy_overrides=level_energy_overrides,
                always_sample=always_sample,
            )
        store.put(key, capture, fingerprint=fingerprint)
    plan = None
    if plan_enabled():
        plan = _resolve_plan(store, key, plan_geometry(config),
                             capture, trace)
    return replay_capture(
        trace, policy, capture, config, seed=seed,
        replacement=replacement,
        warmup_sampling_boost=warmup_sampling_boost,
        level_energy_overrides=level_energy_overrides,
        always_sample=always_sample,
        plan=plan,
    )


# ----------------------------------------------------------------------
# Composed direct pipeline (kernel capture -> kernel replay)
# ----------------------------------------------------------------------
#: Process-local plan cache for direct runs: the composed pipeline
#: deliberately writes nothing to the shared capture store (direct runs
#: are one-shot; "cold" means cold), but repeated direct runs of the
#: same (front end, geometry) in one process still share the plan.
_DIRECT_PLANS: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
_DIRECT_PLAN_LIMIT = 4


# slip-audit: twin=replay-plan role=fast
def try_run_direct(
    hierarchy,
    trace: Trace,
    policy: str,
    config: SystemConfig,
    seed: int = 0,
    replacement: str = "lru",
    warmup_fraction: float = 0.25,
    warmup_sampling_boost: bool = True,
    level_energy_overrides: Optional[Dict[str, LevelEnergyParams]] = None,
    always_sample: bool = False,
) -> Optional[RunResult]:
    """One direct run as kernel capture + kernel replay, or ``None``.

    The composed fast path behind :func:`~repro.sim.single_core.
    run_trace`: capture the front end with the batched kernel (the
    caller's freshly built ``hierarchy`` is only consulted for
    eligibility there, so reusing it for the replay is safe), then
    replay the capture against the same hierarchy. Declines — returning
    ``None`` so the caller walks the trace scalar — mirror
    :func:`run_trace_filtered`'s bypass matrix (``REPRO_FILTERED=0``,
    SimCheck, per-level energy overrides, rd-block SLIP) plus
    ``REPRO_DIRECT_PIPELINE=0`` and every front-end kernel decline.
    Never recurses into ``run_trace`` and never touches the shared
    capture store: a direct run stays a self-contained cold run.
    """
    if (
        not direct_enabled()
        or not filtered_enabled()
        or invariants_enabled()
        or level_energy_overrides
        or (runtime_kind(policy) == "slip" and config.slip.rd_block_lines)
    ):
        return None
    geometry = plan_geometry(config)
    plan = None
    plan_key = None
    if plan_enabled():
        fingerprint = front_end_fingerprint(
            trace, config, seed, warmup_fraction,
        )
        plan_key = (fingerprint_key(fingerprint),
                    plan_geometry_key(geometry))
        plan = _DIRECT_PLANS.get(plan_key)
        if plan is not None:
            _DIRECT_PLANS.move_to_end(plan_key)
    capture = capture_front_end_vector(hierarchy, trace, config,
                                       warmup_fraction, plan)
    if capture is None:
        return None
    if plan_key is not None and plan is None:
        plan = ensure_plan_verified(
            build_plan(capture, trace, geometry), capture, trace)
        _DIRECT_PLANS[plan_key] = plan
        while len(_DIRECT_PLANS) > _DIRECT_PLAN_LIMIT:
            _DIRECT_PLANS.popitem(last=False)
    return replay_capture(
        trace, policy, capture, config, seed=seed,
        replacement=replacement,
        warmup_sampling_boost=warmup_sampling_boost,
        always_sample=always_sample,
        plan=plan,
        hierarchy=hierarchy,
    )
