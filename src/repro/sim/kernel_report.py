"""Shared decline/success reporting for the vectorized kernels.

All three batched kernels (:mod:`~repro.sim.vector_replay`,
:mod:`~repro.sim.vector_replay_slip`,
:mod:`~repro.sim.vector_frontend`) record their outcome through this
module, so three things can never drift apart:

* the structured per-hierarchy record
  (:class:`~repro.mem.hierarchy.KernelDeclines` on
  ``hierarchy.kernel_declines``) tests and benches assert on;
* the one stderr decline format — ``vector-<kernel>: decline
  (<reason>)`` — gated by the kernel's ``REPRO_VECTOR_*_DEBUG``
  variable (``replay`` and the SLIP replay share
  ``REPRO_VECTOR_REPLAY_DEBUG``; the capture kernel uses
  ``REPRO_VECTOR_FRONTEND_DEBUG``);
* the process-wide tallies behind ``slip-experiments
  --kernel-report``: kernel runs and a per-reason decline histogram,
  per kernel. The tallies are in-process only — with ``--jobs > 1``
  the pool workers' counts never travel back, so the report covers the
  parent process's share of the work (the serial path covers
  everything).
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, List

#: hierarchy.kernel_declines field name -> debug env var.
KERNEL_DEBUG_ENVS: Dict[str, str] = {
    "replay": "REPRO_VECTOR_REPLAY_DEBUG",
    "frontend": "REPRO_VECTOR_FRONTEND_DEBUG",
}

_RUNS: Counter = Counter()
_DECLINES: Dict[str, Counter] = {kernel: Counter()
                                 for kernel in KERNEL_DEBUG_ENVS}


def _debug_enabled(kernel: str) -> bool:
    # Deferred import: filtered.py imports the kernel modules (which
    # import this module) at load time.
    from .filtered import debug_flag
    return debug_flag(KERNEL_DEBUG_ENVS[kernel])


def record_decline(hierarchy, kernel: str, reason: str) -> None:
    """One kernel bypassed a hierarchy: record where, why, and count.

    The reason lands on the matching ``hierarchy.kernel_declines``
    field so tests and benches can assert *why* a cell fell back to
    the scalar walk instead of inferring it from timings; with the
    kernel's debug env var set, the reason is also echoed to stderr
    (stdout stays reserved for deterministic experiment output).
    """
    setattr(hierarchy.kernel_declines, kernel, reason)
    _DECLINES[kernel][reason] += 1
    if _debug_enabled(kernel):
        print(f"vector-{kernel}: decline ({reason})", file=sys.stderr)


def record_success(hierarchy, kernel: str) -> None:
    """One kernel accepted a hierarchy: clear the record and count."""
    setattr(hierarchy.kernel_declines, kernel, None)
    _RUNS[kernel] += 1


def reset_kernel_counts() -> None:
    """Zero the process-wide tallies (tests, repeated report runs)."""
    _RUNS.clear()
    for declines in _DECLINES.values():
        declines.clear()


def kernel_report_lines() -> List[str]:
    """The ``--kernel-report`` summary, one line per kernel.

    Lines are ``[``-prefixed like the runner's timing lines, so the
    byte-identity smoke's ``grep -v '^\\['`` strips them: the report
    depends on scheduling (worker counts never travel back from a
    pool), not on the experiment's deterministic output.
    """
    lines = []
    for kernel in sorted(KERNEL_DEBUG_ENVS):
        runs = _RUNS[kernel]
        declines = _DECLINES[kernel]
        line = (f"[kernel-report] vector-{kernel}: {runs} kernel "
                f"run(s), {sum(declines.values())} decline(s)")
        if declines:
            detail = ", ".join(f"{reason}={count}" for reason, count
                               in sorted(declines.items()))
            line += f" [{detail}]"
        lines.append(line)
    return lines
