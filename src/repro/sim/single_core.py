"""Single-core trace-driven simulation driver."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.energy_model import LevelEnergyParams
from ..workloads.benchmarks import make_trace
from ..workloads.trace import Trace
from .build import build_hierarchy, maybe_boost_sampler
from .config import SystemConfig, default_system
from .results import RunResult, collect_result
from .timing import execution_time


def run_trace(
    trace: Trace,
    policy: str,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    replacement: str = "lru",
    warmup_fraction: float = 0.25,
    warmup_sampling_boost: bool = True,
    level_energy_overrides: Optional[Dict[str, LevelEnergyParams]] = None,
    always_sample: bool = False,
) -> RunResult:
    """Simulate one trace under one policy and collect all statistics.

    The first ``warmup_fraction`` of the trace warms caches, TLB and
    SLIP page metadata with statistics discarded afterwards — the
    analog of the paper's SimPoint warmup before measurement.

    Eligible runs go through the composed kernel pipeline (batched
    front-end capture -> batched replay, byte-identical by the kernel
    contracts; see :func:`~repro.sim.filtered.try_run_direct`); the
    scalar per-access walk below stays the golden reference and serves
    every shape the pipeline declines.
    """
    config = config or default_system()
    hierarchy = build_hierarchy(
        config, policy, seed=seed, replacement=replacement,
        level_energy_overrides=level_energy_overrides,
        always_sample=always_sample,
    )
    # Imported lazily: filtered.py imports this module at load time.
    from .filtered import try_run_direct

    result = try_run_direct(
        hierarchy, trace, policy, config, seed=seed,
        replacement=replacement, warmup_fraction=warmup_fraction,
        warmup_sampling_boost=warmup_sampling_boost,
        level_energy_overrides=level_energy_overrides,
        always_sample=always_sample,
    )
    if result is not None:
        return result
    return _run_trace_scalar(hierarchy, trace, policy, config,
                             warmup_fraction, warmup_sampling_boost)


# slip-audit: twin=replay-plan role=ref
def _run_trace_scalar(
    hierarchy,
    trace: Trace,
    policy: str,
    config: SystemConfig,
    warmup_fraction: float,
    warmup_sampling_boost: bool,
) -> RunResult:
    """The golden-reference scalar walk: one ``access()`` per reference."""
    addresses = trace.addresses.tolist()
    writes = trace.is_write.tolist()
    access = hierarchy.access
    warmup = int(len(addresses) * warmup_fraction)
    maybe_boost_sampler(hierarchy.runtime, warmup_sampling_boost)
    for addr, is_write in zip(addresses[:warmup], writes[:warmup]):
        access(addr, is_write)
    hierarchy.reset_stats()
    for addr, is_write in zip(addresses[warmup:], writes[warmup:]):
        access(addr, is_write)
    hierarchy.finalize()
    measured_instructions = (
        (len(addresses) - warmup) * trace.instructions_per_access
    )
    timing = execution_time(hierarchy, measured_instructions, config.core)
    return collect_result(policy, trace.name, config, hierarchy, timing)


def run_benchmark(
    benchmark: str,
    policy: str,
    length: int = 200_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    replacement: str = "lru",
) -> RunResult:
    """Generate a benchmark analog trace and simulate it."""
    trace = make_trace(benchmark, length, seed)
    return run_trace(trace, policy, config=config, seed=seed,
                     replacement=replacement)


def run_policy_sweep(
    benchmark: str,
    policies: Iterable[str],
    length: int = 200_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, RunResult]:
    """Run several policies over the *same* trace for fair comparison.

    ``jobs > 1`` fans the policies out across worker processes; results
    are identical to the serial run because each worker regenerates the
    trace deterministically through the shared trace cache.
    """
    config = config or default_system()
    policies = list(policies)
    # Imported lazily: the experiments package imports this module.
    from ..experiments.parallel import resolve_jobs, run_policy_grid

    if resolve_jobs(jobs) > 1 and len(policies) > 1:
        results, _ = run_policy_grid(
            [benchmark], policies, length, seed=seed, config=config,
            jobs=jobs,
        )
        return {policy: results[(benchmark, policy)] for policy in policies}
    # Serial path: filtered capture/replay shares the policy-invariant
    # front end across the policies (byte-identical to run_trace).
    from .filtered import run_trace_filtered

    trace = make_trace(benchmark, length, seed)
    return {
        policy: run_trace_filtered(trace, policy, config=config, seed=seed)
        for policy in policies
    }


def run_benchmark_suite(
    benchmarks: Sequence[str],
    policies: Sequence[str],
    length: int = 200_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, str], RunResult]:
    """Run a whole (benchmark x policy) grid, optionally in parallel.

    The workhorse behind figure sweeps: every cell is an independent
    simulation, so wall-clock scales down with ``jobs`` while the
    result dict stays byte-identical to a serial run.
    """
    from ..experiments.parallel import run_policy_grid

    results, _ = run_policy_grid(
        benchmarks, policies, length, seed=seed, config=config, jobs=jobs,
    )
    return results
