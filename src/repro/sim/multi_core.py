"""Two-core multiprogrammed simulation with a shared L3 (Figure 16).

Each core has a private L1 and a private 256 KB L2; the 2 MB L3 is
shared. Address spaces are disjoint (multiprogrammed SPEC, no sharing),
so the only interaction is capacity/interleaving pressure in the L3 —
which roughly doubles observed reuse distances, pushes more pages into
bypassing SLIPs, and yields the larger L3 savings the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.controller import SlipPlacement
from ..core.runtime import BaselineRuntime, SlipRuntime
from ..mem.cache import CacheLevel
from ..mem.hierarchy import MemoryHierarchy
from ..mem.replacement import LruReplacement
from ..mem.stats import DramStats, LevelStats
from ..policies.base import PlacementPolicy
from ..policies.baseline import BaselinePlacement
from ..policies.lru_pea import LruPeaPlacement, PeaLruReplacement
from ..policies.nurapid import NurapidPlacement
from ..workloads.mixes import CORE_ADDRESS_STRIDE, make_mix_traces
from ..workloads.trace import Trace
from .config import SystemConfig, default_system

#: Page-number shift that recovers the core id from a page.
_CORE_PAGE_SHIFT = (CORE_ADDRESS_STRIDE.bit_length() - 1) - 6


class RoutedSlipRuntime:
    """Routes shared-L3 SLIP queries to the owning core's runtime."""

    slip_enabled = True

    def __init__(self, runtimes: List[SlipRuntime]) -> None:
        self.runtimes = runtimes

    def _owner(self, page: int) -> SlipRuntime:
        core = min(page >> _CORE_PAGE_SHIFT, len(self.runtimes) - 1)
        return self.runtimes[core]

    def policy_for(self, level_name: str, page: int) -> int:
        return self._owner(page).policy_for(level_name, page)

    def is_sampling(self, page: int) -> bool:
        return self._owner(page).is_sampling(page)

    def policy_and_sampling(self, level_name: str, page: int):
        return self._owner(page).policy_and_sampling(level_name, page)

    def record_reuse(self, level_name: str, page: int,
                     reuse_distance: int) -> None:
        self._owner(page).record_reuse(level_name, page, reuse_distance)

    def record_miss_sample(self, level_name: str, page: int) -> None:
        self._owner(page).record_miss_sample(level_name, page)


@dataclass
class MulticoreResult:
    """Measurements from one two-core mix under one policy."""

    policy: str
    mix: Tuple[str, str]
    l2_stats: List[LevelStats]
    l3_stats: LevelStats
    dram: DramStats
    eou_energy_pj: float = 0.0
    dram_accesses: int = 0

    def l2_energy_pj(self) -> float:
        return math.fsum(s.energy.total_pj for s in self.l2_stats)

    def l3_energy_pj(self) -> float:
        return self.l3_stats.energy.total_pj + self.eou_energy_pj

    def combined_energy_pj(self) -> float:
        return self.l2_energy_pj() + self.l3_energy_pj()

    def savings_over(self, baseline: "MulticoreResult",
                     what: str) -> float:
        mine, base = {
            "L3": (self.l3_energy_pj(), baseline.l3_energy_pj()),
            "L2+L3": (self.combined_energy_pj(),
                      baseline.combined_energy_pj()),
            "DRAM": (float(self.dram_accesses),
                     float(baseline.dram_accesses)),
        }[what]
        if base == 0:
            return 0.0
        return 1.0 - mine / base


def _build_shared_l3(config: SystemConfig, policy: str,
                     runtimes: List, seed: int
                     ) -> Tuple[CacheLevel, PlacementPolicy]:
    if policy == "lru_pea":
        replacement = PeaLruReplacement()
    else:
        replacement = LruReplacement()
    level = CacheLevel(
        config.l3, replacement,
        track_metadata_energy=policy in ("slip", "slip_abp"),
        timestamp_bits=config.slip.timestamp_bits,
    )
    mq_pj = config.slip.movement_queue_lookup_pj
    placement: PlacementPolicy
    if policy == "baseline":
        placement = BaselinePlacement()
    elif policy == "nurapid":
        placement = NurapidPlacement(mq_pj)
    elif policy == "lru_pea":
        placement = LruPeaPlacement(mq_pj, seed=seed)
    elif policy in ("slip", "slip_abp"):
        router = RoutedSlipRuntime(runtimes)
        placement = SlipPlacement(runtimes[0].spaces["L3"], router, mq_pj)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    placement.attach(level)
    return level, placement


def run_mix(
    mix: Tuple[str, str],
    policy: str,
    length_per_core: int = 100_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    warmup_fraction: float = 0.3,
) -> MulticoreResult:
    """Simulate one two-core mix under one policy."""
    config = config or default_system()
    traces = make_mix_traces(mix, length_per_core, seed)
    return run_mix_traces(traces, mix, policy, config, seed,
                          warmup_fraction=warmup_fraction)


def run_mix_traces(
    traces: List[Trace],
    mix: Tuple[str, str],
    policy: str,
    config: SystemConfig,
    seed: int = 0,
    warmup_fraction: float = 0.3,
) -> MulticoreResult:
    num_cores = len(traces)
    mq_pj = config.slip.movement_queue_lookup_pj
    slip = policy in ("slip", "slip_abp")
    allow_abp = policy == "slip_abp"

    runtimes: List = []
    for core in range(num_cores):
        if slip:
            runtimes.append(
                SlipRuntime(config, allow_abp=allow_abp, seed=seed + core)
            )
        else:
            runtimes.append(BaselineRuntime(config))

    shared_l3, l3_placement = _build_shared_l3(
        config, policy, runtimes, seed
    )

    hierarchies: List[MemoryHierarchy] = []
    for core in range(num_cores):
        if policy == "baseline":
            l2_placement: PlacementPolicy = BaselinePlacement()
            l2_repl = LruReplacement()
        elif policy == "nurapid":
            l2_placement = NurapidPlacement(mq_pj)
            l2_repl = LruReplacement()
        elif policy == "lru_pea":
            l2_placement = LruPeaPlacement(mq_pj, seed=seed + core)
            l2_repl = PeaLruReplacement()
        else:
            l2_placement = SlipPlacement(
                runtimes[core].spaces["L2"], runtimes[core], mq_pj
            )
            l2_repl = LruReplacement()
        hierarchies.append(
            MemoryHierarchy(
                config,
                l2_placement=l2_placement,
                l3_placement=l3_placement,
                runtime=runtimes[core],
                l2_replacement=l2_repl,
                track_slip_metadata_energy=slip,
                shared_l3=(shared_l3, l3_placement),
            )
        )

    # Round-robin interleaving over the overlap window, with a warmup
    # prefix whose statistics are discarded (SimPoint-style). During
    # warmup, SLIP page-state transitions are accelerated to reach the
    # steady state the paper's 500M-instruction runs operate in.
    per_core = [
        (t.addresses.tolist(), t.is_write.tolist()) for t in traces
    ]
    shortest = min(len(a) for a, _ in per_core)
    warmup = int(shortest * warmup_fraction)
    if slip:
        # Scale compensation, as in run_trace: 2/32 keeps the paper's
        # 5.9% distribution-fetch fraction while letting pages learn
        # within laptop-scale traces.
        for rt in runtimes:
            rt.sampler.nsamp, rt.sampler.nstab = 2, 32
    for idx in range(warmup):
        for core, (addrs, writes) in enumerate(per_core):
            hierarchies[core].access(addrs[idx], writes[idx])
    for hierarchy in hierarchies:
        hierarchy.reset_stats()
    shared_l3.reset_stats()
    for idx in range(warmup, shortest):
        for core, (addrs, writes) in enumerate(per_core):
            hierarchies[core].access(addrs[idx], writes[idx])

    for hierarchy in hierarchies:
        hierarchy.finalize()
    # finalize() materialized every private level and the shared L3
    # (idempotently, once per owning hierarchy); materialize again
    # explicitly so the collection below cannot depend on that detail.
    shared_l3.stats.materialize()
    for hierarchy in hierarchies:
        hierarchy.l2.stats.materialize()

    # Aggregate per-channel DRAM ledgers. Counts are integers; the
    # energy total is assigned once via fsum over the materialized
    # per-channel products rather than accumulated with += (SLIP007).
    dram = DramStats()
    dram.reads = sum(h.dram.stats.reads for h in hierarchies)
    dram.writes = sum(h.dram.stats.writes for h in hierarchies)
    dram.energy_pj = math.fsum(
        h.dram.stats.energy_pj for h in hierarchies
    )
    dram_accesses = sum(h.dram.stats.accesses for h in hierarchies)

    eou_pj = 0.0
    if slip:
        eou_pj = math.fsum(rt.eou_energy_pj("L3") for rt in runtimes)

    return MulticoreResult(
        policy=policy,
        mix=tuple(mix),
        l2_stats=[h.l2.stats for h in hierarchies],
        l3_stats=shared_l3.stats,
        dram=dram,
        eou_energy_pj=eou_pj,
        dram_accesses=dram_accesses,
    )
