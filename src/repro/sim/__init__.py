"""Simulation drivers and system configuration (Tables 1 and 2).

Configuration types are imported eagerly; the drivers are resolved
lazily (PEP 562) because they pull in :mod:`repro.core`, which itself
depends on :mod:`repro.sim.config` — eager imports would cycle.
"""

from .config import (
    CacheLevelConfig,
    CoreConfig,
    DramConfig,
    SlipParams,
    SystemConfig,
    default_l2,
    default_l3,
    default_system,
)

_LAZY = {
    "POLICY_NAMES": ("repro.sim.build", "POLICY_NAMES"),
    "build_hierarchy": ("repro.sim.build", "build_hierarchy"),
    "runtime_kind": ("repro.sim.build", "runtime_kind"),
    "capture_front_end": ("repro.sim.filtered", "capture_front_end"),
    "replay_capture": ("repro.sim.filtered", "replay_capture"),
    "run_trace_capturing": ("repro.sim.filtered", "run_trace_capturing"),
    "run_trace_filtered": ("repro.sim.filtered", "run_trace_filtered"),
    "MulticoreResult": ("repro.sim.multi_core", "MulticoreResult"),
    "run_mix": ("repro.sim.multi_core", "run_mix"),
    "RunResult": ("repro.sim.results", "RunResult"),
    "collect_result": ("repro.sim.results", "collect_result"),
    "run_benchmark": ("repro.sim.single_core", "run_benchmark"),
    "run_policy_sweep": ("repro.sim.single_core", "run_policy_sweep"),
    "run_trace": ("repro.sim.single_core", "run_trace"),
    "TimingResult": ("repro.sim.timing", "TimingResult"),
    "execution_time": ("repro.sim.timing", "execution_time"),
}

__all__ = [
    "CacheLevelConfig",
    "CoreConfig",
    "DramConfig",
    "SlipParams",
    "SystemConfig",
    "default_l2",
    "default_l3",
    "default_system",
] + sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
