"""Replay plans: policy-invariant precompute shared across sweep cells.

Every sweep cell over one :class:`~repro.workloads.capture_store.
TraceCapture` re-derives identical artifacts before any policy code
runs: the whole-stream L2 set indices, the stable
:func:`~repro.sim.vector_replay._group_by_set` argsort (for L2 here,
and for L1 inside the front-end capture kernel), the interleaved L3
stream scaffold of :func:`~repro.sim.vector_replay._derive_l3_stream`,
and the captured-position address/page resolutions the SLIP kernel
needs. None of it depends on the policy — only on the capture and the
back-end geometry — so a :class:`ReplayPlan` computes it once per
``(capture, geometry)`` pair and every kernel consumes it:

* :func:`~repro.sim.vector_replay.replay_capture_vector` skips the L2
  argsort/bincount and the L3 scaffold allocation;
* :func:`~repro.sim.vector_replay_slip.replay_capture_vector_slip`
  skips resolving miss/TLB positions to addresses, pages and PTE
  lines;
* :func:`~repro.sim.vector_frontend.capture_front_end_vector` skips
  the per-trace L1 grouping (the plan's L1 part is a pure function of
  the trace, so repeated direct runs of the same trace reuse it).

Plans are cached next to their captures: in
:class:`~repro.workloads.capture_store.MemoryCaptureStore` as live
objects and in :class:`~repro.workloads.capture_store.DiskCaptureStore`
as memmap sidecar arrays under ``<entry>/plan-<geometry digest>/``
(same atomic tmp+rename, quarantine and eviction discipline as the
capture entries), so every pool worker of
:func:`~repro.experiments.parallel.run_policy_grid` shares one plan
per capture instead of recomputing it per cell per process.

Correctness story: a plan is pure derived data, so the always-on
``replay-plan-conservation`` invariant
(:func:`repro.analysis.invariants.check_replay_plan`) re-derives every
persisted array from the capture and compares byte-for-byte before the
first replay consumes a plan object — a corrupted or stale sidecar can
therefore never change a result, only cost a rebuild. The list-shaped
views the kernels consume (grouped columns, sentinel-terminated
position lists) are memoized lazily on the plan object and derived
from the checked arrays. ``REPRO_REPLAY_PLAN=0`` disables plan use
entirely (every kernel then recomputes exactly what it did before).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mem.tlb import PTE_TABLE_BASE, PTES_PER_LINE
from ..workloads.capture_store import (
    CaptureError,
    TraceCapture,
    fingerprint_key,
)
from ..workloads.trace import Trace
from .config import SystemConfig, line_to_page_shift

_PLAN_ENV = "REPRO_REPLAY_PLAN"
_FALSEY = ("0", "false", "no", "off")

#: Bump when the derivation of any plan array changes shape or
#: semantics; persisted sidecars with another version are quarantined.
PLAN_VERSION = 1

#: Arrays persisted to (and re-derived for) every plan, in a fixed
#: order so sidecar directories have a stable layout.
PLAN_ARRAY_NAMES: Tuple[str, ...] = (
    "l1_offs",      # L1 per-set slice offsets over the trace stream
    "l1_order",     # stable argsort of trace addrs by L1 set
    "l2_set_idx",   # whole-event-stream L2 set indices
    "l2_offs",      # L2 per-set slice offsets over the event stream
    "l2_order",     # stable argsort of event addrs by L2 set
    "l3_addr2",     # interleaved L3 scaffold: even slots = event addrs
    "l3_meas2",     # interleaved measured flags (odd = even slot's)
    "miss_addrs",   # trace addresses at the captured L1-miss positions
    "miss_pages",   # ... and their page numbers
    "tlb_pages",    # page numbers at the captured TLB-miss positions
    "pte_addrs",    # ... and their PTE line addresses
)


def plan_enabled() -> bool:
    """Plan caching is on unless ``REPRO_REPLAY_PLAN`` disables it."""
    return os.environ.get(_PLAN_ENV, "").strip().lower() not in _FALSEY


def plan_geometry(config: SystemConfig) -> Dict:
    """The back-end geometry a plan depends on (and nothing else).

    The capture fingerprint already pins the trace, L1 shape, TLB size,
    warmup split and seed; the only *additional* inputs to the plan
    arrays are the L2 set count and the line->page shift. Everything
    else (ways, sublevels, energies, policies, replacement) is consumed
    by the kernels after the plan, so sweeps over those knobs share one
    plan per capture.
    """
    return {
        "plan_version": PLAN_VERSION,
        "l1_sets": config.l1.sets,
        "l2_sets": config.l2.sets,
        "page_shift": line_to_page_shift(config.lines_per_page),
    }


def plan_geometry_key(geometry: Dict) -> str:
    """Canonical JSON key of a plan geometry (store/sidecar key)."""
    return fingerprint_key(geometry)


def derive_plan_arrays(capture: TraceCapture, trace: Trace,
                       geometry: Dict) -> Dict[str, np.ndarray]:
    """Compute every persisted plan array from scratch.

    Shared by :func:`build_plan` and the ``replay-plan-conservation``
    invariant, which re-runs this very derivation and compares — so
    the definition of "correct plan" lives in exactly one place.
    """
    t_addrs = np.asarray(trace.addresses, dtype=np.int64)
    l1_set_idx = t_addrs % geometry["l1_sets"]
    l1_order = np.argsort(l1_set_idx, kind="stable")
    l1_counts = np.bincount(l1_set_idx, minlength=geometry["l1_sets"])
    l1_offs = np.concatenate(([0], np.cumsum(l1_counts)))

    addrs = np.asarray(capture.addrs, dtype=np.int64)
    l2_set_idx = addrs % geometry["l2_sets"]
    l2_order = np.argsort(l2_set_idx, kind="stable")
    l2_counts = np.bincount(l2_set_idx, minlength=geometry["l2_sets"])
    l2_offs = np.concatenate(([0], np.cumsum(l2_counts)))

    n_events = int(addrs.shape[0])
    # Interleaved L3 scaffold: even slots carry the forwarded event,
    # odd slots the (per-policy) L2 victim writeback. Odd addresses are
    # filled at replay time; -1 keeps the persisted bytes deterministic.
    l3_addr2 = np.full(2 * n_events, -1, dtype=np.int64)
    l3_addr2[0::2] = addrs
    l3_meas2 = np.zeros(2 * n_events, dtype=bool)
    l3_meas2[2 * capture.event_boundary:] = True

    shift = geometry["page_shift"]
    miss_addrs = t_addrs[np.asarray(capture.l1_miss_pos)]
    tlb_pages = t_addrs[np.asarray(capture.tlb_miss_pos)] >> shift
    return {
        "l1_offs": l1_offs.astype(np.int64),
        "l1_order": l1_order.astype(np.int64),
        "l2_set_idx": l2_set_idx.astype(np.int64),
        "l2_offs": l2_offs.astype(np.int64),
        "l2_order": l2_order.astype(np.int64),
        "l3_addr2": l3_addr2,
        "l3_meas2": l3_meas2,
        "miss_addrs": miss_addrs,
        "miss_pages": miss_addrs >> shift,
        "tlb_pages": tlb_pages,
        "pte_addrs": PTE_TABLE_BASE + tlb_pages // PTES_PER_LINE,
    }


class ReplayPlan:
    """Policy-invariant replay precompute for one (capture, geometry).

    Holds the persisted numpy arrays (possibly memory-mapped from a
    disk sidecar) plus lazily memoized list-shaped views in exactly the
    forms the kernels consume. Plan objects are shared across cells and
    worker-process lifetimes, so every view is built at most once and
    **must never be mutated by a consumer** — the SLIP position lists
    come pre-terminated with their ``n`` sentinel for that reason.
    """

    __slots__ = ("geometry", "verified", "_l2_grouped", "_l2_stream",
                 "_l1_grouped", "_slip_lists") + PLAN_ARRAY_NAMES

    def __init__(self, geometry: Dict, arrays: Dict[str, np.ndarray],
                 verified: bool = False) -> None:
        self.geometry = dict(geometry)
        for name in PLAN_ARRAY_NAMES:
            setattr(self, name, arrays[name])
        #: Set by ``check_replay_plan`` once the arrays have been
        #: re-derived and compared; consumers check before first use.
        self.verified = verified
        self._l2_grouped: Optional[Tuple] = None
        self._l2_stream: Optional[Tuple] = None
        self._l1_grouped: Optional[Tuple] = None
        self._slip_lists: Optional[Tuple] = None

    def nbytes(self) -> int:
        """Approximate persisted footprint (store budget accounting)."""
        return sum(getattr(self, name).nbytes
                   for name in PLAN_ARRAY_NAMES)

    def validate(self, capture: TraceCapture) -> None:
        """Cheap structural checks against a capture's shape.

        Raises :class:`CaptureError` on damage (the store treats that
        as sidecar corruption: quarantine and rebuild). Byte-level
        agreement is the conservation invariant's job.
        """
        n_events = int(capture.ops.shape[0])
        n_miss = int(capture.l1_miss_pos.shape[0])
        n_tlb = int(capture.tlb_miss_pos.shape[0])
        expected = {
            "l1_order": None,          # trace-length, unknown here
            "l1_offs": None,
            "l2_set_idx": n_events,
            "l2_order": n_events,
            "l2_offs": None,
            "l3_addr2": 2 * n_events,
            "l3_meas2": 2 * n_events,
            "miss_addrs": n_miss,
            "miss_pages": n_miss,
            "tlb_pages": n_tlb,
            "pte_addrs": n_tlb,
        }
        for name in PLAN_ARRAY_NAMES:
            array = getattr(self, name)
            if array.ndim != 1:
                raise CaptureError(f"plan array {name} is not 1-d")
            want = expected[name]
            if want is not None and int(array.shape[0]) != want:
                raise CaptureError(
                    f"plan array {name} has {int(array.shape[0])} "
                    f"entries, capture implies {want}")
        if (int(self.l2_offs.shape[0]) != self.geometry["l2_sets"] + 1
                or int(self.l2_offs[-1]) != n_events):
            raise CaptureError("plan l2_offs disagrees with capture")
        if (int(self.l1_offs.shape[0]) != self.geometry["l1_sets"] + 1
                or int(self.l1_offs[-1]) != int(self.l1_order.shape[0])):
            raise CaptureError("plan l1_offs disagrees with l1_order")

    # ------------------------------------------------------------------
    # Kernel-facing memoized views
    # ------------------------------------------------------------------
    def measured_mask(self) -> np.ndarray:
        """Per-event measured flags (a view of the persisted scaffold)."""
        return self.l3_meas2[0::2]

    def l2_grouped(self, capture: TraceCapture) -> Tuple:
        """``_group_by_set`` columns for the L2 event stream.

        Same 5-tuple (offsets, event order, opcodes, addresses,
        measured flags, all plain lists) the baseline/NuRAPID runners
        build internally; the measured column exploits
        ``meas[order[k]] == order[k] >= event_boundary``.
        """
        cached = self._l2_grouped
        if cached is None:
            order = np.asarray(self.l2_order)
            ops = np.asarray(capture.ops, dtype=np.uint8)
            addrs = np.asarray(capture.addrs, dtype=np.int64)
            cached = self._l2_grouped = (
                np.asarray(self.l2_offs).tolist(),
                order.tolist(),
                ops[order].tolist(),
                addrs[order].tolist(),
                (order >= capture.event_boundary).tolist(),
            )
        return cached

    def l2_stream(self, capture: TraceCapture) -> Tuple:
        """Global-order event columns for the LRU-PEA runner."""
        cached = self._l2_stream
        if cached is None:
            cached = self._l2_stream = (
                np.asarray(self.l2_set_idx).tolist(),
                np.asarray(capture.ops).tolist(),
                np.asarray(capture.addrs).tolist(),
                np.asarray(self.measured_mask()).tolist(),
            )
        return cached

    def l1_grouped(self, trace: Trace, warmup: int) -> Tuple:
        """``_group_by_set`` columns for the front-end L1 walk."""
        cached = self._l1_grouped
        if cached is None:
            order = np.asarray(self.l1_order)
            t_addrs = np.asarray(trace.addresses, dtype=np.int64)
            writes = np.asarray(trace.is_write, dtype=bool)
            cached = self._l1_grouped = (
                np.asarray(self.l1_offs).tolist(),
                order.tolist(),
                writes[order].tolist(),
                t_addrs[order].tolist(),
                (order >= warmup).tolist(),
            )
        return cached

    def slip_lists(self, capture: TraceCapture) -> Tuple:
        """Position/address lists for the SLIP merge walk.

        Returns ``(miss_positions, miss_addrs, miss_pages, wb_addrs,
        tlb_positions, tlb_pages, pte_addrs)``. The two position lists
        are already terminated with the ``n`` sentinel the merge loop
        relies on; consumers must not append another.
        """
        cached = self._slip_lists
        if cached is None:
            miss_positions = np.asarray(capture.l1_miss_pos).tolist()
            miss_positions.append(capture.n)
            tlb_positions = np.asarray(capture.tlb_miss_pos).tolist()
            tlb_positions.append(capture.n)
            cached = self._slip_lists = (
                miss_positions,
                np.asarray(self.miss_addrs).tolist(),
                np.asarray(self.miss_pages).tolist(),
                np.asarray(capture.l1_miss_wb).tolist(),
                tlb_positions,
                np.asarray(self.tlb_pages).tolist(),
                np.asarray(self.pte_addrs).tolist(),
            )
        return cached


def build_plan(capture: TraceCapture, trace: Trace,
               geometry: Dict) -> ReplayPlan:
    """Derive a fresh (unverified) plan for one capture + geometry."""
    return ReplayPlan(geometry, derive_plan_arrays(capture, trace,
                                                   geometry))


def ensure_plan_verified(plan: ReplayPlan, capture: TraceCapture,
                         trace: Trace) -> ReplayPlan:
    """Run the conservation invariant once per plan object.

    Every plan — fresh build or sidecar load — passes through here
    before the first kernel consumes it; the check marks the object so
    shared (memoized) plans pay it exactly once per process.
    """
    if not plan.verified:
        from ..analysis.invariants import check_replay_plan
        check_replay_plan(plan, capture, trace)
    return plan


# ----------------------------------------------------------------------
# Sidecar (de)serialization, called by DiskCaptureStore
# ----------------------------------------------------------------------
PLAN_META_NAME = "plan.json"


def save_plan_dir(path: str, plan: ReplayPlan, geom_key: str) -> None:
    """Write one plan as ``.npy`` arrays + metadata under ``path``.

    The caller (the disk store) provides tmp-dir atomicity; this only
    materializes the files.
    """
    import json

    os.makedirs(path, exist_ok=True)
    for name in PLAN_ARRAY_NAMES:
        np.save(os.path.join(path, f"{name}.npy"),
                np.asarray(getattr(plan, name)))
    meta = {
        "version": PLAN_VERSION,
        "geom_key": geom_key,
        "geometry": plan.geometry,
    }
    with open(os.path.join(path, PLAN_META_NAME), "w",
              encoding="utf-8") as fh:
        json.dump(meta, fh, sort_keys=True)


def load_plan_dir(path: str, geom_key: str) -> ReplayPlan:
    """Memory-map one plan sidecar back into a (unverified) plan.

    Raises :class:`~repro.workloads.capture_store.ForeignEntryError`
    when the sidecar belongs to another geometry (a digest collision:
    a miss, not corruption) and :class:`CaptureError` /
    ``OSError``-family errors on structural damage (the store
    quarantines the sidecar and the caller rebuilds).
    """
    import json

    from ..workloads.capture_store import ForeignEntryError

    with open(os.path.join(path, PLAN_META_NAME),
              encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("version") != PLAN_VERSION:
        raise CaptureError(f"plan version {meta.get('version')!r}")
    if meta.get("geom_key") != geom_key:
        raise ForeignEntryError("plan sidecar geometry mismatch")
    arrays: Dict[str, np.ndarray] = {}
    for name in PLAN_ARRAY_NAMES:
        arrays[name] = np.load(os.path.join(path, f"{name}.npy"),
                               mmap_mode="r")
    return ReplayPlan(meta["geometry"], arrays)
