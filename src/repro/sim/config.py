"""System and energy configuration (Tables 1 and 2 of the paper).

Every experiment builds a :class:`SystemConfig`, usually via
:func:`default_system`, which reproduces the paper's 45 nm single-core
setup: 32 KB L1, 256 KB 16-way L2, 2 MB 16-way L3, with each lower-level
cache split into three sublevels of 4 + 4 + 8 ways.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Optional, Tuple

LINE_SIZE_BYTES = 64
LINE_SIZE_BITS = LINE_SIZE_BYTES * 8
PAGE_SIZE_BYTES = 4096
LINES_PER_PAGE = PAGE_SIZE_BYTES // LINE_SIZE_BYTES


def line_to_page_shift(lines_per_page: int = LINES_PER_PAGE) -> int:
    """Right-shift turning a line address into its page number.

    The one shared definition of the page grain: the hierarchy derives
    its ``_page_shift`` from here (via ``SystemConfig.lines_per_page``)
    and trace footprint reporting uses the same hook, so a non-4KB-page
    config cannot silently disagree with the simulator about what a
    "page" is. ``lines_per_page`` is rounded up to the next power of
    two, matching the hierarchy's historical derivation.
    """
    shift = 0
    while (1 << shift) < lines_per_page:
        shift += 1
    return shift


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry, latency and energy of one cache level.

    ``sublevel_ways`` partitions the ways into sublevels ordered from the
    most energy-efficient (nearest the cache controller) to the least.
    An empty tuple means the level is uniform (no sublevels), as for L1.
    Energies are per line-sized access, in picojoules.
    """

    name: str
    size_bytes: int
    ways: int
    latency_cycles: int
    access_energy_pj: float
    metadata_energy_pj: float = 0.0
    sublevel_ways: Tuple[int, ...] = ()
    sublevel_energy_pj: Tuple[float, ...] = ()
    sublevel_latency: Tuple[int, ...] = ()
    line_size: int = LINE_SIZE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_size):
            raise ValueError(f"{self.name}: size not divisible by ways*line")
        if self.sublevel_ways and sum(self.sublevel_ways) != self.ways:
            raise ValueError(f"{self.name}: sublevel ways must sum to ways")
        if self.sublevel_ways and (
            len(self.sublevel_ways) != len(self.sublevel_energy_pj)
            or len(self.sublevel_ways) != len(self.sublevel_latency)
        ):
            raise ValueError(f"{self.name}: sublevel spec lengths differ")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sublevels(self) -> int:
        return len(self.sublevel_ways) if self.sublevel_ways else 1

    def sublevel_of_way(self, way: int) -> int:
        """Sublevel index that the given way belongs to."""
        if not self.sublevel_ways:
            return 0
        upper = 0
        for idx, n_ways in enumerate(self.sublevel_ways):
            upper += n_ways
            if way < upper:
                return idx
        raise IndexError(f"way {way} out of range for {self.name}")

    def ways_of_sublevel(self, sublevel: int) -> range:
        """Way indices composing the given sublevel."""
        if not self.sublevel_ways:
            return range(self.ways)
        start = sum(self.sublevel_ways[:sublevel])
        return range(start, start + self.sublevel_ways[sublevel])

    def sublevel_capacity_lines(self, sublevel: int) -> int:
        """Capacity, in cache lines, of one sublevel."""
        n_ways = self.sublevel_ways[sublevel] if self.sublevel_ways else self.ways
        return n_ways * self.sets

    def cumulative_capacity_lines(self) -> Tuple[int, ...]:
        """Cumulative capacities (in lines) through each sublevel."""
        out, total = [], 0
        for idx in range(self.num_sublevels):
            total += self.sublevel_capacity_lines(idx)
            out.append(total)
        return tuple(out)

    # ------------------------------------------------------------------
    # Flat lookup tables for the simulator hot path. Computed once per
    # config (cached_property writes straight into __dict__, which the
    # frozen dataclass permits) so CacheLevel never rescans sublevels
    # per access.
    # ------------------------------------------------------------------
    @cached_property
    def way_sublevels(self) -> Tuple[int, ...]:
        """Sublevel of every way, indexed by way."""
        return tuple(self.sublevel_of_way(w) for w in range(self.ways))

    @cached_property
    def sublevel_read_energies_pj(self) -> Tuple[float, ...]:
        """Per-sublevel read energy; single entry for uniform levels."""
        if not self.sublevel_energy_pj:
            return (self.access_energy_pj,)
        return tuple(self.sublevel_energy_pj)

    @cached_property
    def way_read_energies_pj(self) -> Tuple[float, ...]:
        """Read energy of every way, indexed by way."""
        table = self.sublevel_read_energies_pj
        return tuple(table[s] for s in self.way_sublevels)

    @cached_property
    def way_latencies(self) -> Tuple[int, ...]:
        """Access latency of every way, indexed by way."""
        if not self.sublevel_latency:
            return (self.latency_cycles,) * self.ways
        return tuple(
            self.sublevel_latency[s] for s in self.way_sublevels
        )

    def read_energy_pj(self, way: int) -> float:
        """Energy of reading a line from the given way."""
        if not self.sublevel_energy_pj:
            return self.access_energy_pj
        return self.sublevel_energy_pj[self.sublevel_of_way(way)]

    # A write drives the same wires and bitlines as a read at this
    # granularity, so we charge the same energy.
    write_energy_pj = read_energy_pj

    def latency_of_way(self, way: int) -> int:
        if not self.sublevel_latency:
            return self.latency_cycles
        return self.sublevel_latency[self.sublevel_of_way(way)]

    def average_access_energy_pj(self) -> float:
        """Way-capacity-weighted mean access energy across the level."""
        if not self.sublevel_energy_pj:
            return self.access_energy_pj
        total = math.fsum(
            n * e for n, e in zip(self.sublevel_ways, self.sublevel_energy_pj)
        )
        return total / self.ways


@dataclass(frozen=True)
class DramConfig:
    """DRAM access model (Vogelsang-style Idd4 + Idd7RW energy)."""

    latency_cycles: int = 100
    energy_pj_per_bit: float = 20.0
    line_size: int = LINE_SIZE_BYTES

    @property
    def energy_pj_per_line(self) -> float:
        return self.energy_pj_per_bit * self.line_size * 8


@dataclass(frozen=True)
class SlipParams:
    """SLIP mechanism parameters (Section 4 of the paper)."""

    num_bins: int = 4
    bin_bits: int = 4
    timestamp_bits: int = 6
    nsamp: int = 16
    nstab: int = 256
    eou_energy_pj: float = 1.27
    movement_queue_entries: int = 16
    movement_queue_lookup_pj: float = 0.3
    include_insertion_energy: bool = True
    # Evidence (samples in the current sampling period) required before
    # the EOU may choose the All-Bypass Policy at the LLC. Bypassing at
    # L3 breaks even at a ~1.3% hit rate (DRAM costs ~75x an L3 access),
    # a call that cannot be made from a handful of samples; the paper's
    # Nsamp=16 sampling periods gather ~64+ samples per decision, and
    # this floor restores that property at accelerated sampling rates.
    l3_abp_min_samples: int = 24
    # Section 7 extension: reuse-distance blocks smaller than a page.
    # 0 keeps the paper's evaluation default (one rd-block per 4 KB
    # page); a power of two < 64 keys profiles and policies by
    # ``rd_block_lines``-line blocks, cached in a TLB-like SLIP-cache.
    rd_block_lines: int = 0
    slip_cache_entries: int = 128

    @property
    def bin_max(self) -> int:
        return (1 << self.bin_bits) - 1


@dataclass(frozen=True)
class CoreConfig:
    """Core timing/energy model used for speedup and full-system energy."""

    frequency_ghz: float = 2.4
    base_cpi: float = 0.5
    # Fraction of an access's memory stall that the OoO window cannot hide.
    stall_exposure: float = 0.35
    # Dynamic core + L1 energy per instruction, used only for the
    # full-system roll-up (Figure 10). Calibrated so that L2 + L3 sit in
    # the 5-10% of full-system dynamic energy implied by the paper.
    core_energy_pj_per_instr: float = 120.0
    l1_access_energy_pj: float = 10.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete single-core system (Tables 1 and 2)."""

    l1: CacheLevelConfig
    l2: CacheLevelConfig
    l3: CacheLevelConfig
    dram: DramConfig
    slip: SlipParams = field(default_factory=SlipParams)
    core: CoreConfig = field(default_factory=CoreConfig)
    tlb_entries: int = 64
    page_size: int = PAGE_SIZE_BYTES

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.l2.line_size

    def with_slip(self, **kwargs) -> "SystemConfig":
        return replace(self, slip=replace(self.slip, **kwargs))


def default_l1() -> CacheLevelConfig:
    return CacheLevelConfig(
        name="L1",
        size_bytes=32 * 1024,
        ways=8,
        latency_cycles=4,
        access_energy_pj=10.0,
    )


def default_l2(energies: Optional[Tuple[float, ...]] = None,
               baseline_energy: float = 39.0,
               metadata_energy: float = 1.0) -> CacheLevelConfig:
    """256 KB 16-way L2, sublevels of 64 KB / 64 KB / 128 KB (Table 1)."""
    return CacheLevelConfig(
        name="L2",
        size_bytes=256 * 1024,
        ways=16,
        latency_cycles=7,
        access_energy_pj=baseline_energy,
        metadata_energy_pj=metadata_energy,
        sublevel_ways=(4, 4, 8),
        sublevel_energy_pj=energies or (21.0, 33.0, 50.0),
        sublevel_latency=(4, 6, 8),
    )


def default_l3(energies: Optional[Tuple[float, ...]] = None,
               baseline_energy: float = 136.0,
               metadata_energy: float = 2.5) -> CacheLevelConfig:
    """2 MB 16-way L3, sublevels of 512 KB / 512 KB / 1 MB (Table 1)."""
    return CacheLevelConfig(
        name="L3",
        size_bytes=2 * 1024 * 1024,
        ways=16,
        latency_cycles=20,
        access_energy_pj=baseline_energy,
        metadata_energy_pj=metadata_energy,
        sublevel_ways=(4, 4, 8),
        sublevel_energy_pj=energies or (67.0, 113.0, 176.0),
        sublevel_latency=(15, 19, 23),
    )


def default_system() -> SystemConfig:
    """The paper's 45 nm single-core system (Tables 1 and 2)."""
    return SystemConfig(
        l1=default_l1(),
        l2=default_l2(),
        l3=default_l3(),
        dram=DramConfig(),
    )
