"""Batched front-end capture kernel: the TLB + L1 leg, whole-trace.

The scalar capture passes (:func:`repro.sim.filtered.capture_front_end`
and :func:`repro.sim.filtered.run_trace_capturing`) drive the full
``MemoryHierarchy.access`` loop one reference at a time just to learn
the policy-invariant facts a capture stores: which accesses miss the
TLB, which miss L1, which evictions were dirty, and the frozen
front-end statistics. All of those are pure stack-distance facts of
the reference stream — the TLB is a fully-associative LRU over page
numbers and the L1 is a set-associative LRU over line tags, neither of
which observes anything the back end does — so this module computes
them for the *entire* trace in three batched phases and packages a
byte-identical :class:`~repro.workloads.capture_store.TraceCapture`
without ever touching a ``Line`` object:

* **Phase 1 (TLB)** derives page numbers for the whole stream
  vectorized, run-compresses consecutive same-page references (repeats
  only re-touch the MRU slot, so only run heads can miss), and walks
  the run heads through an ``OrderedDict`` LRU to recover the global
  TLB-miss positions. Each miss interleaves exactly one metadata (PTE
  line) event, mirroring ``BaselineRuntime.on_reference``.
* **Phase 2 (L1)** groups the access stream per set with the same
  stable-argsort machinery the replay kernels use
  (:func:`repro.sim.vector_replay._group_by_set`) and runs a tight
  per-set loop over tag / LRU-order / dirty / hit-count columns. The
  eligible L1 is uniform (no sublevel partition) with stock LRU
  replacement, so the victim of a full set is the unique least-recent
  tag and way choice is statistically invisible — no second
  way-assignment pass is needed.
* **Phase 3** scatters the per-access miss / metadata / writeback
  flags into the flat capture event stream with an exclusive cumulative
  sum (preserving the scalar per-access order: metadata, then demand
  miss, then writeback) and assembles the frozen
  ``LevelStats``/``TlbStats``/``RuntimeStats`` from integer tallies via
  :meth:`~repro.mem.stats.LevelStats.adopt_counts` — the same deferred
  accounting path the replay kernels use, so materialized energy is
  bit-identical to the scalar walk's.

The warmup boundary follows the scalar semantics exactly: array state
(TLB contents, resident lines, per-line hit counts) flows through the
``reset_stats()`` boundary while the frozen tallies count only
measured-phase events, and the reuse histogram records a line's
*full-life* hits both at measured-phase eviction and for every line
still resident at the end (``finalize()`` runs after the reset).

Capture requests fall back to the scalar walk (``return None``)
whenever the hierarchy is not eligible: SimCheck, a Section 7 rd-block
runtime, a non-LRU L1 replacement, metadata-energy tracking on L1, or
a sublevel-partitioned L1 geometry (the kernel's closed-form latency
``(n - warmup) * latency_cycles`` needs uniform way latencies).
``REPRO_VECTOR_FRONTEND`` (default on, same falsey values as
``REPRO_FILTERED``) disables the kernel entirely, and declines are
recorded on ``hierarchy.vector_frontend_decline`` — echoed to stderr
under ``REPRO_VECTOR_FRONTEND_DEBUG=1`` — mirroring the
``vector_replay_decline`` contract. Every kernel capture is audited by
the always-on ``vector-frontend-conservation`` invariant before it is
published.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import asdict
from typing import Dict, List, Optional

import numpy as np

from ..analysis.invariants import check_vector_frontend
from ..core.runtime import RuntimeStats
from ..mem.replacement import LruReplacement
from ..mem.stats import LevelStats
from ..mem.tlb import PTE_TABLE_BASE, PTES_PER_LINE, TlbStats
from ..workloads.capture_store import (
    OP_DEMAND_MISS,
    OP_METADATA,
    OP_WRITEBACK,
    TraceCapture,
)
from ..workloads.trace import Trace
from .config import SystemConfig, line_to_page_shift
from .vector_replay import _group_by_set

_VECTOR_ENV = "REPRO_VECTOR_FRONTEND"
_FALSEY = ("0", "false", "no", "off")


def frontend_enabled() -> bool:
    """The kernel is on unless ``REPRO_VECTOR_FRONTEND`` disables it."""
    return os.environ.get(_VECTOR_ENV, "").strip().lower() not in _FALSEY


def record_decline(hierarchy, reason: str) -> None:
    """Remember why the capture kernel bypassed this hierarchy.

    Same contract as :func:`repro.sim.vector_replay.record_decline`: a
    thin wrapper over :func:`repro.sim.kernel_report.record_decline`,
    which owns the structured record, the decline tallies, and the
    shared stderr format.
    """
    from .kernel_report import record_decline as _record
    _record(hierarchy, "frontend", reason)


def frontend_eligible(hierarchy) -> bool:
    """Whether a hierarchy's front end matches the kernel's model.

    Exact-type checks, like the replay kernels: anything but the stock
    uniform-LRU L1 over a baseline-kind TLB path falls back to the
    scalar golden reference, recording its reason via
    :func:`record_decline`.
    """
    if hierarchy.simcheck is not None:
        record_decline(hierarchy, "simcheck")
        return False
    if getattr(hierarchy.runtime, "block_shift", None) is not None:
        record_decline(hierarchy, "rd-block")
        return False
    l1 = hierarchy.l1
    if type(l1.replacement) is not LruReplacement:
        record_decline(
            hierarchy, f"l1-replacement:{type(l1.replacement).__name__}")
        return False
    if l1.track_metadata_energy:
        record_decline(hierarchy, "l1-metadata-energy")
        return False
    if l1.cfg.sublevel_ways:
        record_decline(hierarchy, "l1-geometry")
        return False
    return True


# ----------------------------------------------------------------------
# Phase 1: TLB over the run-compressed page stream
# ----------------------------------------------------------------------
def _tlb_miss_positions(pages: np.ndarray, entries: int) -> np.ndarray:
    """Global positions whose page-grain probe misses the LRU TLB.

    A repeated page can only re-touch the MRU slot, so the LRU state
    (and every hit/miss outcome) is fully determined by the heads of
    maximal same-page runs — the loop below touches only those.
    """
    n = int(pages.shape[0])
    if n == 0:
        return np.empty(0, dtype=np.int64)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(pages[1:], pages[:-1], out=change[1:])
    run_starts = np.flatnonzero(change)
    tlb: "OrderedDict[int, None]" = OrderedDict()
    misses: List[int] = []
    append_miss = misses.append
    move_to_end = tlb.move_to_end
    popitem = tlb.popitem
    for i, page in zip(run_starts.tolist(), pages[run_starts].tolist()):
        if page in tlb:
            move_to_end(page)
        else:
            append_miss(i)
            tlb[page] = None
            if len(tlb) > entries:
                popitem(last=False)
    return np.asarray(misses, dtype=np.int64)


# ----------------------------------------------------------------------
# Phase 2: per-set L1 tag/LRU/dirty trajectory
# ----------------------------------------------------------------------
class _L1Tally:
    """Measured-phase integer tallies of the batched L1 walk."""

    __slots__ = ("hits", "misses", "writebacks", "evictions",
                 "residents", "hist")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0        # dirty victims departing measured
        self.evictions = 0         # victims departing measured
        self.residents = 0         # lines resident at end of trace
        self.hist = [0, 0, 0, 0]   # reuse histogram 0 / 1 / 2 / >2


def _run_l1(addrs: np.ndarray, writes: np.ndarray, warmup: int,
            num_sets: int, ways: int, grouped=None):
    """Resolve every L1 outcome with one tight loop per set.

    Returns ``(miss, victim, tally)``: per-access miss flags, the dirty
    victim's tag per access (``-1`` when the fill evicted nothing
    dirty), and the measured-phase tallies. Mirrors the fused
    hit/miss/fill path of ``MemoryHierarchy.access`` at tag level —
    for a uniform LRU L1 the victim of a full set is the unique
    least-recent tag, so way identity never matters. ``grouped``
    optionally supplies the per-set grouping precomputed by a
    :class:`~repro.sim.replay_plan.ReplayPlan`.
    """
    n = int(addrs.shape[0])
    if grouped is not None:
        offs, evt, wr_l, tag_l, meas_l = grouped
    else:
        meas = np.arange(n, dtype=np.int64) >= warmup
        offs, evt, wr_l, tag_l, meas_l = _group_by_set(
            writes, addrs, meas, num_sets)
    miss: List[bool] = [False] * n
    victim: List[int] = [-1] * n
    tally = _L1Tally()
    hist = tally.hist
    hits_meas = misses_meas = wb_meas = evict_meas = residents = 0
    for s in range(num_sets):
        a, b = offs[s], offs[s + 1]
        if a == b:
            continue
        where: Dict[int, int] = {}
        order_: List[int] = []     # resident slots, front == LRU
        f_tag: List[int] = []      # append-only slot columns
        f_dirty: List[bool] = []
        f_hits: List[int] = []     # full-life hits (line.hits survives
        #                            the warmup reset_stats boundary)
        get = where.get
        remove = order_.remove
        push = order_.append
        for k in range(a, b):
            tag = tag_l[k]
            j = get(tag)
            if j is not None:
                f_hits[j] += 1
                if wr_l[k]:
                    f_dirty[j] = True
                if meas_l[k]:
                    hits_meas += 1
                remove(j)
                push(j)
                continue
            m = meas_l[k]
            miss[evt[k]] = True
            if m:
                misses_meas += 1
            if len(order_) == ways:
                v = order_.pop(0)
                del where[f_tag[v]]
                if m:
                    h = f_hits[v]
                    hist[h if h < 3 else 3] += 1
                    evict_meas += 1
                if f_dirty[v]:
                    victim[evt[k]] = f_tag[v]
                    if m:
                        wb_meas += 1
            j = len(f_tag)
            f_tag.append(tag)
            f_dirty.append(bool(wr_l[k]))   # write-allocate: born dirty
            f_hits.append(0)
            where[tag] = j
            push(j)
        residents += len(where)
        for j in where.values():            # finalize(): resident reuse
            h = f_hits[j]
            hist[h if h < 3 else 3] += 1
    tally.hits = hits_meas
    tally.misses = misses_meas
    tally.writebacks = wb_meas
    tally.evictions = evict_meas
    tally.residents = residents
    return miss, victim, tally


# ----------------------------------------------------------------------
# Phase 3: event scatter + frozen statistics
# ----------------------------------------------------------------------
def _frozen_frontend(l1cfg, tally: _L1Tally, tlb_misses: int,
                     measured: int) -> Dict:
    """The frozen front-end statistics for one batched capture.

    Built on the exact path the scalar walk lands on: a real
    :class:`~repro.mem.stats.LevelStats` with the L1's energy tables
    attached, counts published through ``adopt_counts`` and energy
    materialized from integer event counts — so every float is
    bit-identical to the scalar capture's.
    """
    stats = LevelStats(l1cfg.name, num_sublevels=1)
    stats.attach_energy_tables(
        l1cfg.sublevel_read_energies_pj,
        l1cfg.sublevel_read_energies_pj,
        l1cfg.metadata_energy_pj,
    )
    hist = tally.hist
    stats.adopt_counts(
        demand_hits=tally.hits,
        demand_misses=tally.misses,
        metadata_hits=0,
        metadata_misses=0,
        hits_by_sublevel=[tally.hits],
        insert_events=[tally.misses],
        move_read_events=[0],
        move_write_events=[0],
        wb_in_events=[0],
        wb_out_events=[tally.writebacks],
        reuse_histogram={"0": hist[0], "1": hist[1],
                         "2": hist[2], ">2": hist[3]},
        default_insertions=tally.misses,
    )
    stats.materialize()
    return {
        "l1": asdict(stats),
        "runtime": asdict(RuntimeStats(tlb_miss_fetches=tlb_misses)),
        "tlb": asdict(TlbStats(hits=measured - tlb_misses,
                               misses=tlb_misses)),
        # Uniform L1: every measured probe costs latency_cycles whether
        # it hits or misses (eligibility declines partitioned L1s).
        "l1_latency_cycles": measured * l1cfg.latency_cycles,
        "l1_hits": tally.hits,
        "demand_accesses": measured,
        "event_counts": {
            "demand": tally.misses,
            "metadata": tlb_misses,
            "writeback": tally.writebacks,
        },
    }


# slip-audit: twin=vector-frontend role=fast
def capture_front_end_vector(
    hierarchy,
    trace: Trace,
    config: SystemConfig,
    warmup_fraction: float = 0.25,
    plan=None,
) -> Optional[TraceCapture]:
    """Batched front-end capture, or ``None`` to use the scalar walk.

    ``hierarchy`` is only consulted for eligibility (and carries the
    decline reason); the capture itself is computed from the trace and
    config alone, which is exactly the policy-invariance contract of
    :func:`repro.sim.filtered.front_end_fingerprint`. A verified
    :class:`~repro.sim.replay_plan.ReplayPlan` supplies the per-set L1
    grouping precomputed (its L1 part is a pure function of the trace,
    so repeated direct runs share it).
    """
    from .kernel_report import record_success
    if not frontend_enabled():
        record_decline(hierarchy, "env:REPRO_VECTOR_FRONTEND")
        return None
    if not frontend_eligible(hierarchy):
        return None
    record_success(hierarchy, "frontend")

    l1cfg = config.l1
    addrs = np.asarray(trace.addresses, dtype=np.int64)
    writes = np.asarray(trace.is_write, dtype=bool)
    n = int(addrs.shape[0])
    warmup = int(n * warmup_fraction)
    pages = addrs >> line_to_page_shift(config.lines_per_page)

    tlb_pos = _tlb_miss_positions(pages, config.tlb_entries)
    grouped = plan.l1_grouped(trace, warmup) if plan is not None else None
    miss, victim, tally = _run_l1(addrs, writes, warmup,
                                  l1cfg.sets, l1cfg.ways, grouped)

    # Scatter the per-access flags into the flat event stream. The
    # scalar per-access order is metadata (TLB miss) first, then the
    # demand miss, then the victim writeback, so an access's events
    # occupy offsets[i] .. offsets[i + 1] in exactly that order.
    t_flag = np.zeros(n, dtype=np.int64)
    if tlb_pos.shape[0]:
        t_flag[tlb_pos] = 1
    d_flag = np.asarray(miss, dtype=np.int64)
    victim_np = np.asarray(victim, dtype=np.int64)
    w_flag = (victim_np >= 0).astype(np.int64)
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(t_flag + d_flag + w_flag, out=offsets[1:])
    total_events = int(offsets[-1])
    ops = np.empty(total_events, dtype=np.uint8)
    out_addrs = np.empty(total_events, dtype=np.int64)
    if tlb_pos.shape[0]:
        slots = offsets[tlb_pos]
        ops[slots] = OP_METADATA
        out_addrs[slots] = PTE_TABLE_BASE + pages[tlb_pos] // PTES_PER_LINE
    miss_pos = np.flatnonzero(d_flag)
    if miss_pos.shape[0]:
        slots = offsets[miss_pos] + t_flag[miss_pos]
        ops[slots] = OP_DEMAND_MISS
        out_addrs[slots] = addrs[miss_pos]
    wb_pos = np.flatnonzero(w_flag)
    if wb_pos.shape[0]:
        slots = offsets[wb_pos] + t_flag[wb_pos] + 1
        ops[slots] = OP_WRITEBACK
        out_addrs[slots] = victim_np[wb_pos]
    event_boundary = int(offsets[warmup])

    measured_tlb_misses = int(np.count_nonzero(tlb_pos >= warmup))
    check_vector_frontend(
        n=n, warmup=warmup, event_boundary=event_boundary,
        total_events=total_events,
        total_demand=int(miss_pos.shape[0]),
        total_metadata=int(tlb_pos.shape[0]),
        total_writeback=int(wb_pos.shape[0]),
        l1_hits=tally.hits, l1_misses=tally.misses,
        l1_writebacks=tally.writebacks,
        tlb_hits=(n - warmup) - measured_tlb_misses,
        tlb_misses=measured_tlb_misses,
        histogram_total=sum(tally.hist),
        measured_evictions=tally.evictions,
        residents=tally.residents,
        capacity=l1cfg.sets * l1cfg.ways,
    )

    return TraceCapture(
        n=n,
        warmup=warmup,
        event_boundary=event_boundary,
        ops=ops,
        addrs=out_addrs,
        l1_miss_pos=miss_pos,
        l1_miss_wb=victim_np[miss_pos],
        tlb_miss_pos=tlb_pos,
        frozen=_frozen_frontend(l1cfg, tally, measured_tlb_misses,
                                n - warmup),
    )
