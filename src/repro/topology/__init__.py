"""Cache topology and wire-energy models (Section 2.1 of the paper)."""

from .geometry import BankArrayGeometry, TechnologyNode
from .nodes import (
    NODE_22NM,
    NODE_45NM,
    htree_energies,
    l2_geometry_45nm,
    l3_geometry_45nm,
    scale_to_22nm,
    set_interleaved_energies,
)

__all__ = [
    "BankArrayGeometry",
    "TechnologyNode",
    "NODE_22NM",
    "NODE_45NM",
    "htree_energies",
    "l2_geometry_45nm",
    "l3_geometry_45nm",
    "scale_to_22nm",
    "set_interleaved_energies",
]
