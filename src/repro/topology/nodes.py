"""Calibrated technology nodes and cache-level geometries.

The 45 nm instances reproduce the paper's Table 2: an L2 built as a
2 (wide) x 4 (high) array of 32 KB banks with two ways per bank, and an
L3 built as a 16 x 4 array of 32 KB banks with four ways per row. The
22 nm node implements the Section 6 technology study: bank (transistor)
energy scales roughly with feature size squared while wire energy per mm
barely scales, so the wire-dominated fraction — and therefore SLIP's
opportunity — grows.
"""

from __future__ import annotations

from typing import Tuple

from .geometry import BankArrayGeometry, TechnologyNode

NODE_45NM = TechnologyNode(
    name="45nm",
    wire_energy_pj_per_bit_mm=0.16,
    wire_delay_ns_per_mm=0.3,
)

NODE_22NM = TechnologyNode(
    name="22nm",
    wire_energy_pj_per_bit_mm=0.15,
    wire_delay_ns_per_mm=0.35,
)

# Feature-size ratio 22/45 for the technology study.
_FEATURE_SCALE = 22.0 / 45.0
BANK_ENERGY_SCALE_22NM = _FEATURE_SCALE ** 2
PITCH_SCALE_22NM = _FEATURE_SCALE


def l2_geometry_45nm() -> BankArrayGeometry:
    """2x4 array of 32 KB banks, two L2 ways per bank (Section 5)."""
    return BankArrayGeometry(
        name="L2",
        rows=4,
        cols=2,
        ways=16,
        bank_energy_pj=15.0,
        row_pitch_mm=12.0 / NODE_45NM.wire_energy_pj_per_mm(512),
        node=NODE_45NM,
    )


def l3_geometry_45nm() -> BankArrayGeometry:
    """16x4 array of 32 KB banks; each row holds four L3 ways."""
    return BankArrayGeometry(
        name="L3",
        rows=4,
        cols=16,
        ways=16,
        bank_energy_pj=44.0,
        row_pitch_mm=46.0 / NODE_45NM.wire_energy_pj_per_mm(512),
        node=NODE_45NM,
    )


def scale_to_22nm(geometry: BankArrayGeometry) -> BankArrayGeometry:
    """The Section 6 technology-node study scaling rule."""
    return geometry.scaled(
        NODE_22NM,
        bank_energy_scale=BANK_ENERGY_SCALE_22NM,
        pitch_scale=PITCH_SCALE_22NM,
    )


def set_interleaved_energies(
    geometry: BankArrayGeometry, num_sublevels: int
) -> Tuple[float, ...]:
    """Sublevel energies under set interleaving (Figure 4b).

    With all ways of a set mapped to one bank, every location a line can
    occupy costs the same, so each "sublevel" has the mean energy and
    there is no incentive to move data.
    """
    return (geometry.uniform_access_energy_pj(),) * num_sublevels


def htree_energies(
    geometry: BankArrayGeometry, num_sublevels: int
) -> Tuple[float, ...]:
    """Sublevel energies under an H-tree interconnect (Figure 4c)."""
    return (geometry.htree_access_energy_pj(),) * num_sublevels
