"""Wire-geometry energy model for banked caches.

Large caches are built from small SRAM banks joined by an interconnect
(Section 2.1 of the paper). The energy of an access is the bank-internal
energy plus the wire energy of moving a line between the cache controller
and the bank. This module models a rectangular bank array fed by a
vertical trunk (the hierarchical-bus topology of Figure 4a): reaching row
``i`` costs ``bank_energy + row_wire_energy * (i + 0.5)``.

The calibrated 45 nm instances in :mod:`repro.topology.nodes` reproduce
the paper's Table 2 sublevel energies (21/33/50 pJ for L2, 67/113/176 pJ
for L3) to within a few percent, and the same geometry re-derives the
H-tree penalty (Section 2.1) and the 22 nm technology study (Section 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence, Tuple


@dataclass(frozen=True)
class TechnologyNode:
    """Process parameters relevant to wire-dominated cache energy."""

    name: str
    wire_energy_pj_per_bit_mm: float
    wire_delay_ns_per_mm: float
    # Fraction of the (line + metadata) bits that actually toggle per
    # transfer; the paper quotes wire energy *per transition*.
    activity_factor: float = 0.5

    def wire_energy_pj_per_mm(self, bits: int) -> float:
        """Energy to move ``bits`` of payload over 1 mm of interconnect."""
        return self.wire_energy_pj_per_bit_mm * bits * self.activity_factor


@dataclass(frozen=True)
class BankArrayGeometry:
    """A cache level as a ``rows x cols`` array of SRAM banks.

    Ways are interleaved across rows (Figure 4a): consecutive groups of
    ``ways // rows`` ways live in each row, nearest row first. ``row_pitch_mm``
    is the vertical trunk length added per row, including the average
    horizontal distribution within the row.
    """

    name: str
    rows: int
    cols: int
    ways: int
    bank_energy_pj: float
    row_pitch_mm: float
    node: TechnologyNode
    transfer_bits: int = 512

    def __post_init__(self) -> None:
        if self.ways % self.rows:
            raise ValueError("ways must divide evenly across rows")

    @property
    def ways_per_row(self) -> int:
        return self.ways // self.rows

    def row_of_way(self, way: int) -> int:
        if not 0 <= way < self.ways:
            raise IndexError(f"way {way} out of range")
        return way // self.ways_per_row

    def row_distance_mm(self, row: int) -> float:
        """Wire distance from the controller to the centre of a row."""
        return (row + 0.5) * self.row_pitch_mm

    def row_energy_pj(self, row: int) -> float:
        """Access energy of a line resident in the given row."""
        wire = self.node.wire_energy_pj_per_mm(self.transfer_bits)
        return self.bank_energy_pj + wire * self.row_distance_mm(row)

    def way_energy_pj(self, way: int) -> float:
        return self.row_energy_pj(self.row_of_way(way))

    def sublevel_energies_pj(
        self, sublevel_ways: Sequence[int]
    ) -> Tuple[float, ...]:
        """Average access energy of each sublevel.

        Sublevels are consecutive way groups starting from way 0; a
        sublevel covering several rows gets the capacity-weighted mean of
        its rows' energies.
        """
        # Integral way counts; exact in any order.
        if sum(sublevel_ways) != self.ways:  # slip-lint: disable=SLIP005
            raise ValueError("sublevel ways must sum to total ways")
        energies = []
        start = 0
        for n_ways in sublevel_ways:
            ways = range(start, start + n_ways)
            energies.append(
                math.fsum(self.way_energy_pj(w) for w in ways) / n_ways
            )
            start += n_ways
        return tuple(energies)

    def uniform_access_energy_pj(self) -> float:
        """Mean access energy across all ways (the baseline cache)."""
        return math.fsum(
            self.way_energy_pj(w) for w in range(self.ways)
        ) / self.ways

    def htree_access_energy_pj(self) -> float:
        """Access energy under an H-tree interconnect (Figure 4c).

        In an H-tree, reading any location consumes the same energy as
        reading the furthest location.
        """
        return self.row_energy_pj(self.rows - 1)

    def row_latency_cycles(self, row: int, frequency_ghz: float,
                           base_cycles: int) -> int:
        """Latency of a row: bank latency plus round-trip wire delay."""
        delay_ns = 2 * self.node.wire_delay_ns_per_mm * self.row_distance_mm(row)
        return base_cycles + round(delay_ns * frequency_ghz)

    def scaled(self, node: TechnologyNode, bank_energy_scale: float,
               pitch_scale: float) -> "BankArrayGeometry":
        """The same array in another technology node."""
        return replace(
            self,
            node=node,
            bank_energy_pj=self.bank_energy_pj * bank_energy_scale,
            row_pitch_mm=self.row_pitch_mm * pitch_scale,
        )
