"""Multiprogrammed two-core workload mixes (Figure 16).

The paper evaluates eight randomly selected pairs on a system with
private 256 KB L2s and a shared 2 MB L3; we use the pairs readable off
Figure 16's axis. Each core's trace is shifted into a disjoint address
region (no data sharing, as in multiprogrammed SPEC), and the two traces
are interleaved round-robin, which is how the shared L3 sees roughly
doubled reuse distances — the effect behind the larger multicore
savings.
"""

from __future__ import annotations

from typing import List, Tuple

from .benchmarks import make_trace
from .trace import Trace

#: The eight two-core mixes on Figure 16's x-axis.
MULTICORE_MIXES: Tuple[Tuple[str, str], ...] = (
    ("soplex", "mcf"),
    ("xalancbmk", "gcc"),
    ("leslie3D", "soplex"),
    ("omnetpp", "mcf"),
    ("cactusADM", "bzip2"),
    ("milc", "sphinx3"),
    ("lbm", "gcc"),
    ("astar", "gemsFDTD"),
)

#: Address-space stride separating the cores (lines); far larger than
#: any benchmark footprint.
CORE_ADDRESS_STRIDE = 1 << 34


def mix_name(pair: Tuple[str, str]) -> str:
    return f"{pair[0]}+{pair[1]}"


def make_mix_traces(pair: Tuple[str, str], length_per_core: int,
                    seed: int = 0) -> List[Trace]:
    """Per-core traces for one mix, in disjoint address regions."""
    traces = []
    for core, name in enumerate(pair):
        trace = make_trace(name, length_per_core, seed=seed + core)
        traces.append(trace.with_offset(core * CORE_ADDRESS_STRIDE))
    return traces


def interleave_round_robin(traces: List[Trace]) -> List[Tuple[int, int, bool]]:
    """Deterministic round-robin interleaving of per-core traces.

    Yields (core, line_addr, is_write) tuples until all traces are
    exhausted; statistics collection over the overlap window is the
    caller's concern (the paper collects only while executions overlap).
    """
    arrays = [
        (t.addresses.tolist(), t.is_write.tolist()) for t in traces
    ]
    out: List[Tuple[int, int, bool]] = []
    longest = max(len(a) for a, _ in arrays)
    for idx in range(longest):
        for core, (addrs, writes) in enumerate(arrays):
            if idx < len(addrs):
                out.append((core, addrs[idx], writes[idx]))
    return out


def overlap_length(traces: List[Trace]) -> int:
    """Accesses during which all cores are still executing."""
    return min(len(t) for t in traces) * len(traces)
