"""Synthetic workload generation: regions, benchmark analogs, mixes."""

from .benchmarks import (
    BENCHMARKS,
    FIG1_BENCHMARKS,
    SPEC_ORDER,
    BenchmarkSpec,
    make_trace,
)
from .generators import (
    BimodalLoopRegion,
    HotColdRegion,
    LoopRegion,
    RandomRegion,
    Region,
    RegionMix,
    StreamRegion,
)
from .mixes import MULTICORE_MIXES, make_mix_traces, mix_name
from .trace import Trace

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "BimodalLoopRegion",
    "FIG1_BENCHMARKS",
    "HotColdRegion",
    "LoopRegion",
    "MULTICORE_MIXES",
    "RandomRegion",
    "Region",
    "RegionMix",
    "SPEC_ORDER",
    "StreamRegion",
    "Trace",
    "make_mix_traces",
    "make_trace",
    "mix_name",
]
