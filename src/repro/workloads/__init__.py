"""Synthetic workload generation: regions, benchmark analogs, mixes."""

from .benchmarks import (
    BENCHMARKS,
    FIG1_BENCHMARKS,
    SPEC_ORDER,
    BenchmarkSpec,
    make_trace,
)
from .capture_store import (
    DiskCaptureStore,
    MemoryCaptureStore,
    TraceCapture,
    default_store,
    reset_default_store,
    trace_content_digest,
)
from .generators import (
    BimodalLoopRegion,
    HotColdRegion,
    LoopRegion,
    RandomRegion,
    Region,
    RegionMix,
    StreamRegion,
)
from .mixes import MULTICORE_MIXES, make_mix_traces, mix_name
from .trace import Trace

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "BimodalLoopRegion",
    "DiskCaptureStore",
    "FIG1_BENCHMARKS",
    "HotColdRegion",
    "LoopRegion",
    "MULTICORE_MIXES",
    "MemoryCaptureStore",
    "RandomRegion",
    "Region",
    "RegionMix",
    "SPEC_ORDER",
    "StreamRegion",
    "Trace",
    "TraceCapture",
    "default_store",
    "make_mix_traces",
    "make_trace",
    "mix_name",
    "reset_default_store",
    "trace_content_digest",
]
