"""Persistent store for policy-invariant front-end captures.

A *capture* is everything the filtered-replay driver
(:mod:`repro.sim.filtered`) needs to skip the front end of a
simulation: the compact numpy event stream of what crossed the L1->L2
boundary (demand misses, metadata accesses, L1 writebacks), the trace
positions of L1 and TLB misses, and the frozen front-end statistics of
the capture run. Captures are immutable and content-addressed by a
fingerprint of everything that can influence the front end (trace
content, L1 geometry/replacement, TLB size, page grain, warmup split,
seed). The runtime kind is deliberately absent: the front end is
runtime-kind invariant, so one capture serves every policy.

Two stores implement the same two-method protocol (``get``/``put``):

* :class:`MemoryCaptureStore` — a small process-wide LRU dict; the
  default, used whenever ``REPRO_CAPTURE_DIR`` is unset. Serial sweeps
  in one process share captures through it.
* :class:`DiskCaptureStore` — an on-disk, content-addressed layout
  (one directory per fingerprint digest holding ``meta.json`` plus one
  ``.npy`` file per event array), selected via ``REPRO_CAPTURE_DIR``.
  Arrays are loaded with ``mmap_mode="r"`` so parallel sweep workers
  map the same pages instead of each re-simulating the front end.
  Writes are atomic (temp dir + rename), the store is size-capped
  (``REPRO_CAPTURE_MAX_MB``, default 512, oldest-mtime eviction), and
  a corrupt or truncated entry is quarantined on load: ``get`` returns
  ``None`` and the caller falls back to direct simulation.

Both stores also cache :class:`~repro.sim.replay_plan.ReplayPlan`
sidecars next to their captures (``get_plan``/``put_plan``, keyed by
capture key + back-end geometry key): live objects in the memory
store, memmap array directories (``plan-<geometry digest>/`` inside
the capture's entry) on disk — same atomic tmp+rename write, same
quarantine-on-corruption discipline, and evicted together with their
capture. Plan (de)serialization itself lives in
:mod:`repro.sim.replay_plan`; the stores only move bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from .trace import Trace

#: Bump when the capture layout changes; part of every fingerprint.
CAPTURE_VERSION = 1

#: Environment knobs for the on-disk store.
CAPTURE_DIR_ENV = "REPRO_CAPTURE_DIR"
CAPTURE_MAX_MB_ENV = "REPRO_CAPTURE_MAX_MB"
_DEFAULT_MAX_MB = 512

#: Environment knob for the in-process store's LRU capacity.
CAPTURE_MEM_ENTRIES_ENV = "REPRO_CAPTURE_MEM_ENTRIES"
_DEFAULT_MEM_ENTRIES = 16

#: Event opcodes in the captured L1->L2 stream.
OP_DEMAND_MISS = 0
OP_METADATA = 1
OP_WRITEBACK = 2

_ARRAY_NAMES = ("ops", "addrs", "l1_miss_pos", "l1_miss_wb",
                "tlb_miss_pos")


class CaptureError(Exception):
    """A capture could not be produced or failed validation."""


class ForeignEntryError(Exception):
    """A digest directory holds a *different* fingerprint's capture.

    Deliberately not a :class:`CaptureError` (and not an ``OSError``):
    the entry is healthy, it just belongs to another key whose digest
    collides with ours, so the caller must treat the lookup as a miss
    while leaving the entry untouched for its rightful owner.
    """


class TraceCapture:
    """One immutable front-end capture (see module docstring)."""

    __slots__ = ("n", "warmup", "event_boundary", "ops", "addrs",
                 "l1_miss_pos", "l1_miss_wb", "tlb_miss_pos", "frozen")

    def __init__(self, n: int, warmup: int, event_boundary: int,
                 ops: np.ndarray, addrs: np.ndarray,
                 l1_miss_pos: np.ndarray, l1_miss_wb: np.ndarray,
                 tlb_miss_pos: np.ndarray, frozen: Dict) -> None:
        self.n = n
        self.warmup = warmup
        self.event_boundary = event_boundary
        self.ops = ops
        self.addrs = addrs
        self.l1_miss_pos = l1_miss_pos
        self.l1_miss_wb = l1_miss_wb
        self.tlb_miss_pos = tlb_miss_pos
        self.frozen = frozen

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        return sum(int(getattr(self, name).nbytes)
                   for name in _ARRAY_NAMES)

    def validate(self) -> None:
        """Structural sanity; raises :class:`CaptureError` on damage.

        Cheap (vectorized) and run on every load from disk, so a
        truncated ``.npy`` or a hand-edited ``meta.json`` surfaces as a
        clean fallback to direct simulation rather than a wrong result.
        """
        if self.ops.shape != self.addrs.shape or self.ops.ndim != 1:
            raise CaptureError("ops/addrs arrays disagree")
        if self.l1_miss_pos.shape != self.l1_miss_wb.shape:
            raise CaptureError("miss position/writeback arrays disagree")
        if not (0 <= self.event_boundary <= int(self.ops.shape[0])):
            raise CaptureError("event boundary out of range")
        if not (0 <= self.warmup <= self.n):
            raise CaptureError("warmup split out of range")
        for pos in (self.l1_miss_pos, self.tlb_miss_pos):
            if pos.shape[0] and (
                int(pos[0]) < 0 or int(pos[-1]) >= self.n
                or bool(np.any(np.diff(pos) <= 0))
            ):
                raise CaptureError("positions not strictly increasing "
                                   "within the trace")
        counts = self.frozen.get("event_counts")
        if not isinstance(counts, dict):
            raise CaptureError("frozen stats missing event counts")
        measured = self.ops[self.event_boundary:]
        for op, key in ((OP_DEMAND_MISS, "demand"),
                        (OP_METADATA, "metadata"),
                        (OP_WRITEBACK, "writeback")):
            if int(np.count_nonzero(measured == op)) != counts.get(key):
                raise CaptureError(f"{key} event count mismatch")


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def trace_content_digest(trace: Trace) -> str:
    """sha256 over the trace arrays, memoized on ``trace.metadata``.

    Traces come out of the process-wide LRU factory, so the digest is
    computed once per (benchmark, length, seed) per process.
    """
    digest = trace.metadata.get("content_digest")
    if digest is None:
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(trace.addresses).tobytes())
        h.update(np.ascontiguousarray(trace.is_write).tobytes())
        digest = h.hexdigest()
        trace.metadata["content_digest"] = digest
    return digest


def fingerprint_key(fingerprint: Dict) -> str:
    """Canonical JSON of a fingerprint dict — the store key."""
    return json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))


def key_digest(key: str) -> str:
    """Directory-name-sized digest of a fingerprint key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
_WARNED_MEM_ENTRIES: set = set()


def _resolve_mem_entries() -> int:
    """``REPRO_CAPTURE_MEM_ENTRIES``, validated and clamped to >= 1.

    A zero or negative capacity would evict every capture as it is
    written, so each sweep cell re-captures; garbage falls back to the
    default the same way. Either warns on stderr once per distinct bad
    value per process (same clamp semantics as
    ``REPRO_CAPTURE_MAX_MB``).
    """
    import sys

    raw = os.environ.get(CAPTURE_MEM_ENTRIES_ENV, "").strip()
    if not raw:
        return _DEFAULT_MEM_ENTRIES
    try:
        entries = int(raw)
    except ValueError:
        entries = 0
    if entries >= 1:
        return entries
    if raw not in _WARNED_MEM_ENTRIES:
        _WARNED_MEM_ENTRIES.add(raw)
        print(
            f"repro: ignoring {CAPTURE_MEM_ENTRIES_ENV}={raw!r} "
            f"(need an integer >= 1); using the "
            f"{_DEFAULT_MEM_ENTRIES}-entry default",
            file=sys.stderr,
        )
    return _DEFAULT_MEM_ENTRIES


class MemoryCaptureStore:
    """Process-wide LRU of captures; the no-configuration default.

    The default capacity comes from ``REPRO_CAPTURE_MEM_ENTRIES``
    (resolved at construction, and re-resolved on every
    :func:`default_store` call for the shared singleton); pass
    ``max_entries`` explicitly to pin a capacity regardless of the
    environment.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = (_resolve_mem_entries()
                            if max_entries is None else max_entries)
        self._entries: "OrderedDict[str, TraceCapture]" = OrderedDict()
        # Replay plans, LRU'd independently: one capture can carry a
        # plan per back-end geometry, so the key is the pair.
        self._plans: "OrderedDict[Tuple[str, str], object]" = OrderedDict()

    def get(self, key: str) -> Optional[TraceCapture]:
        capture = self._entries.get(key)
        if capture is not None:
            self._entries.move_to_end(key)
        return capture

    def put(self, key: str, capture: TraceCapture,
            fingerprint: Optional[Dict] = None) -> None:
        self._entries[key] = capture
        self._entries.move_to_end(key)
        self._trim()

    def get_plan(self, key: str, geom_key: str):
        plan = self._plans.get((key, geom_key))
        if plan is not None:
            self._plans.move_to_end((key, geom_key))
        return plan

    def put_plan(self, key: str, geom_key: str, plan) -> None:
        self._plans[(key, geom_key)] = plan
        self._plans.move_to_end((key, geom_key))
        self._trim()

    def invalidate_plan(self, key: str, geom_key: str) -> None:
        self._plans.pop((key, geom_key), None)

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        while len(self._plans) > self.max_entries:
            self._plans.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self._plans.clear()


class DiskCaptureStore:
    """Content-addressed on-disk captures shared across processes."""

    def __init__(self, root: str,
                 max_bytes: int = _DEFAULT_MAX_MB * 1024 * 1024,
                 memo_entries: int = 16) -> None:
        self.root = root
        self.max_bytes = max_bytes
        # In-process memo of loaded captures: repeated cells in one
        # worker skip the meta.json parse and np.load calls entirely.
        self._memo = MemoryCaptureStore(memo_entries)

    # ------------------------------------------------------------------
    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key_digest(key))

    def get(self, key: str) -> Optional[TraceCapture]:
        capture = self._memo.get(key)
        if capture is not None:
            return capture
        path = self._entry_dir(key)
        if not os.path.isdir(path):
            return None
        try:
            capture = self._load(path, key)
        except ForeignEntryError:
            # Digest collision: the entry is someone else's capture.
            # A miss, but never a quarantine — deleting it would
            # destroy the colliding fingerprint's (healthy) entry.
            return None
        except (OSError, ValueError, KeyError, CaptureError,
                json.JSONDecodeError):
            # Corrupt/truncated entry: quarantine it so the next run
            # re-captures instead of tripping over it again.
            shutil.rmtree(path, ignore_errors=True)
            return None
        try:
            os.utime(path)  # freshen mtime: LRU-ish eviction order
        except OSError:
            pass
        self._memo.put(key, capture)
        return capture

    def _load(self, path: str, key: str) -> TraceCapture:
        with open(os.path.join(path, "meta.json"), "r",
                  encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("version") != CAPTURE_VERSION:
            raise CaptureError("capture version mismatch")
        if meta.get("key") != key:
            raise ForeignEntryError("fingerprint mismatch")
        arrays = {
            name: np.load(os.path.join(path, f"{name}.npy"),
                          mmap_mode="r", allow_pickle=False)
            for name in _ARRAY_NAMES
        }
        capture = TraceCapture(
            n=int(meta["n"]), warmup=int(meta["warmup"]),
            event_boundary=int(meta["event_boundary"]),
            frozen=meta["frozen"], **arrays,
        )
        capture.validate()
        return capture

    # ------------------------------------------------------------------
    def put(self, key: str, capture: TraceCapture,
            fingerprint: Optional[Dict] = None) -> None:
        self._memo.put(key, capture)
        path = self._entry_dir(key)
        if os.path.isdir(path):
            return
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            os.makedirs(tmp, exist_ok=True)
            for name in _ARRAY_NAMES:
                np.save(os.path.join(tmp, f"{name}.npy"),
                        np.asarray(getattr(capture, name)),
                        allow_pickle=False)
            meta = {
                "version": CAPTURE_VERSION,
                "key": key,
                "fingerprint": fingerprint,
                "n": capture.n,
                "warmup": capture.warmup,
                "event_boundary": capture.event_boundary,
                "frozen": capture.frozen,
            }
            with open(os.path.join(tmp, "meta.json"), "w",
                      encoding="utf-8") as handle:
                json.dump(meta, handle, sort_keys=True)
            os.rename(tmp, path)
        except OSError:
            # Lost a publish race or the volume is unwritable; the
            # in-memory memo still serves this process.
            shutil.rmtree(tmp, ignore_errors=True)
            return
        self._evict(keep=os.path.basename(path))

    # ------------------------------------------------------------------
    # Replay-plan sidecars (one subdirectory per back-end geometry)
    # ------------------------------------------------------------------
    def _plan_dir(self, key: str, geom_key: str) -> str:
        return os.path.join(self._entry_dir(key),
                            f"plan-{key_digest(geom_key)[:16]}")

    def get_plan(self, key: str, geom_key: str):
        plan = self._memo.get_plan(key, geom_key)
        if plan is not None:
            return plan
        path = self._plan_dir(key, geom_key)
        if not os.path.isdir(path):
            return None
        # Deferred import: repro.sim.replay_plan imports this module.
        from ..sim.replay_plan import load_plan_dir

        try:
            plan = load_plan_dir(path, geom_key)
        except ForeignEntryError:
            # Geometry-digest collision: another geometry's (healthy)
            # sidecar. A miss, never a quarantine.
            return None
        except (OSError, ValueError, KeyError, CaptureError,
                json.JSONDecodeError):
            # Corrupt/truncated sidecar: quarantine only the plan —
            # the capture entry beside it is untouched and stays valid.
            shutil.rmtree(path, ignore_errors=True)
            return None
        self._memo.put_plan(key, geom_key, plan)
        return plan

    def put_plan(self, key: str, geom_key: str, plan) -> None:
        self._memo.put_plan(key, geom_key, plan)
        if not os.path.isdir(self._entry_dir(key)):
            # No capture entry on disk (lost publish race, read-only
            # volume): the sidecar has nothing to ride along with, and
            # the in-memory memo still serves this process.
            return
        path = self._plan_dir(key, geom_key)
        if os.path.isdir(path):
            return
        from ..sim.replay_plan import save_plan_dir

        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            save_plan_dir(tmp, plan, geom_key)
            os.rename(tmp, path)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            return
        self._evict(keep=os.path.basename(self._entry_dir(key)))

    def invalidate_plan(self, key: str, geom_key: str) -> None:
        """Quarantine one plan sidecar (memo + disk); keep the capture."""
        self._memo.invalidate_plan(key, geom_key)
        shutil.rmtree(self._plan_dir(key, geom_key), ignore_errors=True)

    def _evict(self, keep: str) -> None:
        """Drop oldest entries until the store fits ``max_bytes``.

        Sizes are accumulated recursively: an entry directory now holds
        plan sidecar subdirectories alongside its capture arrays, and
        both are budgeted (and evicted) as one unit. In-flight
        ``.tmp-`` writes are skipped at any depth.
        """
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return
        entries = []
        total = 0
        for name in names:
            path = os.path.join(self.root, name)
            if not os.path.isdir(path) or ".tmp-" in name:
                continue
            size = 0
            try:
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = [d for d in dirnames
                                   if ".tmp-" not in d]
                    for filename in filenames:
                        size += os.stat(
                            os.path.join(dirpath, filename)).st_size
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            total += size
            entries.append((mtime, name, path, size))
        if total <= self.max_bytes:
            return
        entries.sort()
        for _, name, path, size in entries:
            if total <= self.max_bytes:
                break
            if name == keep:
                continue
            shutil.rmtree(path, ignore_errors=True)
            total -= size


# ----------------------------------------------------------------------
# Store selection
# ----------------------------------------------------------------------
_MEMORY_STORE = MemoryCaptureStore()
_DISK_STORES: Dict[Tuple[str, int], DiskCaptureStore] = {}
_WARNED_MAX_MB: set = set()


def _resolve_max_mb() -> int:
    """``REPRO_CAPTURE_MAX_MB``, validated and clamped to >= 1 MB.

    A zero or negative cap would make ``_evict`` delete every entry
    except the one just written, so each sweep worker re-captures on
    every cell; garbage falls back to the default the same way. Either
    warns on stderr once per distinct bad value per process.
    """
    import sys

    raw = os.environ.get(CAPTURE_MAX_MB_ENV, "").strip()
    if not raw:
        return _DEFAULT_MAX_MB
    try:
        max_mb = int(raw)
    except ValueError:
        max_mb = 0
    if max_mb >= 1:
        return max_mb
    if raw not in _WARNED_MAX_MB:
        _WARNED_MAX_MB.add(raw)
        print(
            f"repro: ignoring {CAPTURE_MAX_MB_ENV}={raw!r} "
            f"(need an integer >= 1); using the "
            f"{_DEFAULT_MAX_MB} MB default",
            file=sys.stderr,
        )
    return _DEFAULT_MAX_MB


#: (raw env tuple, resolved store) of the last default_store() call.
#: Re-resolving the environment (and trimming the memory singleton)
#: only when a knob actually changes keeps the per-cell cost of
#: default_store() to one tuple comparison.
_RESOLVED_ENV: Optional[Tuple[str, str, str]] = None
_RESOLVED_STORE = None


def default_store():
    """The store implied by the environment, resolved once per config.

    ``REPRO_CAPTURE_DIR`` selects (and creates) an on-disk store —
    worker processes inherit the variable and share it; otherwise the
    process-wide in-memory store is used. The resolution is memoized on
    the raw values of the three knobs, so repeated calls (one per sweep
    cell) skip the int parsing, ``abspath`` and singleton trim until
    the environment actually changes; :func:`reset_default_store`
    drops the memo (tests that fiddle with cwd-relative paths or want
    a pristine singleton call it between cases).
    """
    global _RESOLVED_ENV, _RESOLVED_STORE
    env = (
        os.environ.get(CAPTURE_DIR_ENV, "").strip(),
        os.environ.get(CAPTURE_MAX_MB_ENV, "").strip(),
        os.environ.get(CAPTURE_MEM_ENTRIES_ENV, "").strip(),
    )
    if env == _RESOLVED_ENV and _RESOLVED_STORE is not None:
        return _RESOLVED_STORE
    root = env[0]
    if not root:
        # Honor capacity changes: the singleton's limit tracks the
        # environment, trimming immediately so a shrink takes effect
        # without waiting for the next put.
        _MEMORY_STORE.max_entries = _resolve_mem_entries()
        _MEMORY_STORE._trim()
        store = _MEMORY_STORE
    else:
        max_mb = _resolve_max_mb()
        cache_key = (os.path.abspath(root), max_mb)
        store = _DISK_STORES.get(cache_key)
        if store is None:
            os.makedirs(root, exist_ok=True)
            store = DiskCaptureStore(cache_key[0],
                                     max_bytes=max_mb * 1024 * 1024)
            _DISK_STORES[cache_key] = store
    _RESOLVED_ENV = env
    _RESOLVED_STORE = store
    return store


def reset_default_store() -> None:
    """Forget the resolved default-store configuration (for tests).

    Clears the memoized environment resolution, empties the in-memory
    singleton (captures and plans) and drops the cached disk-store
    handles, so the next :func:`default_store` call re-resolves from a
    clean slate.
    """
    global _RESOLVED_ENV, _RESOLVED_STORE
    _RESOLVED_ENV = None
    _RESOLVED_STORE = None
    _MEMORY_STORE.clear()
    _DISK_STORES.clear()
