"""Persistent store for policy-invariant front-end captures.

A *capture* is everything the filtered-replay driver
(:mod:`repro.sim.filtered`) needs to skip the front end of a
simulation: the compact numpy event stream of what crossed the L1->L2
boundary (demand misses, metadata accesses, L1 writebacks), the trace
positions of L1 and TLB misses, and the frozen front-end statistics of
the capture run. Captures are immutable and content-addressed by a
fingerprint of everything that can influence the front end (trace
content, L1 geometry/replacement, TLB size, page grain, warmup split,
seed). The runtime kind is deliberately absent: the front end is
runtime-kind invariant, so one capture serves every policy.

Two stores implement the same two-method protocol (``get``/``put``):

* :class:`MemoryCaptureStore` — a small process-wide LRU dict; the
  default, used whenever ``REPRO_CAPTURE_DIR`` is unset. Serial sweeps
  in one process share captures through it.
* :class:`DiskCaptureStore` — an on-disk, content-addressed layout
  (one directory per fingerprint digest holding ``meta.json`` plus one
  ``.npy`` file per event array), selected via ``REPRO_CAPTURE_DIR``.
  Arrays are loaded with ``mmap_mode="r"`` so parallel sweep workers
  map the same pages instead of each re-simulating the front end.
  Writes are atomic (temp dir + rename), the store is size-capped
  (``REPRO_CAPTURE_MAX_MB``, default 512, oldest-mtime eviction), and
  a corrupt or truncated entry is quarantined on load: ``get`` returns
  ``None`` and the caller falls back to direct simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from .trace import Trace

#: Bump when the capture layout changes; part of every fingerprint.
CAPTURE_VERSION = 1

#: Environment knobs for the on-disk store.
CAPTURE_DIR_ENV = "REPRO_CAPTURE_DIR"
CAPTURE_MAX_MB_ENV = "REPRO_CAPTURE_MAX_MB"
_DEFAULT_MAX_MB = 512

#: Environment knob for the in-process store's LRU capacity.
CAPTURE_MEM_ENTRIES_ENV = "REPRO_CAPTURE_MEM_ENTRIES"
_DEFAULT_MEM_ENTRIES = 16

#: Event opcodes in the captured L1->L2 stream.
OP_DEMAND_MISS = 0
OP_METADATA = 1
OP_WRITEBACK = 2

_ARRAY_NAMES = ("ops", "addrs", "l1_miss_pos", "l1_miss_wb",
                "tlb_miss_pos")


class CaptureError(Exception):
    """A capture could not be produced or failed validation."""


class ForeignEntryError(Exception):
    """A digest directory holds a *different* fingerprint's capture.

    Deliberately not a :class:`CaptureError` (and not an ``OSError``):
    the entry is healthy, it just belongs to another key whose digest
    collides with ours, so the caller must treat the lookup as a miss
    while leaving the entry untouched for its rightful owner.
    """


class TraceCapture:
    """One immutable front-end capture (see module docstring)."""

    __slots__ = ("n", "warmup", "event_boundary", "ops", "addrs",
                 "l1_miss_pos", "l1_miss_wb", "tlb_miss_pos", "frozen")

    def __init__(self, n: int, warmup: int, event_boundary: int,
                 ops: np.ndarray, addrs: np.ndarray,
                 l1_miss_pos: np.ndarray, l1_miss_wb: np.ndarray,
                 tlb_miss_pos: np.ndarray, frozen: Dict) -> None:
        self.n = n
        self.warmup = warmup
        self.event_boundary = event_boundary
        self.ops = ops
        self.addrs = addrs
        self.l1_miss_pos = l1_miss_pos
        self.l1_miss_wb = l1_miss_wb
        self.tlb_miss_pos = tlb_miss_pos
        self.frozen = frozen

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        return sum(int(getattr(self, name).nbytes)
                   for name in _ARRAY_NAMES)

    def validate(self) -> None:
        """Structural sanity; raises :class:`CaptureError` on damage.

        Cheap (vectorized) and run on every load from disk, so a
        truncated ``.npy`` or a hand-edited ``meta.json`` surfaces as a
        clean fallback to direct simulation rather than a wrong result.
        """
        if self.ops.shape != self.addrs.shape or self.ops.ndim != 1:
            raise CaptureError("ops/addrs arrays disagree")
        if self.l1_miss_pos.shape != self.l1_miss_wb.shape:
            raise CaptureError("miss position/writeback arrays disagree")
        if not (0 <= self.event_boundary <= int(self.ops.shape[0])):
            raise CaptureError("event boundary out of range")
        if not (0 <= self.warmup <= self.n):
            raise CaptureError("warmup split out of range")
        for pos in (self.l1_miss_pos, self.tlb_miss_pos):
            if pos.shape[0] and (
                int(pos[0]) < 0 or int(pos[-1]) >= self.n
                or bool(np.any(np.diff(pos) <= 0))
            ):
                raise CaptureError("positions not strictly increasing "
                                   "within the trace")
        counts = self.frozen.get("event_counts")
        if not isinstance(counts, dict):
            raise CaptureError("frozen stats missing event counts")
        measured = self.ops[self.event_boundary:]
        for op, key in ((OP_DEMAND_MISS, "demand"),
                        (OP_METADATA, "metadata"),
                        (OP_WRITEBACK, "writeback")):
            if int(np.count_nonzero(measured == op)) != counts.get(key):
                raise CaptureError(f"{key} event count mismatch")


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def trace_content_digest(trace: Trace) -> str:
    """sha256 over the trace arrays, memoized on ``trace.metadata``.

    Traces come out of the process-wide LRU factory, so the digest is
    computed once per (benchmark, length, seed) per process.
    """
    digest = trace.metadata.get("content_digest")
    if digest is None:
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(trace.addresses).tobytes())
        h.update(np.ascontiguousarray(trace.is_write).tobytes())
        digest = h.hexdigest()
        trace.metadata["content_digest"] = digest
    return digest


def fingerprint_key(fingerprint: Dict) -> str:
    """Canonical JSON of a fingerprint dict — the store key."""
    return json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))


def key_digest(key: str) -> str:
    """Directory-name-sized digest of a fingerprint key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
_WARNED_MEM_ENTRIES: set = set()


def _resolve_mem_entries() -> int:
    """``REPRO_CAPTURE_MEM_ENTRIES``, validated and clamped to >= 1.

    A zero or negative capacity would evict every capture as it is
    written, so each sweep cell re-captures; garbage falls back to the
    default the same way. Either warns on stderr once per distinct bad
    value per process (same clamp semantics as
    ``REPRO_CAPTURE_MAX_MB``).
    """
    import sys

    raw = os.environ.get(CAPTURE_MEM_ENTRIES_ENV, "").strip()
    if not raw:
        return _DEFAULT_MEM_ENTRIES
    try:
        entries = int(raw)
    except ValueError:
        entries = 0
    if entries >= 1:
        return entries
    if raw not in _WARNED_MEM_ENTRIES:
        _WARNED_MEM_ENTRIES.add(raw)
        print(
            f"repro: ignoring {CAPTURE_MEM_ENTRIES_ENV}={raw!r} "
            f"(need an integer >= 1); using the "
            f"{_DEFAULT_MEM_ENTRIES}-entry default",
            file=sys.stderr,
        )
    return _DEFAULT_MEM_ENTRIES


class MemoryCaptureStore:
    """Process-wide LRU of captures; the no-configuration default.

    The default capacity comes from ``REPRO_CAPTURE_MEM_ENTRIES``
    (resolved at construction, and re-resolved on every
    :func:`default_store` call for the shared singleton); pass
    ``max_entries`` explicitly to pin a capacity regardless of the
    environment.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = (_resolve_mem_entries()
                            if max_entries is None else max_entries)
        self._entries: "OrderedDict[str, TraceCapture]" = OrderedDict()

    def get(self, key: str) -> Optional[TraceCapture]:
        capture = self._entries.get(key)
        if capture is not None:
            self._entries.move_to_end(key)
        return capture

    def put(self, key: str, capture: TraceCapture,
            fingerprint: Optional[Dict] = None) -> None:
        self._entries[key] = capture
        self._entries.move_to_end(key)
        self._trim()

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class DiskCaptureStore:
    """Content-addressed on-disk captures shared across processes."""

    def __init__(self, root: str,
                 max_bytes: int = _DEFAULT_MAX_MB * 1024 * 1024,
                 memo_entries: int = 16) -> None:
        self.root = root
        self.max_bytes = max_bytes
        # In-process memo of loaded captures: repeated cells in one
        # worker skip the meta.json parse and np.load calls entirely.
        self._memo = MemoryCaptureStore(memo_entries)

    # ------------------------------------------------------------------
    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key_digest(key))

    def get(self, key: str) -> Optional[TraceCapture]:
        capture = self._memo.get(key)
        if capture is not None:
            return capture
        path = self._entry_dir(key)
        if not os.path.isdir(path):
            return None
        try:
            capture = self._load(path, key)
        except ForeignEntryError:
            # Digest collision: the entry is someone else's capture.
            # A miss, but never a quarantine — deleting it would
            # destroy the colliding fingerprint's (healthy) entry.
            return None
        except (OSError, ValueError, KeyError, CaptureError,
                json.JSONDecodeError):
            # Corrupt/truncated entry: quarantine it so the next run
            # re-captures instead of tripping over it again.
            shutil.rmtree(path, ignore_errors=True)
            return None
        try:
            os.utime(path)  # freshen mtime: LRU-ish eviction order
        except OSError:
            pass
        self._memo.put(key, capture)
        return capture

    def _load(self, path: str, key: str) -> TraceCapture:
        with open(os.path.join(path, "meta.json"), "r",
                  encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("version") != CAPTURE_VERSION:
            raise CaptureError("capture version mismatch")
        if meta.get("key") != key:
            raise ForeignEntryError("fingerprint mismatch")
        arrays = {
            name: np.load(os.path.join(path, f"{name}.npy"),
                          mmap_mode="r", allow_pickle=False)
            for name in _ARRAY_NAMES
        }
        capture = TraceCapture(
            n=int(meta["n"]), warmup=int(meta["warmup"]),
            event_boundary=int(meta["event_boundary"]),
            frozen=meta["frozen"], **arrays,
        )
        capture.validate()
        return capture

    # ------------------------------------------------------------------
    def put(self, key: str, capture: TraceCapture,
            fingerprint: Optional[Dict] = None) -> None:
        self._memo.put(key, capture)
        path = self._entry_dir(key)
        if os.path.isdir(path):
            return
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            os.makedirs(tmp, exist_ok=True)
            for name in _ARRAY_NAMES:
                np.save(os.path.join(tmp, f"{name}.npy"),
                        np.asarray(getattr(capture, name)),
                        allow_pickle=False)
            meta = {
                "version": CAPTURE_VERSION,
                "key": key,
                "fingerprint": fingerprint,
                "n": capture.n,
                "warmup": capture.warmup,
                "event_boundary": capture.event_boundary,
                "frozen": capture.frozen,
            }
            with open(os.path.join(tmp, "meta.json"), "w",
                      encoding="utf-8") as handle:
                json.dump(meta, handle, sort_keys=True)
            os.rename(tmp, path)
        except OSError:
            # Lost a publish race or the volume is unwritable; the
            # in-memory memo still serves this process.
            shutil.rmtree(tmp, ignore_errors=True)
            return
        self._evict(keep=os.path.basename(path))

    def _evict(self, keep: str) -> None:
        """Drop oldest entries until the store fits ``max_bytes``."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return
        entries = []
        total = 0
        for name in names:
            path = os.path.join(self.root, name)
            if not os.path.isdir(path) or ".tmp-" in name:
                continue
            size = 0
            try:
                with os.scandir(path) as it:
                    for item in it:
                        size += item.stat().st_size
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            total += size
            entries.append((mtime, name, path, size))
        if total <= self.max_bytes:
            return
        entries.sort()
        for _, name, path, size in entries:
            if total <= self.max_bytes:
                break
            if name == keep:
                continue
            shutil.rmtree(path, ignore_errors=True)
            total -= size


# ----------------------------------------------------------------------
# Store selection
# ----------------------------------------------------------------------
_MEMORY_STORE = MemoryCaptureStore()
_DISK_STORES: Dict[Tuple[str, int], DiskCaptureStore] = {}
_WARNED_MAX_MB: set = set()


def _resolve_max_mb() -> int:
    """``REPRO_CAPTURE_MAX_MB``, validated and clamped to >= 1 MB.

    A zero or negative cap would make ``_evict`` delete every entry
    except the one just written, so each sweep worker re-captures on
    every cell; garbage falls back to the default the same way. Either
    warns on stderr once per distinct bad value per process.
    """
    import sys

    raw = os.environ.get(CAPTURE_MAX_MB_ENV, "").strip()
    if not raw:
        return _DEFAULT_MAX_MB
    try:
        max_mb = int(raw)
    except ValueError:
        max_mb = 0
    if max_mb >= 1:
        return max_mb
    if raw not in _WARNED_MAX_MB:
        _WARNED_MAX_MB.add(raw)
        print(
            f"repro: ignoring {CAPTURE_MAX_MB_ENV}={raw!r} "
            f"(need an integer >= 1); using the "
            f"{_DEFAULT_MAX_MB} MB default",
            file=sys.stderr,
        )
    return _DEFAULT_MAX_MB


def default_store():
    """The store implied by the environment, re-resolved per call.

    ``REPRO_CAPTURE_DIR`` selects (and creates) an on-disk store —
    worker processes inherit the variable and share it; otherwise the
    process-wide in-memory store is used.
    """
    root = os.environ.get(CAPTURE_DIR_ENV, "").strip()
    if not root:
        # Honor capacity changes made after import: the singleton's
        # limit tracks the environment, trimming immediately so a
        # shrink takes effect without waiting for the next put.
        _MEMORY_STORE.max_entries = _resolve_mem_entries()
        _MEMORY_STORE._trim()
        return _MEMORY_STORE
    max_mb = _resolve_max_mb()
    cache_key = (os.path.abspath(root), max_mb)
    store = _DISK_STORES.get(cache_key)
    if store is None:
        os.makedirs(root, exist_ok=True)
        store = DiskCaptureStore(cache_key[0],
                                 max_bytes=max_mb * 1024 * 1024)
        _DISK_STORES[cache_key] = store
    return store
