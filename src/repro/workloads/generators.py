"""Reuse-distance-programmable access-pattern generators.

Each generator produces a stream of line addresses inside its own
region of the address space, with a characteristic reuse-distance
signature (Section 2 of the paper motivates exactly these classes):

* ``LoopRegion`` — cyclic scans of a footprint: reuse distance equals
  the footprint, like soplex's ``rorig`` rotation loops;
* ``StreamRegion`` — fresh addresses that never repeat: compulsory
  misses, infinite reuse distance, like lbm/milc streaming kernels;
* ``RandomRegion`` — uniform random touches over a footprint, like
  mcf's pointer chasing and soplex's ``rperm[rorig[i]]``;
* ``HotColdRegion`` — a small hot set absorbing most touches with a
  cold remainder, like cperm's 66%/24% split in Figure 3;
* ``BimodalLoopRegion`` — scan passes whose length is drawn from two
  modes (the ``c``/``r`` parameter behaviour in soplex's forest.cc).

A :class:`RegionMix` interleaves regions by weight into one trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


class Region(ABC):
    """One address-space region with a characteristic access pattern."""

    def __init__(self, name: str, weight: float,
                 write_fraction: float = 0.2) -> None:
        if weight <= 0:
            raise ValueError("region weight must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write fraction must be a probability")
        self.name = name
        self.weight = weight
        self.write_fraction = write_fraction

    @abstractmethod
    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Produce ``count`` region-relative line offsets."""

    @abstractmethod
    def span_lines(self) -> int:
        """Upper bound on offsets this region can emit."""

    def preferred_burst(self) -> int:
        """Mean contiguous run of accesses this region gets at a time.

        Programs execute one loop nest (phase) at a time rather than
        interleaving regions per access; loop regions override this so a
        burst covers whole passes, making loop reuse visible within the
        burst — as it is within a real program phase.
        """
        return 512


class LoopRegion(Region):
    """Cyclic sequential scan over a fixed footprint."""

    def __init__(self, name: str, footprint_lines: int, weight: float,
                 write_fraction: float = 0.2, stride: int = 1) -> None:
        super().__init__(name, weight, write_fraction)
        if footprint_lines < 1 or stride < 1:
            raise ValueError("footprint and stride must be positive")
        self.footprint_lines = footprint_lines
        self.stride = stride
        self._position = 0

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        idx = (self._position + self.stride * np.arange(count, dtype=np.int64))
        self._position = int(
            (self._position + self.stride * count) % self.footprint_lines
        )
        return idx % self.footprint_lines

    def span_lines(self) -> int:
        return self.footprint_lines

    def preferred_burst(self) -> int:
        # Cover several full passes so within-burst reuse equals the
        # loop footprint and cross-phase churn stays small.
        return max(512, 4 * self.footprint_lines)


class StreamRegion(Region):
    """Monotone streaming sweeps over an array larger than the LLC.

    The default span is 5 MB of lines — 2.5x the 2 MB L3, so every
    touch misses everywhere (and bypass cannot trivially convert the
    sweep into a resident working set), but small enough that the sweep
    wraps within a realistic trace and pages are revisited, as lbm/milc
    re-sweep their lattices every timestep.
    """

    def __init__(self, name: str, weight: float,
                 write_fraction: float = 0.2,
                 span: int = 81_920) -> None:
        super().__init__(name, weight, write_fraction)
        self.span = span
        self._position = 0

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        idx = self._position + np.arange(count, dtype=np.int64)
        self._position += count
        return idx % self.span

    def span_lines(self) -> int:
        return self.span

    def preferred_burst(self) -> int:
        # Streaming kernels run long sweeps; the exact value only
        # affects interleaving granularity, not reuse (there is none).
        return 2048


class RandomRegion(Region):
    """Random touches over a footprint, clustered in small runs.

    ``cluster_lines`` consecutive lines are touched per random anchor —
    structs and allocation locality make even pointer-chasing codes
    touch more than one line per object, which keeps TLB behaviour in a
    realistic range rather than one page per access.
    """

    def __init__(self, name: str, footprint_lines: int, weight: float,
                 write_fraction: float = 0.2, cluster_lines: int = 4) -> None:
        super().__init__(name, weight, write_fraction)
        if cluster_lines < 1:
            raise ValueError("cluster_lines must be positive")
        self.footprint_lines = footprint_lines
        self.cluster_lines = cluster_lines

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        clusters = -(-count // self.cluster_lines)
        anchors = rng.integers(0, self.footprint_lines, size=clusters,
                               dtype=np.int64)
        offsets = np.arange(self.cluster_lines, dtype=np.int64)
        expanded = (anchors[:, None] + offsets[None, :]).reshape(-1)
        return expanded[:count] % self.footprint_lines

    def span_lines(self) -> int:
        return self.footprint_lines


class HotColdRegion(Region):
    """A hot subset absorbs ``hot_probability`` of the touches.

    Hot clusters are *striped across the footprint* rather than packed
    into a contiguous prefix: real hot objects are scattered through the
    heap, so a page typically holds both hot and cold lines. This is
    what gives pages the mixed short/long reuse-distance distributions
    that SLIP answers with partial-bypass policies ({[0]} and friends).
    """

    def __init__(self, name: str, footprint_lines: int, weight: float,
                 hot_fraction: float = 0.1, hot_probability: float = 0.7,
                 write_fraction: float = 0.2, cluster_lines: int = 4) -> None:
        super().__init__(name, weight, write_fraction)
        if not 0 < hot_fraction < 1 or not 0 < hot_probability < 1:
            raise ValueError("hot parameters must be in (0, 1)")
        self.footprint_lines = footprint_lines
        self.hot_lines = max(1, int(footprint_lines * hot_fraction))
        self.hot_probability = hot_probability
        self.cluster_lines = max(1, cluster_lines)
        # One hot anchor per cluster_lines of hot set, spread evenly.
        self._n_hot_anchors = max(1, self.hot_lines // self.cluster_lines)
        self._hot_period = max(1, footprint_lines // self._n_hot_anchors)

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        clusters = -(-count // self.cluster_lines)
        hot = rng.random(clusters) < self.hot_probability
        hot_anchors = rng.integers(
            0, self._n_hot_anchors, size=clusters, dtype=np.int64
        ) * self._hot_period
        cold_anchors = rng.integers(0, self.footprint_lines,
                                    size=clusters, dtype=np.int64)
        anchors = np.where(hot, hot_anchors, cold_anchors)
        offsets = np.arange(self.cluster_lines, dtype=np.int64)
        expanded = (anchors[:, None] + offsets[None, :]).reshape(-1)
        return expanded[:count] % self.footprint_lines

    def span_lines(self) -> int:
        return self.footprint_lines

    def preferred_burst(self) -> int:
        # A burst long enough that a hot line is typically re-touched
        # within it, so its short stack distance is observable.
        mean_gap = self.hot_lines / self.hot_probability
        return max(512, int(5 * mean_gap))


class BimodalLoopRegion(Region):
    """Scan passes of bimodal length (soplex's c..r rotation loops).

    ``short_access_share`` is the fraction of *accesses* (not passes)
    belonging to short scans — Figure 3 reports access fractions, and
    long passes dominate volume, so the per-pass short probability is
    derived to hit the requested access share. Short passes create short
    reuse distances (the stream fits a small chunk); long passes never
    fit.
    """

    def __init__(self, name: str, short_lines: int, long_lines: int,
                 short_access_share: float, weight: float,
                 write_fraction: float = 0.2,
                 long_scan_lines: int = 0) -> None:
        super().__init__(name, weight, write_fraction)
        if short_lines >= long_lines:
            raise ValueError("short footprint must be below long")
        if not 0 < short_access_share < 1:
            raise ValueError("short_access_share must be in (0, 1)")
        self.short_lines = short_lines
        self.long_lines = long_lines
        self.short_access_share = short_access_share
        # Long scans only need to overflow the cache, not traverse the
        # whole region per pass — short per-pass lengths keep the access
        # share statistically stable over realistic trace budgets.
        self.long_scan_lines = long_scan_lines or min(long_lines, 8_192)
        # Convert the access share into a per-pass probability.
        rate_short = short_access_share / short_lines
        rate_long = (1.0 - short_access_share) / self.long_scan_lines
        self._pass_prob_short = rate_short / (rate_short + rate_long)
        self._pending: List[int] = []

    def _next_pass(self, rng: np.random.Generator) -> np.ndarray:
        length = (
            self.short_lines
            if rng.random() < self._pass_prob_short
            else self.long_scan_lines
        )
        base = int(rng.integers(0, self.long_lines))
        # Two back-to-back scans of the window, like line 418 followed
        # immediately by line 421 in forest.cc.
        window = (base + np.arange(length, dtype=np.int64)) % self.long_lines
        return np.concatenate([window, window])

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        chunks: List[np.ndarray] = []
        have = 0
        if self._pending:
            pend = np.asarray(self._pending, dtype=np.int64)
            chunks.append(pend[:count])
            have = min(count, pend.size)
            self._pending = pend[count:].tolist()
        while have < count:
            window = self._next_pass(rng)
            take = min(window.size, count - have)
            chunks.append(window[:take])
            if take < window.size:
                self._pending = window[take:].tolist()
            have += take
        return np.concatenate(chunks)

    def span_lines(self) -> int:
        return self.long_lines

    def preferred_burst(self) -> int:
        # Cover a whole short pass (two scans of the window) so the
        # second scan's reuse is visible within the burst.
        return max(512, 4 * self.short_lines)


@dataclass
class RegionPlacement:
    region: Region
    base_line: int


class RegionMix:
    """Interleave regions by weight into one address trace."""

    #: Gap between consecutive regions so they never share a page.
    REGION_ALIGN = 1 << 22

    def __init__(self, regions: Sequence[Region]) -> None:
        if not regions:
            raise ValueError("need at least one region")
        self.placements: List[RegionPlacement] = []
        base = 0
        for region in regions:
            self.placements.append(RegionPlacement(region, base))
            span = max(region.span_lines(), 1)
            base += ((span // self.REGION_ALIGN) + 1) * self.REGION_ALIGN

    def _burst_schedule(self, count: int,
                        rng: np.random.Generator) -> np.ndarray:
        """Phase-like schedule: one region at a time, in bursts.

        Quota-based: each region is cut into bursts of its preferred
        length until its weight share of the trace is filled, and the
        bursts are then shuffled. Access shares therefore match the
        weights *exactly* — with free-running burst draws, one region
        whose phase is comparable to the whole trace could crowd
        another out entirely.
        """
        weights = np.array(
            [p.region.weight for p in self.placements], dtype=float
        )
        weights /= weights.sum()
        pieces = []
        for idx, placement in enumerate(self.placements):
            quota = int(round(weights[idx] * count))
            mean = placement.region.preferred_burst()
            low, high = max(1, int(mean * 0.5)), int(mean * 1.5) + 1
            while quota > 0:
                length = min(int(rng.integers(low, high)), quota)
                pieces.append((idx, length))
                quota -= length
        order = rng.permutation(len(pieces))
        schedule = np.empty(count, dtype=np.int64)
        filled = 0
        for piece_idx in order:
            region, length = pieces[piece_idx]
            take = min(length, count - filled)
            schedule[filled:filled + take] = region
            filled += take
            if filled >= count:
                break
        if filled < count:  # rounding shortfall: pad with last region
            schedule[filled:] = schedule[filled - 1] if filled else 0
        return schedule

    def generate(self, count: int, rng: np.random.Generator,
                 schedule: Optional[np.ndarray] = None) -> "tuple[np.ndarray, np.ndarray]":
        """Produce (addresses, is_write) arrays of length ``count``."""
        if schedule is None:
            schedule = self._burst_schedule(count, rng)
        addresses = np.empty(count, dtype=np.int64)
        is_write = np.zeros(count, dtype=bool)
        for idx, placement in enumerate(self.placements):
            mask = schedule == idx
            n = int(mask.sum())
            if n == 0:
                continue
            offsets = placement.region.generate(n, rng)
            addresses[mask] = offsets + placement.base_line
            is_write[mask] = (
                rng.random(n) < placement.region.write_fraction
            )
        return addresses, is_write
