"""Trace containers for the trace-driven simulator.

A trace is a pair of parallel numpy arrays: 64-bit line addresses and a
write flag per access. Addresses are in units of 64-byte cache lines;
page numbers are ``address >> line_to_page_shift(lines_per_page)``,
the same shared hook :class:`~repro.mem.hierarchy.MemoryHierarchy`
derives its page grain from (64 lines per 4 KB page by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

from ..sim.config import LINES_PER_PAGE, line_to_page_shift

#: Accesses materialized per chunk by ``Trace.__iter__``. Large enough
#: that the per-chunk slicing cost is invisible, small enough that a
#: multi-million-access trace never holds two full list copies alive
#: (the old ``.tolist()``-both-arrays implementation did, per call).
_ITER_CHUNK = 65536


@dataclass
class Trace:
    """An access trace plus the workload facts the timing model needs."""

    name: str
    addresses: np.ndarray
    is_write: np.ndarray
    #: Instructions represented per memory access (for CPI/energy models).
    instructions_per_access: float = 3.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.addresses.shape != self.is_write.shape:
            raise ValueError("addresses and is_write must align")
        if self.addresses.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    def __iter__(self) -> Iterator[Tuple[int, bool]]:
        # Chunked conversion: ~same per-access cost as a flat .tolist()
        # (the numpy->list conversion dominates either way; see the
        # micro-benchmark note in EXPERIMENTS.md) but peak extra memory
        # is two 64 Ki-entry lists instead of two full-trace copies.
        addresses, is_write = self.addresses, self.is_write
        for start in range(0, int(addresses.shape[0]), _ITER_CHUNK):
            stop = start + _ITER_CHUNK
            yield from zip(addresses[start:stop].tolist(),
                           is_write[start:stop].tolist())

    @property
    def instruction_count(self) -> float:
        return len(self) * self.instructions_per_access

    def footprint_lines(self) -> int:
        """Number of distinct lines touched."""
        return int(np.unique(self.addresses).size)

    def footprint_pages(self, lines_per_page: int = LINES_PER_PAGE) -> int:
        """Number of distinct pages touched.

        Pass ``config.lines_per_page`` to report at the same page grain
        a hierarchy built from that config simulates with; the default
        is the stock 4 KB page (64 lines).
        """
        shift = line_to_page_shift(lines_per_page)
        return int(np.unique(self.addresses >> shift).size)

    def sliced(self, start: int, stop: int) -> "Trace":
        return Trace(
            name=self.name,
            addresses=self.addresses[start:stop],
            is_write=self.is_write[start:stop],
            instructions_per_access=self.instructions_per_access,
            metadata=dict(self.metadata),
        )

    def with_offset(self, line_offset: int) -> "Trace":
        """Shift the whole trace's address space (multicore isolation)."""
        return Trace(
            name=self.name,
            addresses=self.addresses + np.int64(line_offset),
            is_write=self.is_write,
            instructions_per_access=self.instructions_per_access,
            metadata=dict(self.metadata),
        )


def concatenate(name: str, traces: Tuple[Trace, ...],
                instructions_per_access: float) -> Trace:
    """Join phase traces back-to-back."""
    return Trace(
        name=name,
        addresses=np.concatenate([t.addresses for t in traces]),
        is_write=np.concatenate([t.is_write for t in traces]),
        instructions_per_access=instructions_per_access,
    )
