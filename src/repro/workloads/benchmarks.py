"""Synthetic analogs of the paper's SPEC-CPU2006 workloads.

The paper evaluates the memory-intensive SPEC-CPU2006 subset identified
by Jaleel, simulated in MARSSx86 from SimPoints. Neither SPEC binaries
nor the authors' traces are redistributable, so each benchmark here is a
*synthetic analog*: a mixture of access-pattern regions whose
reuse-distance structure reproduces the behaviour the paper reports for
that benchmark — streaming kernels for lbm/milc, huge pointer-chasing
footprints for mcf/omnetpp/xalancbmk, the bimodal rotation loops of
soplex's forest.cc (Figure 3), phase changes in mcf (Section 4.2), and
the >70% zero-reuse LLC lines of Figure 1. Capacities are chosen
relative to the simulated hierarchy: 64 KB = 1024 lines (L2 sublevel 0),
256 KB = 4096 lines (L2), 2 MB = 32768 lines (L3).

What transfers to the paper's tables is therefore the *shape* of each
result (which policy wins, where bypassing dominates), not absolute SPEC
miss rates.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

from .generators import (
    BimodalLoopRegion,
    HotColdRegion,
    LoopRegion,
    RandomRegion,
    Region,
    RegionMix,
    StreamRegion,
)
from .trace import Trace, concatenate

# Landmarks of the simulated hierarchy, in lines.
L2_SUBLEVEL0 = 1024     # 64 KB
L2_FULL = 4096          # 256 KB
L3_SUBLEVEL0 = 8192     # 512 KB
L3_FULL = 32768         # 2 MB
BEYOND_LLC = 100_000    # ~6 MB, never fits but pages recur

RegionFactory = Callable[[], List[Region]]


@dataclass(frozen=True)
class Phase:
    """A program phase: a fraction of the trace with its own regions."""

    fraction: float
    regions: RegionFactory


@dataclass(frozen=True)
class BenchmarkSpec:
    name: str
    phases: Tuple[Phase, ...]
    instructions_per_access: float = 3.0
    description: str = ""

    def trace(self, length: int, seed: int = 0) -> Trace:
        """Generate a trace of the given length (deterministic per seed)."""
        name_salt = zlib.crc32(self.name.encode()) & 0xFFFF
        pieces = []
        for idx, phase in enumerate(self.phases):
            n = max(1, int(round(length * phase.fraction)))
            rng = np.random.default_rng(
                name_salt * 1_000_003 + seed * 97 + idx
            )
            mix = RegionMix(phase.regions())
            addresses, is_write = mix.generate(n, rng)
            pieces.append(Trace(self.name, addresses, is_write,
                                self.instructions_per_access))
        return concatenate(self.name, tuple(pieces),
                           self.instructions_per_access)


def _spec(name: str, regions: RegionFactory, ipa: float = 3.0,
          description: str = "") -> BenchmarkSpec:
    return BenchmarkSpec(name, (Phase(1.0, regions),), ipa, description)


def _soplex_regions() -> List[Region]:
    return [
        # forest.cc rorig/corig rotation: 18% of passes fit 64 KB, the
        # rest overflow even the full L2 (Figure 3, lines 418/421/425).
        BimodalLoopRegion("rorig", short_lines=700, long_lines=40_000,
                          short_access_share=0.36, weight=0.34,
                          write_fraction=0.35),
        # rperm[rorig[i]]: effectively random, always misses (line 421).
        RandomRegion("rperm", BEYOND_LLC, weight=0.16, write_fraction=0.3),
        # cperm: 66% of accesses hit a 64 KB hot set, 10% need the full
        # cache, 24% never fit (line 428).
        HotColdRegion("cperm", footprint_lines=48_000, hot_fraction=0.015,
                      hot_probability=0.8, weight=0.3, write_fraction=0.3),
        LoopRegion("workarrays", 700, weight=0.2, write_fraction=0.25),
    ]


def _mcf_phase_a() -> List[Region]:
    return [
        RandomRegion("arcs", 100_000, weight=0.55, write_fraction=0.15),
        LoopRegion("nodes-hot", 600, weight=0.2, write_fraction=0.3),
        StreamRegion("basket", weight=0.25, write_fraction=0.1),
    ]


def _mcf_phase_b() -> List[Region]:
    # Phase change (Section 4.2): previously-bypassed arc data becomes
    # hot as the network simplex iterates over a narrower cut.
    return [
        HotColdRegion("arcs", 100_000, hot_fraction=0.006,
                      hot_probability=0.75, weight=0.55,
                      write_fraction=0.15),
        LoopRegion("nodes-hot", 600, weight=0.2, write_fraction=0.3),
        StreamRegion("basket", weight=0.25, write_fraction=0.1),
    ]


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "soplex": BenchmarkSpec(
        "soplex", (Phase(1.0, _soplex_regions),), 2.6,
        "LP solver; bimodal rotation loops + permutation chasing",
    ),
    "gcc": _spec("gcc", lambda: [
        HotColdRegion("symtab", 40_000, hot_fraction=0.02,
                      hot_probability=0.6, weight=0.4),
        LoopRegion("rtl-pass", 1_800, weight=0.2, write_fraction=0.3),
        StreamRegion("insn-stream", weight=0.2),
        RandomRegion("pointers", 60_000, weight=0.2),
    ], 2.8, "compiler; mixed pointer structures and pass-local loops"),
    "xalancbmk": _spec("xalancbmk", lambda: [
        RandomRegion("dom", 80_000, weight=0.38),
        LoopRegion("strings", 700, weight=0.34, write_fraction=0.3),
        StreamRegion("output", weight=0.18, write_fraction=0.4),
        HotColdRegion("schema", 20_000, hot_fraction=0.04,
                      hot_probability=0.5, weight=0.1),
    ], 2.7, "XSLT; DOM pointer chasing with tiny hot string loops"),
    "mcf": BenchmarkSpec(
        "mcf",
        (Phase(0.5, _mcf_phase_a), Phase(0.5, _mcf_phase_b)),
        2.4,
        "network simplex; huge random arc array with a phase change",
    ),
    "leslie3D": _spec("leslie3D", lambda: [
        StreamRegion("flux", weight=0.45, write_fraction=0.35),
        LoopRegion("stencil-l2", 3_000, weight=0.3, write_fraction=0.3),
        LoopRegion("stencil-l3", 26_000, weight=0.25),
    ], 3.2, "CFD stencil; streaming sweeps + L3-sized reuse window"),
    "omnetpp": _spec("omnetpp", lambda: [
        RandomRegion("events", 70_000, weight=0.42),
        HotColdRegion("queues", 36_000, hot_fraction=0.022,
                      hot_probability=0.6, weight=0.33),
        LoopRegion("scheduler", 900, weight=0.25, write_fraction=0.35),
    ], 2.6, "discrete event simulation; scattered heap with hot queues"),
    "astar": _spec("astar", lambda: [
        RandomRegion("graph", 40_000, weight=0.45),
        LoopRegion("open-list", 1_200, weight=0.3, write_fraction=0.35),
        StreamRegion("map", weight=0.25),
    ], 2.9, "path finding; mid-size random graph + open-list churn"),
    "gemsFDTD": _spec("gemsFDTD", lambda: [
        StreamRegion("fields", weight=0.5, write_fraction=0.4),
        LoopRegion("boundary-l3", 28_000, weight=0.3),
        LoopRegion("coeffs", 1_500, weight=0.2),
    ], 3.3, "FDTD solver; field sweeps dominate"),
    "sphinx3": _spec("sphinx3", lambda: [
        HotColdRegion("gaussians", 36_000, hot_fraction=0.025,
                      hot_probability=0.55, weight=0.4),
        LoopRegion("frames", 800, weight=0.3, write_fraction=0.25),
        StreamRegion("cepstra", weight=0.3),
    ], 2.8, "speech recognition; hot senones within a large model"),
    "wrf": _spec("wrf", lambda: [
        LoopRegion("tiles", 3_500, weight=0.35, write_fraction=0.35),
        StreamRegion("physics", weight=0.35),
        RandomRegion("halo", 20_000, weight=0.3),
    ], 3.1, "weather model; tile loops with streaming physics"),
    "milc": _spec("milc", lambda: [
        StreamRegion("lattice", weight=0.6, write_fraction=0.4),
        LoopRegion("su3-l3", 26_000, weight=0.25),
        RandomRegion("gather", 80_000, weight=0.15),
    ], 3.4, "lattice QCD; long streaming sweeps"),
    "cactusADM": _spec("cactusADM", lambda: [
        LoopRegion("grid-l2", 3_800, weight=0.5, write_fraction=0.35),
        StreamRegion("sweep", weight=0.3),
        LoopRegion("grid-l3", 14_000, weight=0.2),
    ], 3.3, "numerical relativity; working set near the L2 capacity"),
    "bzip2": _spec("bzip2", lambda: [
        HotColdRegion("block", 2_500, hot_fraction=0.3,
                      hot_probability=0.75, weight=0.45,
                      write_fraction=0.4),
        LoopRegion("huffman", 900, weight=0.3, write_fraction=0.3),
        StreamRegion("input", weight=0.25),
    ], 2.9, "compression; strong locality inside the active block"),
    "lbm": _spec("lbm", lambda: [
        StreamRegion("cells", weight=0.7, write_fraction=0.45),
        LoopRegion("collide", 1_000, weight=0.3, write_fraction=0.35),
    ], 3.5, "lattice Boltzmann; almost pure streaming"),
}

#: The order benchmarks appear on the x-axis of Figures 9-15.
SPEC_ORDER: Tuple[str, ...] = (
    "soplex", "gcc", "xalancbmk", "mcf", "leslie3D", "omnetpp", "astar",
    "gemsFDTD", "sphinx3", "wrf", "milc", "cactusADM", "bzip2", "lbm",
)

#: Benchmarks shown in Figure 1.
FIG1_BENCHMARKS: Tuple[str, ...] = (
    "soplex", "gcc", "mcf", "xalancbmk", "leslie3D", "omnetpp", "sphinx3",
)


#: Max distinct (benchmark, length, seed) traces kept in memory; 0
#: disables caching. A 300k-access trace is ~3 MB, so the default
#: bounds the cache at ~100 MB while letting a full sweep (14
#: benchmarks x 5 policies) generate each trace exactly once per
#: process — serial callers and pool workers alike.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE_SIZE"
_TRACE_CACHE_SIZE = int(os.environ.get(TRACE_CACHE_ENV, "32"))


@lru_cache(maxsize=max(1, _TRACE_CACHE_SIZE))
def _cached_trace(name: str, length: int, seed: int) -> Trace:
    trace = BENCHMARKS[name].trace(length, seed)
    # Shared across callers: freeze the arrays so an accidental in-place
    # edit cannot corrupt every later run of the same benchmark.
    trace.addresses.setflags(write=False)
    trace.is_write.setflags(write=False)
    return trace


def make_trace(name: str, length: int, seed: int = 0) -> Trace:
    """Trace for a named benchmark analog (LRU-cached, read-only).

    Repeated calls with the same ``(name, length, seed)`` return the
    same :class:`Trace` object, so policy sweeps stop regenerating
    identical traces. Treat the arrays as immutable; derive modified
    copies via :meth:`Trace.with_offset` or slicing instead.
    """
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        )
    if _TRACE_CACHE_SIZE <= 0:
        return BENCHMARKS[name].trace(length, seed)
    return _cached_trace(name, length, seed)


def trace_cache_info():
    """Hit/miss statistics of the shared trace cache."""
    return _cached_trace.cache_info()


def clear_trace_cache() -> None:
    _cached_trace.cache_clear()
