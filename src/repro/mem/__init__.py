"""Memory-hierarchy substrate: caches, replacement, TLB, DRAM."""

from .cache import CacheLevel, EvictedLine, Line
from .dram import Dram
from .hierarchy import MemoryHierarchy
from .movement_queue import MovementQueue, MovementQueueFullError
from .replacement import (
    DrripReplacement,
    LruReplacement,
    RandomReplacement,
    ReplacementPolicy,
    ShipReplacement,
    make_replacement,
)
from .stats import DramStats, EnergyBreakdown, LevelStats
from .tlb import Tlb, distribution_line_address, pte_line_address

__all__ = [
    "CacheLevel",
    "Dram",
    "DramStats",
    "DrripReplacement",
    "EnergyBreakdown",
    "EvictedLine",
    "LevelStats",
    "Line",
    "LruReplacement",
    "MemoryHierarchy",
    "MovementQueue",
    "MovementQueueFullError",
    "RandomReplacement",
    "ReplacementPolicy",
    "ShipReplacement",
    "Tlb",
    "distribution_line_address",
    "make_replacement",
    "pte_line_address",
]
