"""Replacement policies with restricted-way victim selection.

SLIP chooses victims from a *chunk* — an arbitrary subset of a set's ways
— so every policy here implements ``choose_victim(set_idx, ways, lines)``
over a candidate way list. LRU is the paper's evaluation policy; DRRIP
and SHiP implement the Section 7 adaptation (pick a random sublevel of
the chunk in proportion to sublevel sizes, then apply the policy inside
that sublevel, which preserves scan and thrash resistance).
"""

from __future__ import annotations

import random
import weakref
from abc import ABC, abstractmethod
from typing import List, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import CacheLevel, Line


class ReplacementPolicy(ABC):
    """Victim selection and recency bookkeeping for one cache level."""

    def attach(self, level: "CacheLevel") -> None:
        # Weak back-reference. The level holds its replacement policy
        # strongly; a strong reverse edge would make every CacheLevel
        # graph cyclic, handing the level's entire (large) Line
        # population to the cyclic collector instead of plain
        # refcounting — measurable as gen-2 pause jitter in sweeps
        # that build and drop one hierarchy per cell.
        self._level_ref = weakref.ref(level)

    @property
    def level(self) -> "CacheLevel":
        level = self._level_ref()
        assert level is not None, "replacement used after level death"
        return level

    @abstractmethod
    def on_hit(self, set_idx: int, way: int, line: "Line") -> None:
        """A lookup hit the given line."""

    @abstractmethod
    def on_fill(self, set_idx: int, way: int, line: "Line") -> None:
        """A new line was installed from the next level."""

    def on_move_in(self, set_idx: int, way: int, line: "Line") -> None:
        """A line was moved into this way from another way (demotion)."""
        self.on_fill(set_idx, way, line)

    @abstractmethod
    def choose_victim(
        self, set_idx: int, candidate_ways: Sequence[int], lines: List["Line"]
    ) -> int:
        """Pick a victim way among the candidates (all valid)."""


class LruReplacement(ReplacementPolicy):
    """Least-recently-used, tracked with a monotone access stamp."""

    def __init__(self) -> None:
        self._clock = 0

    def _stamp(self, line: "Line") -> None:
        self._clock += 1
        line.lru = self._clock

    def on_hit(self, set_idx: int, way: int, line: "Line") -> None:
        self._stamp(line)

    def on_fill(self, set_idx: int, way: int, line: "Line") -> None:
        self._stamp(line)

    def on_move_in(self, set_idx: int, way: int, line: "Line") -> None:
        # A demoted line keeps its recency order relative to other lines
        # rather than becoming MRU; refreshing it would let one demotion
        # shield a line from eviction indefinitely.
        pass

    def choose_victim(
        self, set_idx: int, candidate_ways: Sequence[int], lines: List["Line"]
    ) -> int:
        return min(candidate_ways, key=lambda w: lines[w].lru)


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim; useful as a stress baseline in tests."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_hit(self, set_idx: int, way: int, line: "Line") -> None:
        pass

    def on_fill(self, set_idx: int, way: int, line: "Line") -> None:
        pass

    def choose_victim(
        self, set_idx: int, candidate_ways: Sequence[int], lines: List["Line"]
    ) -> int:
        return self._rng.choice(list(candidate_ways))


class _RripBase(ReplacementPolicy):
    """Shared RRPV machinery for DRRIP and SHiP."""

    def __init__(self, rrpv_bits: int = 2, seed: int = 0) -> None:
        self.rrpv_max = (1 << rrpv_bits) - 1
        self._rng = random.Random(seed)

    def on_hit(self, set_idx: int, way: int, line: "Line") -> None:
        line.rrpv = 0  # hit promotion

    def _restrict_to_sublevel(
        self, candidate_ways: Sequence[int]
    ) -> Sequence[int]:
        """Section 7 adaptation: sample one sublevel, weighted by size."""
        cfg = self.level.cfg
        if not cfg.sublevel_ways:
            return candidate_ways
        by_sublevel: dict = {}
        for way in candidate_ways:
            by_sublevel.setdefault(cfg.sublevel_of_way(way), []).append(way)
        if len(by_sublevel) == 1:
            return candidate_ways
        sublevels = list(by_sublevel)
        weights = [len(by_sublevel[s]) for s in sublevels]
        chosen = self._rng.choices(sublevels, weights=weights, k=1)[0]
        return by_sublevel[chosen]

    def choose_victim(
        self, set_idx: int, candidate_ways: Sequence[int], lines: List["Line"]
    ) -> int:
        ways = self._restrict_to_sublevel(candidate_ways)
        while True:
            for way in ways:
                if lines[way].rrpv >= self.rrpv_max:
                    return way
            for way in ways:
                lines[way].rrpv += 1


class DrripReplacement(_RripBase):
    """Dynamic RRIP with set dueling between SRRIP and BRRIP."""

    def __init__(
        self,
        rrpv_bits: int = 2,
        num_leader_sets: int = 32,
        brrip_long_prob: float = 1.0 / 32.0,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(rrpv_bits, seed)
        self.num_leader_sets = num_leader_sets
        self.brrip_long_prob = brrip_long_prob
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2

    def _set_role(self, set_idx: int) -> str:
        """Leader-set assignment: interleave SRRIP/BRRIP leaders."""
        sets = self.level.cfg.sets
        stride = max(1, sets // self.num_leader_sets)
        if set_idx % stride == 0:
            return "srrip"
        if set_idx % stride == stride // 2 and stride > 1:
            return "brrip"
        return "follower"

    def _use_brrip(self, set_idx: int) -> bool:
        role = self._set_role(set_idx)
        if role == "srrip":
            return False
        if role == "brrip":
            return True
        return self.psel > self.psel_max // 2

    def on_fill(self, set_idx: int, way: int, line: "Line") -> None:
        if self._use_brrip(set_idx):
            long_insert = self._rng.random() < self.brrip_long_prob
            line.rrpv = self.rrpv_max - 1 if long_insert else self.rrpv_max
        else:
            line.rrpv = self.rrpv_max - 1

    def on_move_in(self, set_idx: int, way: int, line: "Line") -> None:
        # Demoted lines keep their RRPV: their re-reference prediction is
        # unchanged by the physical move.
        pass

    def record_miss(self, set_idx: int) -> None:
        """Update the dueling counter on misses to leader sets."""
        role = self._set_role(set_idx)
        if role == "srrip" and self.psel < self.psel_max:
            self.psel += 1
        elif role == "brrip" and self.psel > 0:
            self.psel -= 1


class ShipReplacement(_RripBase):
    """Signature-based hit prediction (SHiP-mem, page signatures)."""

    def __init__(
        self,
        rrpv_bits: int = 2,
        shct_entries: int = 16384,
        shct_bits: int = 2,
        signature_shift: int = 6,
        seed: int = 0,
    ) -> None:
        super().__init__(rrpv_bits, seed)
        self.shct = [1] * shct_entries
        self.shct_max = (1 << shct_bits) - 1
        self.signature_shift = signature_shift

    def signature_of(self, line_addr: int) -> int:
        return (line_addr >> self.signature_shift) % len(self.shct)

    def on_hit(self, set_idx: int, way: int, line: "Line") -> None:
        super().on_hit(set_idx, way, line)
        if not line.outcome:
            line.outcome = True
            sig = self.shct[line.signature]
            if sig < self.shct_max:
                self.shct[line.signature] = sig + 1

    def on_fill(self, set_idx: int, way: int, line: "Line") -> None:
        line.signature = self.signature_of(line.tag)
        line.outcome = False
        predicted_dead = self.shct[line.signature] == 0
        line.rrpv = self.rrpv_max if predicted_dead else self.rrpv_max - 1

    def on_move_in(self, set_idx: int, way: int, line: "Line") -> None:
        pass

    def on_evict(self, line: "Line") -> None:
        """Train the SHCT when a line dies without reuse."""
        if not line.outcome and self.shct[line.signature] > 0:
            self.shct[line.signature] -= 1


def make_replacement(name: str, seed: int = 0) -> ReplacementPolicy:
    """Factory for replacement policies by short name."""
    name = name.lower()
    if name == "lru":
        return LruReplacement()
    if name == "random":
        return RandomReplacement(seed)
    if name == "drrip":
        return DrripReplacement(seed=seed)
    if name == "ship":
        return ShipReplacement(seed=seed)
    raise ValueError(f"unknown replacement policy: {name!r}")
