"""TLB and page-table address mapping.

SLIP stores each page's policies (3 b per SLIP-managed level) and its
sampling/stable state in ignored PTE bits, and a 32 b reuse-distance
distribution per page in DRAM. Both are fetched through the cache
hierarchy itself: this module maps page numbers to synthetic page-table
and distribution-table line addresses in a reserved region of the
address space, so metadata traffic (Figure 12) is simulated with the
same machinery as demand traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

# Reserved address regions (line addresses) for metadata structures.
PTE_TABLE_BASE = 1 << 50
DIST_TABLE_BASE = 1 << 51

PTE_BYTES = 8
DIST_BYTES = 4
LINE_BYTES = 64
PTES_PER_LINE = LINE_BYTES // PTE_BYTES
DISTS_PER_LINE = LINE_BYTES // DIST_BYTES


def pte_line_address(page: int) -> int:
    """Line address holding the PTE of a page."""
    return PTE_TABLE_BASE + page // PTES_PER_LINE


def distribution_line_address(page: int) -> int:
    """Line address holding the packed reuse distribution of a page."""
    return DIST_TABLE_BASE + page // DISTS_PER_LINE


def is_metadata_address(line_addr: int) -> bool:
    return line_addr >= PTE_TABLE_BASE


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully associative, LRU translation lookaside buffer."""

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.stats = TlbStats()

    def access(self, page: int) -> bool:
        """Touch a page; returns True on TLB hit."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    def contains(self, page: int) -> bool:
        return page in self._pages

    def flush(self) -> None:
        self._pages.clear()
