"""DRAM model: fixed latency, per-line transfer energy.

Energy follows the paper's Table 2 (20 pJ/bit, from Vogelsang's Idd4 +
Idd7RW analysis): moving one 64-byte line to or from DRAM costs
10,240 pJ — roughly 75x an average L3 access, which is why SLIP bypasses
far less aggressively at L3 than at L2 (Section 6).
"""

from __future__ import annotations

from ..sim.config import DramConfig
from .stats import DramStats


class Dram:
    """The memory controller endpoint of the hierarchy."""

    def __init__(self, cfg: DramConfig) -> None:
        self.cfg = cfg
        self.stats = DramStats()
        # The per-line energy is a derived property on a frozen config;
        # snapshot both hot constants instead of recomputing per access.
        self._energy_pj = cfg.energy_pj_per_line
        self._latency = cfg.latency_cycles

    def read(self) -> int:
        """Fetch one line; returns the access latency in cycles.

        Energy accounting is deferred like the cache levels': the hot
        path bumps the integer access counter only, and
        :meth:`materialize_energy` publishes ``energy_pj`` as one exact
        ``accesses * per_line`` product at statistics boundaries.
        """
        self.stats.reads += 1
        return self._latency

    def write(self) -> int:
        """Write one line back; returns the access latency in cycles."""
        self.stats.writes += 1
        return self._latency

    def materialize_energy(self) -> DramStats:
        """Fold the access counters into ``energy_pj``; returns stats.

        Idempotent: the field is overwritten with the product, never
        accumulated into, so every statistics boundary may call this.
        """
        stats = self.stats
        stats.energy_pj = (stats.reads + stats.writes) * self._energy_pj
        return stats
