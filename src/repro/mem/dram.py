"""DRAM model: fixed latency, per-line transfer energy.

Energy follows the paper's Table 2 (20 pJ/bit, from Vogelsang's Idd4 +
Idd7RW analysis): moving one 64-byte line to or from DRAM costs
10,240 pJ — roughly 75x an average L3 access, which is why SLIP bypasses
far less aggressively at L3 than at L2 (Section 6).
"""

from __future__ import annotations

from ..sim.config import DramConfig
from .stats import DramStats


class Dram:
    """The memory controller endpoint of the hierarchy."""

    def __init__(self, cfg: DramConfig) -> None:
        self.cfg = cfg
        self.stats = DramStats()
        # The per-line energy is a derived property on a frozen config;
        # snapshot both hot constants instead of recomputing per access.
        self._energy_pj = cfg.energy_pj_per_line
        self._latency = cfg.latency_cycles

    def read(self) -> int:
        """Fetch one line; returns the access latency in cycles."""
        stats = self.stats
        stats.reads += 1
        stats.energy_pj += self._energy_pj
        return self._latency

    def write(self) -> int:
        """Write one line back; returns the access latency in cycles."""
        stats = self.stats
        stats.writes += 1
        stats.energy_pj += self._energy_pj
        return self._latency
