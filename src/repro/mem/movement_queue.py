"""The movement queue (Section 4.3).

Lines being moved between ways are held in a small fully associative
queue until written to their destination, so that lookups and
invalidations arriving mid-movement still find them. In this functional
simulator movements complete atomically, but the queue is modelled for
its two observable costs: the 0.3 pJ lookup energy per movement
(synthesized RTL, Section 5) and the correctness requirement that probes
check in-flight lines — exercised directly by the test suite.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


class MovementQueueFullError(RuntimeError):
    """Raised when more in-flight movements exist than queue entries."""


@dataclass
class MovementQueueStats:
    enqueues: int = 0
    lookups: int = 0
    peak_occupancy: int = 0
    energy_pj: float = 0.0


class MovementQueue:
    """Bounded FIFO of lines in flight between ways."""

    def __init__(self, entries: int = 16, lookup_pj: float = 0.3) -> None:
        if entries < 1:
            raise ValueError("movement queue needs at least one entry")
        self.entries = entries
        self.lookup_pj = lookup_pj
        self._inflight: "OrderedDict[int, int]" = OrderedDict()
        self.stats = MovementQueueStats()

    def __len__(self) -> int:
        return len(self._inflight)

    def enqueue(self, line_addr: int, destination_way: int) -> None:
        if len(self._inflight) >= self.entries:
            raise MovementQueueFullError(
                f"movement queue overflow ({self.entries} entries)"
            )
        self._inflight[line_addr] = destination_way
        self.stats.enqueues += 1
        self.stats.peak_occupancy = max(
            self.stats.peak_occupancy, len(self._inflight)
        )

    def complete(self, line_addr: int) -> int:
        """The movement finished; returns the destination way."""
        way = self._inflight.pop(line_addr)
        self.stats.lookups += 1
        # Kept live: ``lookups`` counts probes as well as completions,
        # so the ledger cannot be re-derived from any event counter;
        # movements are rare enough that the accumulation is harmless.
        self.stats.energy_pj += self.lookup_pj  # slip-lint: disable=SLIP007
        return way

    def probe(self, line_addr: int) -> bool:
        """Lookup/invalidation path: is this line in flight?"""
        self.stats.lookups += 1
        return line_addr in self._inflight

    def invalidate(self, line_addr: int) -> bool:
        """Drop an in-flight line (invalidation hit the queue)."""
        if line_addr in self._inflight:
            del self._inflight[line_addr]
            return True
        return False
