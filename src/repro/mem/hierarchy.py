"""The multi-level memory hierarchy driver.

Wires L1 / L2 / L3 / DRAM together with per-level placement policies,
the TLB runtime (baseline or SLIP), and full energy/latency accounting.
The hierarchy is non-inclusive and write-back / write-allocate at L1;
writebacks are write-no-allocate at L2/L3 (they update a resident copy
or are forwarded onward). Metadata fetches triggered by TLB misses are
real accesses into L2/L3/DRAM at reserved page-table addresses, so the
metadata traffic of Figure 12 emerges from the same machinery as demand
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.invariants import maybe_install
from ..policies.base import PlacementPolicy
from ..policies.baseline import BaselinePlacement
from ..sim.config import SystemConfig, line_to_page_shift
from .cache import CacheLevel
from .dram import Dram
from .replacement import LruReplacement, ReplacementPolicy


@dataclass
class KernelDeclines:
    """Why each batched kernel last bypassed this hierarchy.

    One structured record for all vectorized kernels: ``replay`` covers
    both replay flavours (:mod:`repro.sim.vector_replay` and
    :mod:`repro.sim.vector_replay_slip`), ``frontend`` the capture
    kernel (:mod:`repro.sim.vector_frontend`). A field is ``None``
    after a successful kernel run (or before any attempt) and holds
    the decline reason string otherwise; all updates flow through
    :mod:`repro.sim.kernel_report`, which also aggregates process-wide
    counts for ``slip-experiments --kernel-report``.
    """

    replay: Optional[str] = None
    frontend: Optional[str] = None


@dataclass
class HierarchyCounters:
    """Cross-level counters not attributable to a single cache."""

    demand_accesses: int = 0
    l1_hits: int = 0
    dram_demand_reads: int = 0
    dram_metadata_reads: int = 0
    dram_writebacks: int = 0
    total_latency_cycles: int = 0

    @property
    def dram_reads(self) -> int:
        return self.dram_demand_reads + self.dram_metadata_reads


class MemoryHierarchy:
    """A single core's view of the cache hierarchy."""

    def __init__(
        self,
        config: SystemConfig,
        l2_placement: PlacementPolicy,
        l3_placement: PlacementPolicy,
        runtime,
        l2_replacement: Optional[ReplacementPolicy] = None,
        l3_replacement: Optional[ReplacementPolicy] = None,
        track_slip_metadata_energy: bool = False,
        shared_l3: Optional[Tuple[CacheLevel, PlacementPolicy]] = None,
    ) -> None:
        self.config = config
        self.runtime = runtime
        ts_bits = config.slip.timestamp_bits

        self.l1 = CacheLevel(config.l1, LruReplacement(),
                             timestamp_bits=ts_bits)
        self.l1_placement = BaselinePlacement()
        self.l1_placement.attach(self.l1)

        self.l2 = CacheLevel(
            config.l2, l2_replacement or LruReplacement(),
            track_metadata_energy=track_slip_metadata_energy,
            timestamp_bits=ts_bits,
        )
        self.l2_placement = l2_placement
        l2_placement.attach(self.l2)

        if shared_l3 is not None:
            self.l3, self.l3_placement = shared_l3
        else:
            self.l3 = CacheLevel(
                config.l3, l3_replacement or LruReplacement(),
                track_metadata_energy=track_slip_metadata_energy,
                timestamp_bits=ts_bits,
            )
            self.l3_placement = l3_placement
            l3_placement.attach(self.l3)

        self.dram = Dram(config.dram)
        self.counters = HierarchyCounters()
        # page number = line address >> log2(lines per page); the shift
        # is shared with trace footprint reporting via config.
        self._page_shift = line_to_page_shift(config.lines_per_page)
        # SimCheck: no-op unless REPRO_CHECK_INVARIANTS is set, in which
        # case conservation/consistency checkers wrap this hierarchy.
        self.simcheck = maybe_install(self, l3_shared=shared_l3 is not None)
        # Why the most recent kernel attempt (replay or front-end
        # capture) bypassed this hierarchy; updated through
        # repro.sim.kernel_report.record_decline / record_success.
        self.kernel_declines = KernelDeclines()
        # Inline L1 hit fast path: legal only when nothing observes the
        # individual accounting calls (SimCheck wraps record_hit on the
        # instance) and L1 runs the stock LRU stamp, which is all this
        # hierarchy ever builds but subclasses/tests may change.
        self._l1_fast = (
            self.simcheck is None
            and type(self.l1.replacement) is LruReplacement
            and not self.l1.track_metadata_energy
        )
        # Same idea below L1: with no SimCheck wrappers to observe the
        # accounting primitives, hit/miss/writeback bookkeeping for L2
        # and L3 is fused into _access_below_l1. The hit fast path
        # additionally needs the stock LRU recency stamp.
        self._unchecked = self.simcheck is None
        self._l2_hit_fast = self._unchecked and self.l2._plain_lru
        self._l3_hit_fast = self._unchecked and self.l3._plain_lru
        # Baseline placements never react to hits; skip the no-op call.
        self._l2_onhit_noop = \
            type(self.l2_placement).on_hit is PlacementPolicy.on_hit
        self._l3_onhit_noop = \
            type(self.l3_placement).on_hit is PlacementPolicy.on_hit
        # Deferred import: repro.core's __init__ transitively imports
        # repro.mem, so a module-level import here could close a cycle
        # mid-initialization depending on which package loads first.
        from ..core.runtime import BaselineRuntime, SlipRuntime
        pk = type(runtime).profile_key
        # When the profile key provably equals the page (baseline, or
        # SLIP at page grain), access() reuses the page it already
        # computed instead of a per-access method call.
        self._key_is_page = (
            pk is BaselineRuntime.profile_key
            or (pk is SlipRuntime.profile_key
                and runtime.block_shift is None)
        )

    # ------------------------------------------------------------------
    # Kernel decline record (flat aliases kept for existing callers)
    # ------------------------------------------------------------------
    @property
    def vector_replay_decline(self) -> Optional[str]:
        """Alias of ``kernel_declines.replay`` (the historical name)."""
        return self.kernel_declines.replay

    @vector_replay_decline.setter
    def vector_replay_decline(self, reason: Optional[str]) -> None:
        self.kernel_declines.replay = reason

    @property
    def vector_frontend_decline(self) -> Optional[str]:
        """Alias of ``kernel_declines.frontend``."""
        return self.kernel_declines.frontend

    @vector_frontend_decline.setter
    def vector_frontend_decline(self, reason: Optional[str]) -> None:
        self.kernel_declines.frontend = reason

    # ------------------------------------------------------------------
    def page_of(self, line_addr: int) -> int:
        return line_addr >> self._page_shift

    # ------------------------------------------------------------------
    # Public access entry point
    # ------------------------------------------------------------------
    # slip-audit: twin=l1-access role=fast
    def access(self, line_addr: int, is_write: bool = False) -> int:
        """One demand access; returns its total latency in cycles.

        The L1 leg lives directly in this method (rather than a helper
        per level as below L1): it runs once per simulated access and
        the call overhead alone is visible in profiles.
        """
        counters = self.counters
        counters.demand_accesses += 1
        page = line_addr >> self._page_shift
        runtime = self.runtime
        for metadata_addr in runtime.on_reference(page, line_addr):
            self._access_below_l1(metadata_addr, True, -1)
        # The profile key is the page by default, or the rd-block under
        # the Section 7 extension; all SLIP metadata is keyed by it.
        key = page if self._key_is_page \
            else runtime.profile_key(page, line_addr)

        l1 = self.l1
        # Advance L1's access counter T like L2/L3 do in
        # _access_below_l1; without this every L1 timestamp and
        # reuse distance reads as 0. (Inlined l1.tick().)
        l1.access_counter = (l1.access_counter + 1) % l1.timestamp_wrap
        set_idx = line_addr % l1.num_sets
        way = l1._index[set_idx].get(line_addr)
        if way is not None:
            counters.l1_hits += 1
            if self._l1_fast:
                # Fused record_hit for the dominant event of every
                # trace: L1 is uniform (sublevel 0 only), never tracks
                # metadata energy, and stamps recency with the stock
                # LRU clock.
                line = l1.sets[set_idx][way]
                line.hits += 1
                if is_write:
                    line.dirty = True
                stats = l1.stats
                stats.demand_hits += 1
                stats.hits_by_sublevel[0] += 1
                stats.read_events[0] += 1
                lru = l1.replacement
                lru._clock += 1
                line.lru = lru._clock
                latency = l1.latency_by_way[way]
            else:
                latency = l1.record_hit(set_idx, way, is_write)
            counters.total_latency_cycles += latency
            return latency
        if self._l1_fast:
            # Fused record_miss: L1 never sees metadata accesses and
            # never tracks metadata energy.
            l1.stats.demand_misses += 1
            latency = l1.cfg.latency_cycles
        else:
            latency = l1.record_miss()
        latency += self._access_below_l1(line_addr, False, key)
        # Allocate into L1 (write-allocate); dirty if this is a store —
        # the fill itself installs the dirty bit, no re-probe needed.
        outcome = self.l1_placement.fill(line_addr, key, is_write)
        for wb_addr in outcome.writebacks:
            self._writeback_below_l1(wb_addr)
        counters.total_latency_cycles += latency
        return latency

    # ------------------------------------------------------------------
    # slip-audit: twin=below-l1 role=fast
    def _access_below_l1(self, line_addr: int, is_metadata: bool,
                         page: int) -> int:
        """Access L2 -> L3 -> DRAM; fill missing levels on the way back.

        Runs once per L2-visible event (demand miss or metadata fetch),
        both in direct runs and in filtered replay, so the fused
        hit/miss accounting is inlined bodily: below L1 a demand hit is
        always a read (writes allocate at L1), the ``_l*_hit_fast``
        flags guarantee a stock LRU recency stamp, and metadata energy
        tracking (the SLIP levels) is a plain event-count bump. Under
        SimCheck the instance-method ``record_*`` calls are taken
        instead so the wrappers observe every event.
        """
        latency = 0
        runtime = self.runtime

        # ----- L2 ----- (tick and probe are inlined: SimCheck never
        # wraps them.)
        l2 = self.l2
        l2.access_counter = (l2.access_counter + 1) % l2.timestamp_wrap
        set_idx = line_addr % l2.num_sets
        way = l2._index[set_idx].get(line_addr)
        if way is not None:
            if self._l2_hit_fast:
                # Fused record_hit.
                line = l2.sets[set_idx][way]
                line.hits += 1
                stats = l2.stats
                if is_metadata:
                    stats.metadata_hits += 1
                else:
                    stats.demand_hits += 1
                sublevel = l2.sublevel_by_way[way]
                stats.hits_by_sublevel[sublevel] += 1
                stats.read_events[sublevel] += 1
                if l2.track_metadata_energy:
                    stats.metadata_events += 1
                lru = l2.replacement
                lru._clock += 1
                line.lru = lru._clock
                latency += l2.latency_by_way[way]
                if not self._l2_onhit_noop:
                    self.l2_placement.on_hit(set_idx, way)
            else:
                latency += l2.record_hit(set_idx, way, is_write=False,
                                         is_metadata=is_metadata)
                self.l2_placement.on_hit(set_idx, way)
            return latency
        if self._unchecked:
            # Fused record_miss.
            stats = l2.stats
            if is_metadata:
                stats.metadata_misses += 1
            else:
                stats.demand_misses += 1
            if l2.track_metadata_energy:
                stats.metadata_events += 1
            latency += l2.cfg.latency_cycles
        else:
            latency += l2.record_miss(is_metadata)
        if not is_metadata and runtime.slip_enabled:
            runtime.record_miss_sample("L2", page)

        # ----- L3 -----
        l3 = self.l3
        l3.access_counter = (l3.access_counter + 1) % l3.timestamp_wrap
        l3_set = line_addr % l3.num_sets
        l3_way = l3._index[l3_set].get(line_addr)
        l3_hit = l3_way is not None
        if l3_hit:
            if self._l3_hit_fast:
                # Fused record_hit.
                line = l3.sets[l3_set][l3_way]
                line.hits += 1
                stats = l3.stats
                if is_metadata:
                    stats.metadata_hits += 1
                else:
                    stats.demand_hits += 1
                sublevel = l3.sublevel_by_way[l3_way]
                stats.hits_by_sublevel[sublevel] += 1
                stats.read_events[sublevel] += 1
                if l3.track_metadata_energy:
                    stats.metadata_events += 1
                lru = l3.replacement
                lru._clock += 1
                line.lru = lru._clock
                latency += l3.latency_by_way[l3_way]
                if not self._l3_onhit_noop:
                    self.l3_placement.on_hit(l3_set, l3_way)
            else:
                latency += l3.record_hit(l3_set, l3_way, is_write=False,
                                         is_metadata=is_metadata)
                self.l3_placement.on_hit(l3_set, l3_way)
        else:
            if self._unchecked:
                # Fused record_miss.
                stats = l3.stats
                if is_metadata:
                    stats.metadata_misses += 1
                else:
                    stats.demand_misses += 1
                if l3.track_metadata_energy:
                    stats.metadata_events += 1
                latency += l3.cfg.latency_cycles
            else:
                latency += l3.record_miss(is_metadata)
            if not is_metadata and runtime.slip_enabled:
                runtime.record_miss_sample("L3", page)
            latency += self.dram.read()
            if is_metadata:
                self.counters.dram_metadata_reads += 1
            else:
                self.counters.dram_demand_reads += 1
            # Fill L3 (possibly bypassed by SLIP's ABP).
            outcome = self.l3_placement.fill(line_addr, page, False,
                                             is_metadata)
            for wb_addr in outcome.writebacks:
                self._writeback_to_dram(wb_addr)

        # Fill L2 on the way back (possibly bypassed).
        outcome = self.l2_placement.fill(line_addr, page, False,
                                         is_metadata)
        for wb_addr in outcome.writebacks:
            self._writeback_to_l3(wb_addr)
        return latency

    # ------------------------------------------------------------------
    # Writeback paths (write-no-allocate below the originating level)
    # ------------------------------------------------------------------
    # slip-audit: twin=wb-l2 role=fast
    def _writeback_below_l1(self, line_addr: int) -> None:
        l2 = self.l2
        l2.access_counter = (l2.access_counter + 1) % l2.timestamp_wrap
        set_idx = line_addr % l2.num_sets
        way = l2._index[set_idx].get(line_addr)
        if way is not None:
            if self._unchecked:
                l2.sets[set_idx][way].dirty = True
                stats = l2.stats
                stats.writebacks_in += 1
                stats.wb_in_events[l2.sublevel_by_way[way]] += 1
            else:
                l2.record_writeback_in(set_idx, way)
            return
        self._writeback_to_l3(line_addr)

    # slip-audit: twin=wb-l3 role=fast
    def _writeback_to_l3(self, line_addr: int) -> None:
        l3 = self.l3
        l3.access_counter = (l3.access_counter + 1) % l3.timestamp_wrap
        set_idx = line_addr % l3.num_sets
        way = l3._index[set_idx].get(line_addr)
        if way is not None:
            if self._unchecked:
                l3.sets[set_idx][way].dirty = True
                stats = l3.stats
                stats.writebacks_in += 1
                stats.wb_in_events[l3.sublevel_by_way[way]] += 1
            else:
                l3.record_writeback_in(set_idx, way)
            return
        self._writeback_to_dram(line_addr)

    def _writeback_to_dram(self, line_addr: int) -> None:
        self.dram.write()
        self.counters.dram_writebacks += 1

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero every counter while keeping cache/TLB/page state warm."""
        for level in self.levels:
            level.reset_stats()
        self.dram.stats = type(self.dram.stats)()
        self.counters = HierarchyCounters()
        self.runtime.tlb.stats = type(self.runtime.tlb.stats)()
        self.runtime.stats = type(self.runtime.stats)()
        if getattr(self.runtime, "slip_enabled", False):
            for eou in self.runtime.eous.values():
                eou.reset_stats()

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Record reuse statistics for lines still resident at the end.

        Also materializes the deferred energy counters, so everything
        downstream of a finished run reads final ``*_pj`` figures.
        """
        for level in (self.l1, self.l2, self.l3):
            for line in level.resident_lines():
                level.stats.record_reuse_count(line.hits)
        self.materialize_energy()

    def materialize_energy(self) -> None:
        """Fold each level's event counters into its energy breakdown.

        Idempotent (each call recomputes from the counters), so it is
        safe at every statistics boundary: finalize, collect_result,
        and SimCheck's periodic energy audit. DRAM energy is deferred
        the same way; EOU energy needs no folding — it is a property
        computed from the optimization count on every read.
        """
        for level in (self.l1, self.l2, self.l3):
            level.stats.materialize()
        self.dram.materialize_energy()

    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[CacheLevel]:
        return [self.l1, self.l2, self.l3]

    def invalidate(self, line_addr: int) -> None:
        """Invalidate a line everywhere, writing back dirty copies."""
        for level, forward in (
            (self.l1, self._writeback_below_l1),
            (self.l2, self._writeback_to_l3),
            (self.l3, self._writeback_to_dram),
        ):
            evicted = level.invalidate(line_addr)
            if evicted is not None and evicted.dirty:
                level.record_writeback_out(evicted.from_way)
                forward(line_addr)
