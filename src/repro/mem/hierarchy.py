"""The multi-level memory hierarchy driver.

Wires L1 / L2 / L3 / DRAM together with per-level placement policies,
the TLB runtime (baseline or SLIP), and full energy/latency accounting.
The hierarchy is non-inclusive and write-back / write-allocate at L1;
writebacks are write-no-allocate at L2/L3 (they update a resident copy
or are forwarded onward). Metadata fetches triggered by TLB misses are
real accesses into L2/L3/DRAM at reserved page-table addresses, so the
metadata traffic of Figure 12 emerges from the same machinery as demand
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.invariants import maybe_install
from ..policies.base import PlacementPolicy
from ..policies.baseline import BaselinePlacement
from ..sim.config import SystemConfig
from .cache import CacheLevel
from .dram import Dram
from .replacement import LruReplacement, ReplacementPolicy


@dataclass
class HierarchyCounters:
    """Cross-level counters not attributable to a single cache."""

    demand_accesses: int = 0
    l1_hits: int = 0
    dram_demand_reads: int = 0
    dram_metadata_reads: int = 0
    dram_writebacks: int = 0
    total_latency_cycles: int = 0

    @property
    def dram_reads(self) -> int:
        return self.dram_demand_reads + self.dram_metadata_reads


class MemoryHierarchy:
    """A single core's view of the cache hierarchy."""

    def __init__(
        self,
        config: SystemConfig,
        l2_placement: PlacementPolicy,
        l3_placement: PlacementPolicy,
        runtime,
        l2_replacement: Optional[ReplacementPolicy] = None,
        l3_replacement: Optional[ReplacementPolicy] = None,
        track_slip_metadata_energy: bool = False,
        shared_l3: Optional[Tuple[CacheLevel, PlacementPolicy]] = None,
    ) -> None:
        self.config = config
        self.runtime = runtime
        ts_bits = config.slip.timestamp_bits

        self.l1 = CacheLevel(config.l1, LruReplacement(),
                             timestamp_bits=ts_bits)
        self.l1_placement = BaselinePlacement()
        self.l1_placement.attach(self.l1)

        self.l2 = CacheLevel(
            config.l2, l2_replacement or LruReplacement(),
            track_metadata_energy=track_slip_metadata_energy,
            timestamp_bits=ts_bits,
        )
        self.l2_placement = l2_placement
        l2_placement.attach(self.l2)

        if shared_l3 is not None:
            self.l3, self.l3_placement = shared_l3
        else:
            self.l3 = CacheLevel(
                config.l3, l3_replacement or LruReplacement(),
                track_metadata_energy=track_slip_metadata_energy,
                timestamp_bits=ts_bits,
            )
            self.l3_placement = l3_placement
            l3_placement.attach(self.l3)

        self.dram = Dram(config.dram)
        self.counters = HierarchyCounters()
        # page number = line address >> log2(lines per page)
        shift, lines = 0, config.lines_per_page
        while (1 << shift) < lines:
            shift += 1
        self._page_shift = shift
        # SimCheck: no-op unless REPRO_CHECK_INVARIANTS is set, in which
        # case conservation/consistency checkers wrap this hierarchy.
        self.simcheck = maybe_install(self, l3_shared=shared_l3 is not None)

    # ------------------------------------------------------------------
    def page_of(self, line_addr: int) -> int:
        return line_addr >> self._page_shift

    # ------------------------------------------------------------------
    # Public access entry point
    # ------------------------------------------------------------------
    def access(self, line_addr: int, is_write: bool = False) -> int:
        """One demand access; returns its total latency in cycles."""
        self.counters.demand_accesses += 1
        page = self.page_of(line_addr)
        for metadata_addr in self.runtime.on_reference(page, line_addr):
            self._access_below_l1(metadata_addr, is_metadata=True, page=-1)
        # The profile key is the page by default, or the rd-block under
        # the Section 7 extension; all SLIP metadata is keyed by it.
        key = self.runtime.profile_key(page, line_addr)
        latency = self._demand_access(line_addr, is_write, key)
        self.counters.total_latency_cycles += latency
        return latency

    # ------------------------------------------------------------------
    def _demand_access(self, line_addr: int, is_write: bool,
                       page: int) -> int:
        # Advance L1's access counter T like L2/L3 do in
        # _access_below_l1; without this every L1 timestamp and
        # reuse distance reads as 0.
        self.l1.tick()
        set_idx, way = self.l1.probe(line_addr)
        if way is not None:
            self.counters.l1_hits += 1
            return self.l1.record_hit(set_idx, way, is_write)
        latency = self.l1.record_miss()
        latency += self._access_below_l1(line_addr, is_metadata=False,
                                         page=page)
        # Allocate into L1 (write-allocate); dirty if this is a store.
        outcome = self.l1_placement.fill(line_addr, page=page,
                                         dirty=is_write)
        for wb_addr in outcome.writebacks:
            self._writeback_below_l1(wb_addr)
        if is_write:
            l1_set, l1_way = self.l1.probe(line_addr)
            assert l1_way is not None
            self.l1.sets[l1_set][l1_way].dirty = True
        return latency

    # ------------------------------------------------------------------
    def _access_below_l1(self, line_addr: int, is_metadata: bool,
                         page: int) -> int:
        """Access L2 -> L3 -> DRAM; fill missing levels on the way back."""
        latency = 0

        # ----- L2 -----
        self.l2.tick()
        set_idx, way = self.l2.probe(line_addr)
        if way is not None:
            latency += self.l2.record_hit(set_idx, way, is_write=False,
                                          is_metadata=is_metadata)
            self.l2_placement.on_hit(set_idx, way)
            return latency
        latency += self.l2.record_miss(is_metadata)
        if not is_metadata and self.runtime.slip_enabled:
            self.runtime.record_miss_sample("L2", page)

        # ----- L3 -----
        self.l3.tick()
        l3_set, l3_way = self.l3.probe(line_addr)
        l3_hit = l3_way is not None
        if l3_hit:
            latency += self.l3.record_hit(l3_set, l3_way, is_write=False,
                                          is_metadata=is_metadata)
            self.l3_placement.on_hit(l3_set, l3_way)
        else:
            latency += self.l3.record_miss(is_metadata)
            if not is_metadata and self.runtime.slip_enabled:
                self.runtime.record_miss_sample("L3", page)
            latency += self.dram.read()
            if is_metadata:
                self.counters.dram_metadata_reads += 1
            else:
                self.counters.dram_demand_reads += 1
            # Fill L3 (possibly bypassed by SLIP's ABP).
            outcome = self.l3_placement.fill(
                line_addr, page=page, is_metadata=is_metadata
            )
            for wb_addr in outcome.writebacks:
                self._writeback_to_dram(wb_addr)

        # Fill L2 on the way back (possibly bypassed).
        outcome = self.l2_placement.fill(
            line_addr, page=page, is_metadata=is_metadata
        )
        for wb_addr in outcome.writebacks:
            self._writeback_to_l3(wb_addr)
        return latency

    # ------------------------------------------------------------------
    # Writeback paths (write-no-allocate below the originating level)
    # ------------------------------------------------------------------
    def _writeback_below_l1(self, line_addr: int) -> None:
        self.l2.tick()
        set_idx, way = self.l2.probe(line_addr)
        if way is not None:
            self.l2.record_writeback_in(set_idx, way)
            return
        self._writeback_to_l3(line_addr)

    def _writeback_to_l3(self, line_addr: int) -> None:
        self.l3.tick()
        set_idx, way = self.l3.probe(line_addr)
        if way is not None:
            self.l3.record_writeback_in(set_idx, way)
            return
        self._writeback_to_dram(line_addr)

    def _writeback_to_dram(self, line_addr: int) -> None:
        self.dram.write()
        self.counters.dram_writebacks += 1

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero every counter while keeping cache/TLB/page state warm."""
        for level in self.levels:
            level.reset_stats()
        self.dram.stats = type(self.dram.stats)()
        self.counters = HierarchyCounters()
        self.runtime.tlb.stats = type(self.runtime.tlb.stats)()
        self.runtime.stats = type(self.runtime.stats)()
        if getattr(self.runtime, "slip_enabled", False):
            for eou in self.runtime.eous.values():
                eou.stats = type(eou.stats)()

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Record reuse statistics for lines still resident at the end."""
        for level in (self.l1, self.l2, self.l3):
            for line in level.resident_lines():
                level.stats.record_reuse_count(line.hits)

    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[CacheLevel]:
        return [self.l1, self.l2, self.l3]

    def invalidate(self, line_addr: int) -> None:
        """Invalidate a line everywhere, writing back dirty copies."""
        for level, forward in (
            (self.l1, self._writeback_below_l1),
            (self.l2, self._writeback_to_l3),
            (self.l3, self._writeback_to_dram),
        ):
            evicted = level.invalidate(line_addr)
            if evicted is not None and evicted.dirty:
                level.record_writeback_out(evicted.from_way)
                forward(line_addr)
