"""Event and energy counters for cache levels and DRAM.

Energy accounting is *deferred*: the hot-path primitives only bump
integer event counters per (sublevel x event kind) on
:class:`LevelStats`; :meth:`LevelStats.materialize` computes each
``*_pj`` field once, as an exact ``math.fsum`` of count x table
products, at statistics boundaries (collect/reset/finalize and the
SimCheck energy audits). This removes millions of float adds from the
access kernel and makes the totals independent of accumulation order.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class EnergyBreakdown:
    """Per-level energy in picojoules, split by cause.

    Figure 11 of the paper groups these as *access* (``read_pj``) versus
    *movement* (``insertion_pj + movement_pj + writeback_pj``), with
    metadata and movement-queue overheads charged on top.
    """

    read_pj: float = 0.0
    insertion_pj: float = 0.0
    movement_pj: float = 0.0
    writeback_pj: float = 0.0
    metadata_pj: float = 0.0
    movement_queue_pj: float = 0.0
    eou_pj: float = 0.0

    def materialize(self, stats: "LevelStats",
                    read_table: Sequence[float],
                    write_table: Sequence[float],
                    metadata_pj: float) -> None:
        """Recompute the deferred fields from event counters.

        Idempotent by construction: every field is overwritten with
        ``fsum(count[s] * table[s])``, never accumulated into, so the
        SimCheck energy audit can call this on every check period.
        ``movement_queue_pj`` and ``eou_pj`` are not touched — the
        queue charge is a per-event float handed in by the placement
        policy, kept live because movements are rare.
        """
        # Imported here: repro.core.__init__ pulls the controller, which
        # imports mem.cache -> mem.stats; a module-level import back
        # into core would close that cycle mid-initialization.
        from ..core.energy_model import exact_dot

        self.read_pj = exact_dot(stats.read_events, read_table)
        self.insertion_pj = exact_dot(stats.insert_events, write_table)
        self.movement_pj = math.fsum(itertools.chain(
            (c * e for c, e in zip(stats.move_read_events, read_table)),
            (c * e for c, e in zip(stats.move_write_events, write_table)),
        ))
        self.writeback_pj = math.fsum(itertools.chain(
            (c * e for c, e in zip(stats.wb_in_events, write_table)),
            (c * e for c, e in zip(stats.wb_out_events, read_table)),
        ))
        self.metadata_pj = stats.metadata_events * metadata_pj

    @property
    def access_pj(self) -> float:
        return self.read_pj

    @property
    def move_total_pj(self) -> float:
        return self.insertion_pj + self.movement_pj + self.writeback_pj

    @property
    def total_pj(self) -> float:
        return (
            self.read_pj
            + self.insertion_pj
            + self.movement_pj
            + self.writeback_pj
            + self.metadata_pj
            + self.movement_queue_pj
            + self.eou_pj
        )

    def merged_with(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            read_pj=self.read_pj + other.read_pj,
            insertion_pj=self.insertion_pj + other.insertion_pj,
            movement_pj=self.movement_pj + other.movement_pj,
            writeback_pj=self.writeback_pj + other.writeback_pj,
            metadata_pj=self.metadata_pj + other.metadata_pj,
            movement_queue_pj=self.movement_queue_pj + other.movement_queue_pj,
            eou_pj=self.eou_pj + other.eou_pj,
        )


#: Histogram keys for small reuse counts; indexing a tuple beats a
#: ``str(hits)`` call on the per-departure path. Shared with the fused
#: baseline fill, which inlines record_reuse_count.
REUSE_KEYS = ("0", "1", "2")


@dataclass
class LevelStats:
    """Counters for one cache level."""

    name: str
    num_sublevels: int = 1
    demand_hits: int = 0
    demand_misses: int = 0
    metadata_hits: int = 0
    metadata_misses: int = 0
    hits_by_sublevel: List[int] = field(default_factory=list)
    insertions: int = 0
    bypasses: int = 0
    movements: int = 0
    writebacks_out: int = 0
    writebacks_in: int = 0
    #: Dirty lines a bypass policy refused to host, forwarded onward
    #: without a read-out; tracked so SimCheck's writeback-conservation
    #: invariant balances exactly.
    dirty_bypass_forwards: int = 0
    insertions_by_class: Dict[str, int] = field(default_factory=dict)
    reuse_histogram: Dict[str, int] = field(
        default_factory=lambda: {"0": 0, "1": 0, "2": 0, ">2": 0}
    )
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def __post_init__(self) -> None:
        if not self.hits_by_sublevel:
            self.hits_by_sublevel = [0] * self.num_sublevels
        for cls in ("abp", "partial_bypass", "default", "other"):
            self.insertions_by_class.setdefault(cls, 0)
        # Deferred-energy event counters, one slot per sublevel. Plain
        # attributes, not dataclass fields: ``asdict`` (and therefore
        # RunResult.to_dict) must keep emitting exactly the published
        # counters and the materialized EnergyBreakdown.
        n = self.num_sublevels
        self.read_events: List[int] = [0] * n
        self.insert_events: List[int] = [0] * n
        self.move_read_events: List[int] = [0] * n
        self.move_write_events: List[int] = [0] * n
        self.wb_in_events: List[int] = [0] * n
        self.wb_out_events: List[int] = [0] * n
        self.metadata_events: int = 0
        self._read_pj_table: Optional[Sequence[float]] = None
        self._write_pj_table: Optional[Sequence[float]] = None
        self._metadata_pj: float = 0.0

    def attach_energy_tables(self, read_pj_by_sublevel: Sequence[float],
                             write_pj_by_sublevel: Sequence[float],
                             metadata_pj: float) -> None:
        """Provide the per-sublevel energy values materialize() needs.

        Called by :class:`~repro.mem.cache.CacheLevel` whenever it
        creates a stats object; stats built without tables (unit tests,
        hand-rolled breakdowns) simply skip materialization.
        """
        self._read_pj_table = read_pj_by_sublevel
        self._write_pj_table = write_pj_by_sublevel
        self._metadata_pj = metadata_pj

    def materialize(self) -> "LevelStats":
        """Fold the event counters into ``energy``; returns self."""
        if self._read_pj_table is not None:
            self.energy.materialize(
                self, self._read_pj_table, self._write_pj_table,
                self._metadata_pj,
            )
        return self

    def adopt_counts(self, *, demand_hits: int, demand_misses: int,
                     metadata_hits: int, metadata_misses: int,
                     hits_by_sublevel: List[int],
                     insert_events: List[int],
                     move_read_events: List[int],
                     move_write_events: List[int],
                     wb_in_events: List[int],
                     wb_out_events: List[int],
                     reuse_histogram: Dict[str, int],
                     default_insertions: Optional[int] = None,
                     insertions_by_class: Optional[Dict[str, int]] = None,
                     bypasses: int = 0,
                     dirty_bypass_forwards: int = 0,
                     metadata_events: int = 0,
                     movement_queue_events: int = 0,
                     movement_queue_pj: float = 0.0) -> None:
        """Publish a batch-computed set of event counts into this stats.

        The merge hook for the vectorized kernels
        (:mod:`repro.sim.vector_replay`,
        :mod:`repro.sim.vector_replay_slip`, and the front-end capture
        kernel :mod:`repro.sim.vector_frontend`, which freezes its L1
        tallies through this path): a kernel tallies integer
        event counts per (sublevel x kind) and this method lands them on
        the exact fields the scalar hot path would have bumped, keeping
        the serialization contract (which fields ``asdict`` emits, which
        are derived) in one place. Derived totals are recomputed here;
        ``read_events`` mirrors ``hits_by_sublevel`` because every hit
        bumps both on the scalar path and no other read events exist for
        the eligible policies. The movement-queue charge is replayed as
        the same sequence of constant float additions the live path
        performs, so the accumulated value is bit-identical.

        Baseline-kind kernels pass ``default_insertions`` (every fill
        lands in the default class); the SLIP kernel passes the full
        ``insertions_by_class`` split plus the ABP ``bypasses`` /
        ``dirty_bypass_forwards`` counts and the derived
        ``metadata_events`` total. Exactly one of ``default_insertions``
        and ``insertions_by_class`` must be given.
        """
        self.demand_hits = demand_hits
        self.demand_misses = demand_misses
        self.metadata_hits = metadata_hits
        self.metadata_misses = metadata_misses
        self.hits_by_sublevel = list(hits_by_sublevel)
        self.read_events = list(hits_by_sublevel)
        self.insert_events = list(insert_events)
        self.move_read_events = list(move_read_events)
        self.move_write_events = list(move_write_events)
        self.wb_in_events = list(wb_in_events)
        self.wb_out_events = list(wb_out_events)
        self.insertions = sum(insert_events)
        self.movements = sum(move_read_events)
        self.writebacks_in = sum(wb_in_events)
        self.writebacks_out = sum(wb_out_events)
        self.bypasses = bypasses
        self.dirty_bypass_forwards = dirty_bypass_forwards
        self.metadata_events = metadata_events
        if (default_insertions is None) == (insertions_by_class is None):
            raise ValueError(
                "pass exactly one of default_insertions and "
                "insertions_by_class")
        if insertions_by_class is not None:
            for key, value in insertions_by_class.items():
                self.insertions_by_class[key] = value
        else:
            self.insertions_by_class["default"] = default_insertions
        for key, value in reuse_histogram.items():
            self.reuse_histogram[key] = value
        queue_pj = 0.0
        for _ in range(movement_queue_events):
            queue_pj += movement_queue_pj
        self.energy.movement_queue_pj = queue_pj

    @property
    def hits(self) -> int:
        return self.demand_hits + self.metadata_hits

    @property
    def misses(self) -> int:
        return self.demand_misses + self.metadata_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record_reuse_count(self, hits: int) -> None:
        """Count a line eviction by the number of hits it saw (Figure 1)."""
        if hits <= 2:
            self.reuse_histogram[REUSE_KEYS[hits]] += 1
        else:
            self.reuse_histogram[">2"] += 1

    def sublevel_access_fractions(self) -> List[float]:
        """Fraction of this level's hits served by each sublevel."""
        total = sum(self.hits_by_sublevel)
        if not total:
            return [0.0] * self.num_sublevels
        return [h / total for h in self.hits_by_sublevel]


@dataclass
class DramStats:
    """DRAM access counters."""

    reads: int = 0
    writes: int = 0
    energy_pj: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes
