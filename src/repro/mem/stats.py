"""Event and energy counters for cache levels and DRAM."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class EnergyBreakdown:
    """Per-level energy in picojoules, split by cause.

    Figure 11 of the paper groups these as *access* (``read_pj``) versus
    *movement* (``insertion_pj + movement_pj + writeback_pj``), with
    metadata and movement-queue overheads charged on top.
    """

    read_pj: float = 0.0
    insertion_pj: float = 0.0
    movement_pj: float = 0.0
    writeback_pj: float = 0.0
    metadata_pj: float = 0.0
    movement_queue_pj: float = 0.0
    eou_pj: float = 0.0

    @property
    def access_pj(self) -> float:
        return self.read_pj

    @property
    def move_total_pj(self) -> float:
        return self.insertion_pj + self.movement_pj + self.writeback_pj

    @property
    def total_pj(self) -> float:
        return (
            self.read_pj
            + self.insertion_pj
            + self.movement_pj
            + self.writeback_pj
            + self.metadata_pj
            + self.movement_queue_pj
            + self.eou_pj
        )

    def merged_with(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            read_pj=self.read_pj + other.read_pj,
            insertion_pj=self.insertion_pj + other.insertion_pj,
            movement_pj=self.movement_pj + other.movement_pj,
            writeback_pj=self.writeback_pj + other.writeback_pj,
            metadata_pj=self.metadata_pj + other.metadata_pj,
            movement_queue_pj=self.movement_queue_pj + other.movement_queue_pj,
            eou_pj=self.eou_pj + other.eou_pj,
        )


@dataclass
class LevelStats:
    """Counters for one cache level."""

    name: str
    num_sublevels: int = 1
    demand_hits: int = 0
    demand_misses: int = 0
    metadata_hits: int = 0
    metadata_misses: int = 0
    hits_by_sublevel: List[int] = field(default_factory=list)
    insertions: int = 0
    bypasses: int = 0
    movements: int = 0
    writebacks_out: int = 0
    writebacks_in: int = 0
    #: Dirty lines a bypass policy refused to host, forwarded onward
    #: without a read-out; tracked so SimCheck's writeback-conservation
    #: invariant balances exactly.
    dirty_bypass_forwards: int = 0
    insertions_by_class: Dict[str, int] = field(default_factory=dict)
    reuse_histogram: Dict[str, int] = field(
        default_factory=lambda: {"0": 0, "1": 0, "2": 0, ">2": 0}
    )
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def __post_init__(self) -> None:
        if not self.hits_by_sublevel:
            self.hits_by_sublevel = [0] * self.num_sublevels
        for cls in ("abp", "partial_bypass", "default", "other"):
            self.insertions_by_class.setdefault(cls, 0)

    @property
    def hits(self) -> int:
        return self.demand_hits + self.metadata_hits

    @property
    def misses(self) -> int:
        return self.demand_misses + self.metadata_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record_reuse_count(self, hits: int) -> None:
        """Count a line eviction by the number of hits it saw (Figure 1)."""
        if hits <= 2:
            self.reuse_histogram[str(hits)] += 1
        else:
            self.reuse_histogram[">2"] += 1

    def sublevel_access_fractions(self) -> List[float]:
        """Fraction of this level's hits served by each sublevel."""
        total = sum(self.hits_by_sublevel)
        if not total:
            return [0.0] * self.num_sublevels
        return [h / total for h in self.hits_by_sublevel]


@dataclass
class DramStats:
    """DRAM access counters."""

    reads: int = 0
    writes: int = 0
    energy_pj: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes
