"""A set-associative cache level with sublevel-aware accounting.

:class:`CacheLevel` holds the array state (tags, dirty bits, per-line
SLIP metadata) and exposes the primitives that placement policies build
on: probe, hit bookkeeping, victim selection restricted to a subset of
ways, extraction and placement of lines. Every primitive charges the
correct read/write energy for the sublevel of the way it touches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.config import CacheLevelConfig
from .replacement import ReplacementPolicy, ShipReplacement
from .stats import LevelStats

#: Sentinel chunk index for lines not managed by a SLIP.
NO_CHUNK = -1


class Line:
    """One cache line's state, including SLIP metadata.

    ``policy_id`` and ``chunk_idx`` realise the 6 b per-line policy copy
    and the position in that policy's chunk sequence; ``ts`` is the 6-bit
    timestamp ``TL`` used to measure reuse distances; ``hits`` counts
    reuses for Figure 1.
    """

    __slots__ = (
        "tag", "valid", "dirty", "lru", "policy_id", "chunk_idx", "ts",
        "demoted", "rrpv", "signature", "outcome", "hits", "page",
        "sampling", "is_metadata",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.lru = 0
        self.policy_id = 0
        self.chunk_idx = NO_CHUNK
        self.ts = 0
        self.demoted = False
        self.rrpv = 0
        self.signature = 0
        self.outcome = False
        self.hits = 0
        self.page = -1
        self.sampling = False
        self.is_metadata = False


class EvictedLine:
    """Snapshot of a line leaving a way, handed to the placement policy."""

    __slots__ = (
        "tag", "dirty", "policy_id", "chunk_idx", "ts", "hits", "page",
        "sampling", "demoted", "rrpv", "signature", "outcome", "is_metadata",
        "from_way", "lru",
    )

    def __init__(self, line: Line, from_way: int) -> None:
        self.lru = line.lru
        self.tag = line.tag
        self.dirty = line.dirty
        self.policy_id = line.policy_id
        self.chunk_idx = line.chunk_idx
        self.ts = line.ts
        self.hits = line.hits
        self.page = line.page
        self.sampling = line.sampling
        self.demoted = line.demoted
        self.rrpv = line.rrpv
        self.signature = line.signature
        self.outcome = line.outcome
        self.is_metadata = line.is_metadata
        self.from_way = from_way


class CacheLevel:
    """One level of the hierarchy (L1, L2 or L3)."""

    def __init__(self, cfg: CacheLevelConfig, replacement: ReplacementPolicy,
                 track_metadata_energy: bool = False,
                 timestamp_bits: int = 6) -> None:
        self.cfg = cfg
        self.replacement = replacement
        replacement.attach(self)
        self.track_metadata_energy = track_metadata_energy
        self.timestamp_bits = timestamp_bits
        # Exact-type check: subclasses (e.g. PEA's demoted-first LRU)
        # override victim selection and must not take the fast path.
        self._plain_lru = type(replacement).__name__ == "LruReplacement"
        # Rotating start offset for invalid-way allocation scans.
        self._alloc_rotor = 0
        self.sets: List[List[Line]] = [
            [Line() for _ in range(cfg.ways)] for _ in range(cfg.sets)
        ]
        # tag -> way index per set, kept in sync by every placement
        # primitive; makes probe O(1) instead of an associative scan.
        self._index: List[dict] = [{} for _ in range(cfg.sets)]
        self.stats = LevelStats(cfg.name, num_sublevels=cfg.num_sublevels)
        # Level access counter T; wraps every 4C accesses (Section 4.1).
        self.access_counter = 0
        self.timestamp_wrap = 4 * cfg.lines

    def reset_stats(self) -> None:
        """Zero all counters/energy while keeping the array state.

        Used at the end of a warmup phase, mirroring how the paper's
        SimPoint methodology excludes warmup from measurement.
        """
        self.stats = LevelStats(
            self.cfg.name, num_sublevels=self.cfg.num_sublevels
        )

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr % len(self.sets)

    def probe(self, line_addr: int) -> Tuple[int, Optional[int]]:
        """Locate a line without side effects. Returns (set, way|None)."""
        set_idx = line_addr % len(self.sets)
        return set_idx, self._index[set_idx].get(line_addr)

    def tick(self) -> int:
        """Advance and return the level access counter T."""
        self.access_counter = (self.access_counter + 1) % self.timestamp_wrap
        return self.access_counter

    # ------------------------------------------------------------------
    # Timestamps for reuse-distance measurement (Section 4.1)
    # ------------------------------------------------------------------
    def _timestamp_granule(self) -> int:
        """Accesses per timestamp increment, floored at 1.

        Tiny configs (``timestamp_wrap < 2**timestamp_bits``, i.e. a
        level with fewer than ``2**timestamp_bits / 4`` lines) would
        otherwise shift the granule to 0 and divide by zero; a 1-access
        granule just means the stamp has more resolution than needed.
        """
        return max(1, self.timestamp_wrap >> self.timestamp_bits)

    def timestamp_now(self) -> int:
        """The ``timestamp_bits`` MSBs of the level access counter."""
        granule = self._timestamp_granule()
        return (self.access_counter // granule) % (1 << self.timestamp_bits)

    def reuse_distance(self, line_ts: int) -> int:
        """Approximate reuse distance, in lines, from a stored timestamp.

        The wrap-around subtraction mirrors the hardware: a line whose
        timestamp is older than one full wrap aliases to a shorter
        distance, which is the accepted imprecision of a 6-bit stamp.
        """
        span = 1 << self.timestamp_bits
        delta = (self.timestamp_now() - line_ts) % span
        return delta * self._timestamp_granule()

    # ------------------------------------------------------------------
    # Access primitives (with energy accounting)
    # ------------------------------------------------------------------
    def record_hit(self, set_idx: int, way: int, is_write: bool,
                   is_metadata: bool = False) -> int:
        """Account a demand/metadata hit; returns the hit latency."""
        line = self.sets[set_idx][way]
        line.hits += 1
        if is_write:
            line.dirty = True
        if is_metadata:
            self.stats.metadata_hits += 1
        else:
            self.stats.demand_hits += 1
        sublevel = self.cfg.sublevel_of_way(way)
        self.stats.hits_by_sublevel[sublevel] += 1
        self.stats.energy.read_pj += self.cfg.read_energy_pj(way)
        if self.track_metadata_energy:
            self.stats.energy.metadata_pj += self.cfg.metadata_energy_pj
        self.replacement.on_hit(set_idx, way, line)
        return self.cfg.latency_of_way(way)

    def record_miss(self, is_metadata: bool = False) -> int:
        """Account a miss; returns the miss-probe latency."""
        if is_metadata:
            self.stats.metadata_misses += 1
        else:
            self.stats.demand_misses += 1
        if self.track_metadata_energy:
            self.stats.energy.metadata_pj += self.cfg.metadata_energy_pj
        return self.cfg.latency_cycles

    # ------------------------------------------------------------------
    # Placement primitives
    # ------------------------------------------------------------------
    def find_invalid_way(self, set_idx: int,
                         candidate_ways: Sequence[int]) -> Optional[int]:
        lines = self.sets[set_idx]
        for way in candidate_ways:
            if not lines[way].valid:
                return way
        return None

    def choose_victim(self, set_idx: int,
                      candidate_ways: Sequence[int]) -> int:
        """Pick a way to vacate: invalid first, else ask replacement.

        The scan for an invalid way starts at a rotating offset: always
        starting at way 0 would fill cold sets lowest-way-first, piling
        recently-inserted (most reusable) lines into sublevel 0 and
        biasing the baseline's sublevel access fractions — real designs
        allocate pseudo-randomly among invalid ways.
        """
        lines = self.sets[set_idx]
        n = len(candidate_ways)
        self._alloc_rotor = (self._alloc_rotor + 1) % 64
        rotor = self._alloc_rotor % n
        if self._plain_lru:
            # Fused invalid + min-LRU scan; one pass, rotated start.
            best_way, best_lru = -1, None
            for i in range(n):
                way = candidate_ways[(i + rotor) % n]
                line = lines[way]
                if not line.valid:
                    return way
                if best_lru is None or line.lru < best_lru:
                    best_way, best_lru = way, line.lru
            return best_way
        for i in range(n):
            way = candidate_ways[(i + rotor) % n]
            if not lines[way].valid:
                return way
        return self.replacement.choose_victim(
            set_idx, candidate_ways, lines
        )

    def extract(self, set_idx: int, way: int) -> Optional[EvictedLine]:
        """Remove and return the line at (set, way); None if invalid.

        Extraction alone is neutral: the caller either re-places the
        line (a movement) or calls :meth:`record_departure` when the
        line truly leaves the level.
        """
        line = self.sets[set_idx][way]
        if not line.valid:
            return None
        evicted = EvictedLine(line, way)
        del self._index[set_idx][line.tag]
        line.reset()
        return evicted

    def record_departure(self, evicted: EvictedLine) -> None:
        """Bookkeeping for a line that left the level for good."""
        self.stats.record_reuse_count(evicted.hits)
        if isinstance(self.replacement, ShipReplacement):
            self.replacement.on_evict(evicted)

    def place_fill(self, set_idx: int, way: int, line_addr: int, *,
                   dirty: bool = False, policy_id: int = 0,
                   chunk_idx: int = NO_CHUNK, page: int = -1,
                   sampling: bool = False, is_metadata: bool = False,
                   timestamp: int = 0) -> None:
        """Install a brand-new line (fetched from the next level)."""
        line = self.sets[set_idx][way]
        if line.valid:
            raise RuntimeError("place_fill into a valid way; extract first")
        line.valid = True
        line.tag = line_addr
        self._index[set_idx][line_addr] = way
        line.dirty = dirty
        line.policy_id = policy_id
        line.chunk_idx = chunk_idx
        line.page = page
        line.sampling = sampling
        line.is_metadata = is_metadata
        line.ts = timestamp
        line.hits = 0
        self.stats.insertions += 1
        self.stats.energy.insertion_pj += self.cfg.write_energy_pj(way)
        if self.track_metadata_energy:
            self.stats.energy.metadata_pj += self.cfg.metadata_energy_pj
        self.replacement.on_fill(set_idx, way, line)

    def place_moved(self, set_idx: int, way: int,
                    moved: EvictedLine, new_chunk_idx: int,
                    movement_queue_pj: float = 0.0,
                    demoted: bool = True) -> None:
        """Install a line moved from another way of the same set."""
        line = self.sets[set_idx][way]
        if line.valid:
            raise RuntimeError("place_moved into a valid way; extract first")
        line.valid = True
        line.tag = moved.tag
        self._index[set_idx][moved.tag] = way
        line.dirty = moved.dirty
        line.policy_id = moved.policy_id
        line.chunk_idx = new_chunk_idx
        line.ts = moved.ts
        line.hits = moved.hits
        line.page = moved.page
        line.sampling = moved.sampling
        line.demoted = demoted
        line.lru = moved.lru
        line.rrpv = moved.rrpv
        line.signature = moved.signature
        line.outcome = moved.outcome
        line.is_metadata = moved.is_metadata
        self.stats.movements += 1
        # A movement reads the source way and writes the destination way.
        self.stats.energy.movement_pj += (
            self.cfg.read_energy_pj(moved.from_way)
            + self.cfg.write_energy_pj(way)
        )
        self.stats.energy.movement_queue_pj += movement_queue_pj
        self.replacement.on_move_in(set_idx, way, line)

    def record_writeback_in(self, set_idx: int, way: int) -> None:
        """An incoming writeback updates a resident line in place.

        Writeback updates do not refresh recency: they are not demand
        reuse, and promoting on them would distort the replacement order.
        """
        line = self.sets[set_idx][way]
        line.dirty = True
        self.stats.writebacks_in += 1
        self.stats.energy.writeback_pj += self.cfg.write_energy_pj(way)

    def record_writeback_out(self, from_way: int) -> None:
        """Charge the read of a dirty line leaving this level."""
        self.stats.writebacks_out += 1
        self.stats.energy.writeback_pj += self.cfg.read_energy_pj(from_way)

    def record_bypass(self, slip_class: str = "abp",
                      dirty: bool = False) -> None:
        self.stats.bypasses += 1
        self.stats.insertions_by_class[slip_class] += 1
        if dirty:
            self.stats.dirty_bypass_forwards += 1

    # ------------------------------------------------------------------
    # Invalidation (coherence / multi-level consistency)
    # ------------------------------------------------------------------
    def invalidate(self, line_addr: int) -> Optional[EvictedLine]:
        """Invalidate a line if present; returns its snapshot if dirty."""
        set_idx, way = self.probe(line_addr)
        if way is None:
            return None
        evicted = self.extract(set_idx, way)
        if evicted is not None:
            self.record_departure(evicted)
        return evicted

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[Line]:
        return [
            line for line_set in self.sets for line in line_set if line.valid
        ]

    def occupancy(self) -> float:
        return len(self.resident_lines()) / self.cfg.lines
