"""A set-associative cache level with sublevel-aware accounting.

:class:`CacheLevel` holds the array state (tags, dirty bits, per-line
SLIP metadata) and exposes the primitives that placement policies build
on: probe, hit bookkeeping, victim selection restricted to a subset of
ways, extraction and placement of lines. Every primitive charges the
correct read/write energy for the sublevel of the way it touches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.config import CacheLevelConfig
from .replacement import ReplacementPolicy, ShipReplacement
from .stats import LevelStats

#: Sentinel chunk index for lines not managed by a SLIP.
NO_CHUNK = -1


class Line:
    """One cache line's state, including SLIP metadata.

    ``policy_id`` and ``chunk_idx`` realise the 6 b per-line policy copy
    and the position in that policy's chunk sequence; ``ts`` is the 6-bit
    timestamp ``TL`` used to measure reuse distances; ``hits`` counts
    reuses for Figure 1.
    """

    __slots__ = (
        "tag", "valid", "dirty", "lru", "policy_id", "chunk_idx", "ts",
        "demoted", "rrpv", "signature", "outcome", "hits", "page",
        "sampling", "is_metadata",
    )

    def reset(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.lru = 0
        self.policy_id = 0
        self.chunk_idx = NO_CHUNK
        self.ts = 0
        self.demoted = False
        self.rrpv = 0
        self.signature = 0
        self.outcome = False
        self.hits = 0
        self.page = -1
        self.sampling = False
        self.is_metadata = False

    def __init__(self) -> None:
        """Minimal construction: a hierarchy allocates tens of
        thousands of lines, so only the slots a fill does NOT write are
        initialized here — ``valid`` (every reader's guard), plus the
        replacement-state slots that victim selection may read on a
        direct call (``lru``/``rrpv``/``demoted``) and the SHiP
        feedback pair. Every remaining slot is written by
        place_fill/place_moved/the fused baseline fill before the line
        becomes readable (``valid=True``), and :meth:`reset` restores
        all of them on extraction.
        """
        self.valid = False
        self.lru = 0
        self.demoted = False
        self.rrpv = 0
        self.signature = 0
        self.outcome = False


#: The shared never-valid line every way aliases until its first fill.
#: Install sites must materialize a real Line (``line is INVALID_LINE``
#: identity check) before writing; readers only ever consult the slots
#: ``Line.__init__`` sets on an invalid line, so aliasing is invisible
#: to victim scans, probes and invariant sweeps.
INVALID_LINE = Line()


class EvictedLine:
    """Snapshot of a line leaving a way, handed to the placement policy."""

    __slots__ = (
        "tag", "dirty", "policy_id", "chunk_idx", "ts", "hits", "page",
        "sampling", "demoted", "rrpv", "signature", "outcome", "is_metadata",
        "from_way", "lru",
    )

    def __init__(self, line: Line, from_way: int) -> None:
        self.lru = line.lru
        self.tag = line.tag
        self.dirty = line.dirty
        self.policy_id = line.policy_id
        self.chunk_idx = line.chunk_idx
        self.ts = line.ts
        self.hits = line.hits
        self.page = line.page
        self.sampling = line.sampling
        self.demoted = line.demoted
        self.rrpv = line.rrpv
        self.signature = line.signature
        self.outcome = line.outcome
        self.is_metadata = line.is_metadata
        self.from_way = from_way


class CacheLevel:
    """One level of the hierarchy (L1, L2 or L3)."""

    def __init__(self, cfg: CacheLevelConfig, replacement: ReplacementPolicy,
                 track_metadata_energy: bool = False,
                 timestamp_bits: int = 6) -> None:
        self.cfg = cfg
        self.replacement = replacement
        replacement.attach(self)
        self.track_metadata_energy = track_metadata_energy
        self.timestamp_bits = timestamp_bits
        # Exact-type check: subclasses (e.g. PEA's demoted-first LRU)
        # override victim selection and must not take the fast path.
        self._plain_lru = type(replacement).__name__ == "LruReplacement"
        # Bound once: only SHiP wants eviction-outcome feedback, and an
        # isinstance per departure is measurable on the fill path.
        self._ship_on_evict = (replacement.on_evict
                               if isinstance(replacement, ShipReplacement)
                               else None)
        # May BaselinePlacement use its fused fill on this level? True
        # for stock LRU with nothing observing the placement
        # primitives; SimCheck clears it when it wraps this level.
        self._fast_fill = self._plain_lru
        # Rotating start offset for invalid-way allocation scans.
        self._alloc_rotor = 0
        self.num_sets = cfg.sets
        # Lazy line materialization: every way starts aliased to the
        # shared INVALID_LINE sentinel (a hierarchy allocates tens of
        # thousands of lines, most of which a short run never fills —
        # L3 especially). The install sites (place_fill/place_moved and
        # the fused fills) swap in a real Line on first use; nothing
        # else ever mutates an invalid line, so the sentinel stays
        # pristine. Each row is still a distinct list (slots are
        # replaced in place).
        self.sets: List[List[Line]] = [
            [INVALID_LINE] * cfg.ways for _ in range(cfg.sets)
        ]
        # tag -> way index per set, kept in sync by every placement
        # primitive; makes probe O(1) instead of an associative scan.
        self._index: List[dict] = [{} for _ in range(cfg.sets)]
        #: Valid lines in the array; maintained by place/extract so
        #: occupancy() never rescans the whole array.
        self.valid_count = 0
        # Flat per-way lookup tables (hot path): no sublevel rescans.
        self.sublevel_by_way: List[int] = list(cfg.way_sublevels)
        self.read_pj_by_way: List[float] = list(cfg.way_read_energies_pj)
        # Writes drive the same wires/bitlines as reads (see config).
        self.write_pj_by_way: List[float] = list(cfg.way_read_energies_pj)
        self.latency_by_way: List[int] = list(cfg.way_latencies)
        self.stats = self._new_stats()
        # Level access counter T; wraps every 4C accesses (Section 4.1).
        self.access_counter = 0
        self.timestamp_wrap = 4 * cfg.lines
        # Accesses per timestamp increment; constant for the level's
        # lifetime (timestamp_wrap never changes), so computed once.
        self._granule = max(1, self.timestamp_wrap >> timestamp_bits)
        # 2**timestamp_bits is a power of two, so "% span" == "& mask".
        self._ts_mask = (1 << timestamp_bits) - 1

    def _new_stats(self) -> LevelStats:
        stats = LevelStats(self.cfg.name,
                           num_sublevels=self.cfg.num_sublevels)
        stats.attach_energy_tables(
            self.cfg.sublevel_read_energies_pj,
            self.cfg.sublevel_read_energies_pj,
            self.cfg.metadata_energy_pj,
        )
        return stats

    def reset_stats(self) -> None:
        """Zero all counters/energy while keeping the array state.

        Used at the end of a warmup phase, mirroring how the paper's
        SimPoint methodology excludes warmup from measurement. The
        outgoing stats are materialized first so any caller still
        holding them sees final energies rather than zeros.
        """
        self.stats.materialize()
        self.stats = self._new_stats()

    def materialize_energy(self) -> LevelStats:
        """Fold deferred event counters into published energies."""
        return self.stats.materialize()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def probe(self, line_addr: int) -> Tuple[int, Optional[int]]:
        """Locate a line without side effects. Returns (set, way|None)."""
        set_idx = line_addr % self.num_sets
        return set_idx, self._index[set_idx].get(line_addr)

    def tick(self) -> int:
        """Advance and return the level access counter T."""
        self.access_counter = (self.access_counter + 1) % self.timestamp_wrap
        return self.access_counter

    # ------------------------------------------------------------------
    # Timestamps for reuse-distance measurement (Section 4.1)
    # ------------------------------------------------------------------
    def _timestamp_granule(self) -> int:
        """Accesses per timestamp increment, floored at 1.

        Tiny configs (``timestamp_wrap < 2**timestamp_bits``, i.e. a
        level with fewer than ``2**timestamp_bits / 4`` lines) would
        otherwise shift the granule to 0 and divide by zero; a 1-access
        granule just means the stamp has more resolution than needed.
        Cached at construction — ``timestamp_wrap`` is fixed per level.
        """
        return self._granule

    def timestamp_now(self) -> int:
        """The ``timestamp_bits`` MSBs of the level access counter."""
        return (self.access_counter // self._granule) & self._ts_mask

    def reuse_distance(self, line_ts: int) -> int:
        """Approximate reuse distance, in lines, from a stored timestamp.

        The wrap-around subtraction mirrors the hardware: a line whose
        timestamp is older than one full wrap aliases to a shorter
        distance, which is the accepted imprecision of a 6-bit stamp.
        """
        delta = (self.timestamp_now() - line_ts) & self._ts_mask
        return delta * self._granule

    # ------------------------------------------------------------------
    # Access primitives (with energy accounting)
    # ------------------------------------------------------------------
    # slip-audit: twin=l1-access role=ref
    # slip-audit: twin=below-l1 role=ref
    def record_hit(self, set_idx: int, way: int, is_write: bool,
                   is_metadata: bool = False) -> int:
        """Account a demand/metadata hit; returns the hit latency."""
        line = self.sets[set_idx][way]
        line.hits += 1
        if is_write:
            line.dirty = True
        stats = self.stats
        if is_metadata:
            stats.metadata_hits += 1
        else:
            stats.demand_hits += 1
        sublevel = self.sublevel_by_way[way]
        stats.hits_by_sublevel[sublevel] += 1
        stats.read_events[sublevel] += 1
        if self.track_metadata_energy:
            stats.metadata_events += 1
        if self._plain_lru:
            # Inlined LruReplacement.on_hit (_stamp), as in place_fill.
            replacement = self.replacement
            replacement._clock += 1
            line.lru = replacement._clock
        else:
            self.replacement.on_hit(set_idx, way, line)
        return self.latency_by_way[way]

    # slip-audit: twin=l1-access role=ref
    # slip-audit: twin=below-l1 role=ref
    def record_miss(self, is_metadata: bool = False) -> int:
        """Account a miss; returns the miss-probe latency."""
        stats = self.stats
        if is_metadata:
            stats.metadata_misses += 1
        else:
            stats.demand_misses += 1
        if self.track_metadata_energy:
            stats.metadata_events += 1
        return self.cfg.latency_cycles

    # ------------------------------------------------------------------
    # Placement primitives
    # ------------------------------------------------------------------
    def find_invalid_way(self, set_idx: int,
                         candidate_ways: Sequence[int]) -> Optional[int]:
        lines = self.sets[set_idx]
        for way in candidate_ways:
            if not lines[way].valid:
                return way
        return None

    def choose_victim(self, set_idx: int,
                      candidate_ways: Sequence[int]) -> int:
        """Pick a way to vacate: invalid first, else ask replacement.

        The scan for an invalid way starts at a rotating offset: always
        starting at way 0 would fill cold sets lowest-way-first, piling
        recently-inserted (most reusable) lines into sublevel 0 and
        biasing the baseline's sublevel access fractions — real designs
        allocate pseudo-randomly among invalid ways.
        """
        lines = self.sets[set_idx]
        n = len(candidate_ways)
        self._alloc_rotor = rotor = (self._alloc_rotor + 1) % 64
        rotor %= n
        # Rotate by slicing once instead of taking (i + rotor) % n per
        # way: same visit order, no per-iteration modulo.
        if rotor:
            ordered = [*candidate_ways[rotor:], *candidate_ways[:rotor]]
        else:
            ordered = candidate_ways
        if self._plain_lru:
            # Fused invalid + min-LRU scan; one pass, rotated start.
            # inf as the initial floor keeps the loop branch simple
            # (every real LRU stamp is a finite int).
            best_way, best_lru = -1, float("inf")
            for way in ordered:
                line = lines[way]
                if not line.valid:
                    return way
                lru = line.lru
                if lru < best_lru:
                    best_way, best_lru = way, lru
            return best_way
        for way in ordered:
            if not lines[way].valid:
                return way
        return self.replacement.choose_victim(
            set_idx, candidate_ways, lines
        )

    def extract(self, set_idx: int, way: int) -> Optional[EvictedLine]:
        """Remove and return the line at (set, way); None if invalid.

        Extraction alone is neutral: the caller either re-places the
        line (a movement) or calls :meth:`record_departure` when the
        line truly leaves the level.
        """
        line = self.sets[set_idx][way]
        if not line.valid:
            return None
        evicted = EvictedLine(line, way)
        del self._index[set_idx][line.tag]
        line.reset()
        self.valid_count -= 1
        return evicted

    def record_departure(self, evicted: EvictedLine) -> None:
        """Bookkeeping for a line that left the level for good."""
        self.stats.record_reuse_count(evicted.hits)
        if self._ship_on_evict is not None:
            self._ship_on_evict(evicted)

    def place_fill(self, set_idx: int, way: int, line_addr: int, *,
                   dirty: bool = False, policy_id: int = 0,
                   chunk_idx: int = NO_CHUNK, page: int = -1,
                   sampling: bool = False, is_metadata: bool = False,
                   timestamp: int = 0) -> None:
        """Install a brand-new line (fetched from the next level)."""
        line = self.sets[set_idx][way]
        if line.valid:
            raise RuntimeError("place_fill into a valid way; extract first")
        if line is INVALID_LINE:
            line = self.sets[set_idx][way] = Line()
        line.valid = True
        line.tag = line_addr
        self._index[set_idx][line_addr] = way
        line.dirty = dirty
        line.policy_id = policy_id
        line.chunk_idx = chunk_idx
        line.page = page
        line.sampling = sampling
        line.is_metadata = is_metadata
        line.ts = timestamp
        line.hits = 0
        self.valid_count += 1
        stats = self.stats
        stats.insertions += 1
        stats.insert_events[self.sublevel_by_way[way]] += 1
        if self.track_metadata_energy:
            stats.metadata_events += 1
        if self._plain_lru:
            # Inlined LruReplacement.on_fill (_stamp): one call frame
            # saved per insertion on the hottest placement primitive.
            replacement = self.replacement
            replacement._clock += 1
            line.lru = replacement._clock
        else:
            self.replacement.on_fill(set_idx, way, line)

    def place_moved(self, set_idx: int, way: int,
                    moved: EvictedLine, new_chunk_idx: int,
                    movement_queue_pj: float = 0.0,
                    demoted: bool = True) -> None:
        """Install a line moved from another way of the same set."""
        line = self.sets[set_idx][way]
        if line.valid:
            raise RuntimeError("place_moved into a valid way; extract first")
        if line is INVALID_LINE:
            line = self.sets[set_idx][way] = Line()
        line.valid = True
        line.tag = moved.tag
        self._index[set_idx][moved.tag] = way
        line.dirty = moved.dirty
        line.policy_id = moved.policy_id
        line.chunk_idx = new_chunk_idx
        line.ts = moved.ts
        line.hits = moved.hits
        line.page = moved.page
        line.sampling = moved.sampling
        line.demoted = demoted
        line.lru = moved.lru
        line.rrpv = moved.rrpv
        line.signature = moved.signature
        line.outcome = moved.outcome
        line.is_metadata = moved.is_metadata
        self.valid_count += 1
        stats = self.stats
        stats.movements += 1
        # A movement reads the source way and writes the destination way.
        stats.move_read_events[self.sublevel_by_way[moved.from_way]] += 1
        stats.move_write_events[self.sublevel_by_way[way]] += 1
        # Kept live: the queue charge is an arbitrary per-event float
        # from the placement policy, and movements are rare. Deferring
        # it to an event count would also change accumulated-vs-product
        # rounding and break golden byte-identity for no hot-path win.
        stats.energy.movement_queue_pj += movement_queue_pj  # slip-lint: disable=SLIP007
        self.replacement.on_move_in(set_idx, way, line)

    # slip-audit: twin=wb-l2 role=ref
    # slip-audit: twin=wb-l3 role=ref
    def record_writeback_in(self, set_idx: int, way: int) -> None:
        """An incoming writeback updates a resident line in place.

        Writeback updates do not refresh recency: they are not demand
        reuse, and promoting on them would distort the replacement order.
        """
        line = self.sets[set_idx][way]
        line.dirty = True
        self.stats.writebacks_in += 1
        self.stats.wb_in_events[self.sublevel_by_way[way]] += 1

    def record_writeback_out(self, from_way: int) -> None:
        """Charge the read of a dirty line leaving this level."""
        self.stats.writebacks_out += 1
        self.stats.wb_out_events[self.sublevel_by_way[from_way]] += 1

    def record_bypass(self, slip_class: str = "abp",
                      dirty: bool = False) -> None:
        self.stats.bypasses += 1
        self.stats.insertions_by_class[slip_class] += 1
        if dirty:
            self.stats.dirty_bypass_forwards += 1

    # ------------------------------------------------------------------
    # Invalidation (coherence / multi-level consistency)
    # ------------------------------------------------------------------
    def invalidate(self, line_addr: int) -> Optional[EvictedLine]:
        """Invalidate a line if present; returns its snapshot if dirty."""
        set_idx, way = self.probe(line_addr)
        if way is None:
            return None
        evicted = self.extract(set_idx, way)
        if evicted is not None:
            self.record_departure(evicted)
        return evicted

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[Line]:
        """Valid lines, via the per-set probe indices.

        O(resident) instead of O(capacity): cold sets contribute
        nothing, and finalize() on a short run no longer scans every
        way of every set.
        """
        sets = self.sets
        return [
            sets[set_idx][way]
            for set_idx, index in enumerate(self._index)
            for way in index.values()
        ]

    def occupancy(self) -> float:
        return self.valid_count / self.cfg.lines
