"""repro — a reproduction of *SLIP: Reducing Wire Energy in the Memory
Hierarchy* (Das, Aamodt, Dally; ISCA 2015).

The package provides:

* :mod:`repro.core` — the SLIP policies, reuse-distance distributions,
  the analytical energy model (Eq. 1-5) and the Energy Optimizer Unit;
* :mod:`repro.mem` — the cache/TLB/DRAM substrate the policies run on;
* :mod:`repro.topology` — wire-geometry energy models (Table 2);
* :mod:`repro.policies` — the baseline, NuRAPID and LRU-PEA comparators;
* :mod:`repro.workloads` — synthetic SPEC-CPU2006 benchmark analogs;
* :mod:`repro.sim` — configuration (Tables 1-2) and simulation drivers;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import run_policy_sweep

    results = run_policy_sweep("soplex", ["baseline", "slip_abp"])
    base, slip = results["baseline"], results["slip_abp"]
    print(f"L2 energy saved: {slip.energy_savings_over(base, 'L2'):.1%}")
"""

from .core.distribution import ReuseDistanceDistribution
from .core.energy_model import LevelEnergyParams, SlipEnergyModel
from .core.eou import EnergyOptimizerUnit
from .core.policy import Slip, SlipSpace, abp_slip, default_slip, enumerate_slips
from .sim.build import POLICY_NAMES, build_hierarchy
from .sim.config import (
    CacheLevelConfig,
    DramConfig,
    SlipParams,
    SystemConfig,
    default_system,
)
from .sim.multi_core import run_mix
from .sim.results import RunResult
from .sim.single_core import run_benchmark, run_policy_sweep, run_trace
from .workloads.benchmarks import BENCHMARKS, SPEC_ORDER, make_trace

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "CacheLevelConfig",
    "DramConfig",
    "EnergyOptimizerUnit",
    "LevelEnergyParams",
    "POLICY_NAMES",
    "ReuseDistanceDistribution",
    "RunResult",
    "SPEC_ORDER",
    "Slip",
    "SlipEnergyModel",
    "SlipParams",
    "SlipSpace",
    "SystemConfig",
    "abp_slip",
    "build_hierarchy",
    "default_slip",
    "default_system",
    "enumerate_slips",
    "make_trace",
    "run_benchmark",
    "run_mix",
    "run_policy_sweep",
    "run_trace",
]
