"""Intraprocedural AST dataflow: paths, aliases, guards, and taint.

This module is the engine under ``slip-audit`` (:mod:`repro.analysis.
audit`). It knows nothing about SLIP counters or twin registries; it
provides three generic capabilities that :mod:`repro.analysis.effects`
and the audit rules compose:

* **Path normalization** — an assignment target or receiver expression
  is folded to a dotted *path string* (``level.stats.insertions``,
  subscripts collapsing to ``[]``), with local aliases expanded: after
  ``stats = level.stats``, a write to ``stats.demand_hits`` normalizes
  to ``level.stats.demand_hits``. Bound-method aliases expand the same
  way (``wb = h._writeback_below_l1; wb(a)`` is a call with receiver
  ``h``), which is how the replay loops' hoisted method locals stay
  visible to the call graph.
* **Guard assumptions** — an ``if`` whose test is exactly a fast-path
  gate attribute (``self._l1_fast``, ``not level._fast_fill``) can be
  resolved to one branch under an assumed truth value, so the *same*
  function yields a fused-path effect summary (gates assumed True) and
  a reference-path summary (gates assumed False). Any test that is not
  a bare gate attribute keeps both branches (may-effect union).
* **Flow-sensitive taint** — a forward walk tracking which locals are
  derived from nondeterminism sources (``os.environ``, ``time.*``,
  unseeded RNG constructions, set iteration), with kills on
  reassignment, may-taint merges at branch joins, and a second pass
  over loop bodies for loop-carried taint. Sinks are classified by a
  caller-supplied predicate (the audit passes its counter classifier).

Everything here is deliberately *intra*procedural; interprocedural
composition (call expansion with receiver substitution) lives in
:mod:`repro.analysis.effects` on top of these summaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: Marker appended to a path segment written/read through a subscript.
SUBSCRIPT = "[]"


# ----------------------------------------------------------------------
# Path normalization
# ----------------------------------------------------------------------
def dotted_path(node: ast.AST,
                aliases: Optional[Mapping[str, str]] = None
                ) -> Optional[str]:
    """Normalize an expression to a dotted path string, or ``None``.

    ``a.b[i].c`` -> ``"a.b[].c"``; a root :class:`ast.Name` found in
    ``aliases`` is replaced by its aliased path. Anything that is not a
    pure Name/Attribute/Subscript chain (calls, literals, arithmetic)
    has no path.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            # Marker for "the segment below me is indexed": x[i] -> x[]
            parts.append(SUBSCRIPT)
            node = node.value
        elif isinstance(node, ast.Name):
            root = node.id
            if aliases and root in aliases:
                root = aliases[root]
            parts.append(root)
            break
        else:
            return None
    # parts are leaf-first and always end with the root Name, so when a
    # marker is seen (walking root-first) its base segment is already out.
    out: List[str] = []
    for part in reversed(parts):
        if part == SUBSCRIPT:
            out[-1] += SUBSCRIPT
        else:
            out.append(part)
    return ".".join(out)


def path_segments(path: str) -> List[str]:
    """Split a normalized path into segments (subscript markers kept)."""
    return path.split(".")


def terminal_attr(path: str) -> str:
    """Last segment of a path, with any subscript marker stripped."""
    return path_segments(path)[-1].replace(SUBSCRIPT, "")


# ----------------------------------------------------------------------
# Guard resolution
# ----------------------------------------------------------------------
def split_guard_test(test: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(gate_name, polarity)`` when a test is exactly one gate read.

    ``if self._l1_fast:`` -> ``("_l1_fast", True)``;
    ``if not level._fast_fill:`` -> ``("_fast_fill", False)``.
    Compound tests return ``None`` — the caller keeps both branches.
    """
    polarity = True
    while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        polarity = not polarity
        test = test.operand
    if isinstance(test, ast.Attribute):
        return test.attr, polarity
    if isinstance(test, ast.Name):
        return test.id, polarity
    return None


def resolve_guard_branch(node: ast.If,
                         assume: Mapping[str, bool]
                         ) -> Optional[List[ast.stmt]]:
    """The single live branch of an ``if`` under guard assumptions.

    Returns the chosen statement list when the test is a bare gate
    attribute present in ``assume``; ``None`` means the test is not a
    resolvable guard and both branches are live.
    """
    split = split_guard_test(node.test)
    if split is None:
        return None
    gate, polarity = split
    if gate not in assume:
        return None
    truth = assume[gate] if polarity else not assume[gate]
    return list(node.body) if truth else list(node.orelse)


# ----------------------------------------------------------------------
# Function indexing
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method found in an analyzed source tree."""

    qualname: str                       # "ClassName.method" or "func"
    name: str
    cls: Optional[str]
    node: ast.AST                       # FunctionDef / AsyncFunctionDef
    path: str                           # source file it came from
    lineno: int = 0
    end_lineno: int = 0

    def __post_init__(self) -> None:
        self.lineno = getattr(self.node, "lineno", 0)
        self.end_lineno = getattr(self.node, "end_lineno", self.lineno)


def index_functions(tree: ast.AST, path: str) -> List[FunctionInfo]:
    """Top-level functions and class methods of one module (one level:
    nested defs belong to their enclosing function's body)."""
    out: List[FunctionInfo] = []
    for node in getattr(tree, "body", []):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(FunctionInfo(node.name, node.name, None, node, path))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    out.append(FunctionInfo(
                        f"{node.name}.{item.name}", item.name,
                        node.name, item, path,
                    ))
    return out


# ----------------------------------------------------------------------
# Flow-sensitive taint tracking
# ----------------------------------------------------------------------
#: Dotted call names whose *result* is nondeterministic across runs.
TAINT_CALLS = frozenset({
    "time.time", "time.perf_counter", "time.monotonic",
    "time.process_time", "time.time_ns", "time.perf_counter_ns",
    "time.monotonic_ns", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.getenv", "os.environ.get", "os.urandom", "os.getpid",
    "uuid.uuid1", "uuid.uuid4",
    # Module-level random functions draw from the unseeded global RNG.
    "random.random", "random.randint", "random.randrange",
    "random.uniform", "random.choice", "random.choices",
    "random.sample", "random.getrandbits", "random.gauss",
})

#: Constructors that yield a nondeterministic generator when called
#: with no seed argument.
UNSEEDED_CTORS = ("Random", "default_rng")

#: Attribute chains that are themselves nondeterministic values.
TAINT_PATHS = frozenset({"os.environ"})


@dataclass
class TaintHit:
    """One source-to-sink flow found by the taint walker."""

    kind: str          # "write" (tainted value into sink) or "guard"
    sink: str          # classified sink key (e.g. "stats.demand_hits")
    source: str        # human description of the originating source
    line: int = 0
    col: int = 0


def _call_name(node: ast.Call) -> Optional[str]:
    return dotted_path(node.func)


def _is_set_like(node: ast.AST) -> bool:
    """Expression whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return name in ("set", "frozenset")
    return False


class TaintTracker:
    """Forward flow-sensitive taint walk over one function body.

    ``sink_of(path) -> Optional[str]`` classifies normalized write
    targets; a non-None return is a sink key. Hits are accumulated on
    :attr:`hits`. The walk is a may-analysis: branch joins union their
    taint sets, straight-line reassignment from a clean value kills.
    """

    def __init__(self, sink_of: Callable[[str], Optional[str]]) -> None:
        self.sink_of = sink_of
        self.hits: List[TaintHit] = []
        self.tainted: Dict[str, str] = {}   # local name -> source desc
        self.aliases: Dict[str, str] = {}

    # -- expression taint ---------------------------------------------
    def expr_source(self, node: ast.AST) -> Optional[str]:
        """The source description if this expression is tainted."""
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None:
                if name in TAINT_CALLS:
                    return f"{name}()"
                leaf = name.rsplit(".", 1)[-1]
                if (leaf in UNSEEDED_CTORS
                        and not node.args and not node.keywords):
                    return f"unseeded {name}()"
            # A call on / with a tainted value stays tainted.
            for child in ast.iter_child_nodes(node):
                src = self.expr_source(child)
                if src is not None:
                    return src
            return None
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            path = dotted_path(node, self.aliases)
            if path is not None:
                for known in TAINT_PATHS:
                    if path == known or path.startswith(known + ".") \
                            or path.startswith(known + SUBSCRIPT):
                        return known
            src = self.expr_source(node.value)
            if src is not None:
                return src
            if isinstance(node, ast.Subscript):
                return self.expr_source(node.slice)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_like(gen.iter):
                    return "set iteration order"
                src = self.expr_source(gen.iter)
                if src is not None:
                    return src
            return None
        for child in ast.iter_child_nodes(node):
            src = self.expr_source(child)
            if src is not None:
                return src
        return None

    # -- statement walk ------------------------------------------------
    def _record_write(self, target: ast.AST, source: str,
                      kind: str = "write") -> None:
        path = dotted_path(target, self.aliases)
        if path is None:
            return
        sink = self.sink_of(path)
        if sink is not None:
            self.hits.append(TaintHit(
                kind=kind, sink=sink, source=source,
                line=getattr(target, "lineno", 0),
                col=getattr(target, "col_offset", 0),
            ))

    def _assign_target(self, target: ast.AST,
                       source: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            if source is not None:
                self.tainted[target.id] = source
            else:
                self.tainted.pop(target.id, None)
            self.aliases.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, source)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, source)
            return
        if source is not None:
            self._record_write(target, source)

    def _sink_writes_under(self, stmts: Iterable[ast.stmt],
                           source: str) -> None:
        """Flag every sink write in a region guarded by a tainted test."""
        for stmt in stmts:
            for node in ast.walk(stmt):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        self._record_write(target, source, kind="guard")

    def _merge(self, *branches: Dict[str, str]) -> None:
        merged: Dict[str, str] = {}
        for env in branches:
            merged.update(env)
        self.tainted = merged

    def process(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._process_stmt(stmt)

    def _process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            source = self.expr_source(stmt.value)
            value_path = dotted_path(stmt.value, self.aliases)
            for target in stmt.targets:
                self._assign_target(target, source)
                # Maintain the alias environment for path-shaped values.
                if isinstance(target, ast.Name) and value_path is not None:
                    self.aliases[target.id] = value_path
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target,
                                    self.expr_source(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            source = self.expr_source(stmt.value)
            if isinstance(stmt.target, ast.Name):
                if source is not None:
                    self.tainted[stmt.target.id] = source
            elif source is not None:
                self._record_write(stmt.target, source)
        elif isinstance(stmt, (ast.If, ast.While)):
            source = self.expr_source(stmt.test)
            if source is not None:
                self._sink_writes_under(stmt.body, source)
                self._sink_writes_under(stmt.orelse, source)
            before = dict(self.tainted)
            self.process(stmt.body)
            after_body = self.tainted
            self.tainted = dict(before)
            self.process(stmt.orelse)
            self._merge(after_body, self.tainted)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            source = self.expr_source(stmt.iter)
            if _is_set_like(stmt.iter):
                source = "set iteration order"
            self._assign_target(stmt.target, source)
            before = dict(self.tainted)
            # Two passes: the second sees loop-carried taint.
            self.process(stmt.body)
            self._assign_target(stmt.target, source)
            self.process(stmt.body)
            self._merge(before, self.tainted)
            self.process(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._assign_target(
                        item.optional_vars,
                        self.expr_source(item.context_expr),
                    )
            self.process(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.process(stmt.body)
            for handler in stmt.handlers:
                self.process(handler.body)
            self.process(stmt.orelse)
            self.process(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested scopes are analyzed on their own
        # Expression statements, returns, raises: no taint state change
        # (sink writes only happen through assignment statements).


def taint_function(fn: ast.AST,
                   sink_of: Callable[[str], Optional[str]]
                   ) -> List[TaintHit]:
    """Run the taint walk over one function body; returns its hits."""
    tracker = TaintTracker(sink_of)
    tracker.process(getattr(fn, "body", []))
    return tracker.hits
