"""SimCheck: opt-in runtime invariant checking for the simulator.

Set ``REPRO_CHECK_INVARIANTS=1`` (or ``=<period>`` for a custom check
cadence in accesses) and every :class:`~repro.mem.hierarchy.
MemoryHierarchy` self-installs cheap checkers at construction:

* **array/index consistency** — per-set tag uniqueness and agreement
  between the line array and the O(1) probe index;
* **chunk residence** — every SLIP-managed line physically sits in a
  way belonging to the chunk its metadata claims, so per-chunk
  occupancy can never exceed the chunk's sublevel ways;
* **counter truth** — shadow counters wrap the accounting primitives
  (`record_hit`, `record_miss`, `place_fill`, ...) and must agree with
  the published :class:`~repro.mem.stats.LevelStats`, which implies
  ``hits + misses == accesses`` against the *observed* event stream;
* **line conservation** — ``insertions == departures + resident`` per
  level, measured against the last stats reset;
* **writeback conservation** — every dirty line read out of a level
  (or forwarded by a dirty bypass) is absorbed exactly once by a lower
  level's in-place update or a DRAM write;
* **energy monotonicity** — per-level energy ledgers are finite,
  non-negative and never decrease between checks;
* **EOU sanity** — returned SLIP ids are in range, distribution
  counters non-negative, and EOU energy equals optimizations times the
  per-op cost.

Violations raise :class:`InvariantViolation` naming the invariant,
level, set/way and counter involved. The checks are wrappers installed
on instances — zero cost when the mode is off.
"""

from __future__ import annotations

import math
import os
from dataclasses import fields as dataclass_fields
from typing import Any, List, Optional

_ENV_VAR = "REPRO_CHECK_INVARIANTS"
_DEFAULT_PERIOD = 256
_FALSEY = ("", "0", "false", "no", "off")


def invariants_enabled() -> bool:
    """Whether SimCheck is switched on via the environment."""
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSEY


def check_period() -> int:
    """Accesses between full structural checks (env value > 1 wins)."""
    raw = os.environ.get(_ENV_VAR, "").strip()
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_PERIOD
    return value if value > 1 else _DEFAULT_PERIOD


class InvariantViolation(Exception):
    """A simulator invariant failed; names the exact state involved."""

    def __init__(self, invariant: str, message: str, *,
                 level: Optional[str] = None,
                 set_idx: Optional[int] = None,
                 way: Optional[int] = None,
                 counter: Optional[str] = None) -> None:
        self.invariant = invariant
        self.level = level
        self.set_idx = set_idx
        self.way = way
        self.counter = counter
        where = [f"[{invariant}]"]
        if level is not None:
            where.append(f"level={level}")
        if set_idx is not None:
            where.append(f"set={set_idx}")
        if way is not None:
            where.append(f"way={way}")
        if counter is not None:
            where.append(f"counter={counter}")
        super().__init__(" ".join(where) + ": " + message)


class _Shadow:
    """Independent event counts observed at the accounting primitives."""

    __slots__ = ("demand_hits", "metadata_hits", "demand_misses",
                 "metadata_misses", "insertions", "departures",
                 "writebacks_out", "writebacks_in",
                 "dirty_bypass_forwards")

    def __init__(self) -> None:
        self.zero()

    def zero(self) -> None:
        self.demand_hits = 0
        self.metadata_hits = 0
        self.demand_misses = 0
        self.metadata_misses = 0
        self.insertions = 0
        self.departures = 0
        self.writebacks_out = 0
        self.writebacks_in = 0
        self.dirty_bypass_forwards = 0


class LevelChecker:
    """Shadow accounting plus structural checks for one cache level."""

    def __init__(self, level: Any, space: Any = None) -> None:
        self.level = level
        self.space = space
        self.shadow = _Shadow()
        self.resident_baseline = self._resident_count()
        self._energy_floor: dict = {}
        self.finalized = False
        self._install()

    # ------------------------------------------------------------------
    def _resident_count(self) -> int:
        return sum(
            1 for line_set in self.level.sets for line in line_set
            if line.valid
        )

    def resync(self) -> None:
        """Re-baseline after a stats reset (warmup boundary)."""
        self.shadow.zero()
        self.resident_baseline = self._resident_count()
        self._energy_floor = {}
        self.finalized = False

    # ------------------------------------------------------------------
    def _install(self) -> None:
        level, shadow = self.level, self.shadow

        orig_hit = level.record_hit

        def record_hit(set_idx, way, is_write, is_metadata=False):
            if is_metadata:
                shadow.metadata_hits += 1
            else:
                shadow.demand_hits += 1
            return orig_hit(set_idx, way, is_write, is_metadata)

        level.record_hit = record_hit

        orig_miss = level.record_miss

        def record_miss(is_metadata=False):
            if is_metadata:
                shadow.metadata_misses += 1
            else:
                shadow.demand_misses += 1
            return orig_miss(is_metadata)

        level.record_miss = record_miss

        orig_fill = level.place_fill

        def place_fill(*args, **kwargs):
            shadow.insertions += 1
            return orig_fill(*args, **kwargs)

        level.place_fill = place_fill

        orig_departure = level.record_departure

        def record_departure(evicted):
            shadow.departures += 1
            return orig_departure(evicted)

        level.record_departure = record_departure

        orig_wb_out = level.record_writeback_out

        def record_writeback_out(from_way):
            shadow.writebacks_out += 1
            return orig_wb_out(from_way)

        level.record_writeback_out = record_writeback_out

        orig_wb_in = level.record_writeback_in

        def record_writeback_in(set_idx, way):
            shadow.writebacks_in += 1
            return orig_wb_in(set_idx, way)

        level.record_writeback_in = record_writeback_in

        orig_bypass = level.record_bypass

        def record_bypass(slip_class="abp", dirty=False):
            if dirty:
                shadow.dirty_bypass_forwards += 1
            return orig_bypass(slip_class, dirty)

        level.record_bypass = record_bypass

        orig_reset = level.reset_stats

        def reset_stats():
            orig_reset()
            self.resync()

        level.reset_stats = reset_stats

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check(self) -> int:
        """Run every level invariant; returns the resident-line count."""
        resident = self._check_index()
        if self.space is not None:
            self._check_chunk_residence()
        self._check_counters()
        self._check_conservation(resident)
        self._check_energy()
        return resident

    def _check_index(self) -> int:
        level = self.level
        name = level.cfg.name
        resident = 0
        for set_idx, line_set in enumerate(level.sets):
            index = level._index[set_idx]
            seen: dict = {}
            valid = 0
            for way, line in enumerate(line_set):
                if not line.valid:
                    continue
                resident += 1
                valid += 1
                if line.tag < 0:
                    raise InvariantViolation(
                        "tag-uniqueness", f"valid line with tag {line.tag}",
                        level=name, set_idx=set_idx, way=way)
                if line.tag in seen:
                    raise InvariantViolation(
                        "tag-uniqueness",
                        f"tag {line.tag:#x} present in ways "
                        f"{seen[line.tag]} and {way}",
                        level=name, set_idx=set_idx, way=way)
                seen[line.tag] = way
                if index.get(line.tag) != way:
                    raise InvariantViolation(
                        "index-consistency",
                        f"probe index maps tag {line.tag:#x} to "
                        f"{index.get(line.tag)}, array holds it in way "
                        f"{way}",
                        level=name, set_idx=set_idx, way=way)
            if len(index) != valid:
                raise InvariantViolation(
                    "index-consistency",
                    f"probe index holds {len(index)} tags, array holds "
                    f"{valid} valid lines",
                    level=name, set_idx=set_idx)
        return resident

    def _check_chunk_residence(self) -> None:
        from ..mem.cache import NO_CHUNK

        level, space = self.level, self.space
        name = level.cfg.name
        for set_idx, line_set in enumerate(level.sets):
            for way, line in enumerate(line_set):
                if not line.valid or line.chunk_idx == NO_CHUNK:
                    continue
                if not 0 <= line.policy_id < len(space):
                    raise InvariantViolation(
                        "chunk-occupancy",
                        f"policy id {line.policy_id} out of range "
                        f"[0, {len(space)})",
                        level=name, set_idx=set_idx, way=way)
                num_chunks = space.num_chunks(line.policy_id)
                if not 0 <= line.chunk_idx < num_chunks:
                    raise InvariantViolation(
                        "chunk-occupancy",
                        f"chunk index {line.chunk_idx} out of range for "
                        f"SLIP {line.policy_id} with {num_chunks} chunks",
                        level=name, set_idx=set_idx, way=way)
                ways = space.chunk_ways(line.policy_id, line.chunk_idx)
                if way not in ways:
                    raise InvariantViolation(
                        "chunk-occupancy",
                        f"line claims chunk {line.chunk_idx} of SLIP "
                        f"{line.policy_id} (ways {ways}) but resides in "
                        f"way {way}; chunk occupancy would exceed its "
                        f"sublevel ways",
                        level=name, set_idx=set_idx, way=way)

    def _check_counters(self) -> None:
        stats, shadow = self.level.stats, self.shadow
        name = self.level.cfg.name
        pairs = (
            ("demand_hits", stats.demand_hits, shadow.demand_hits),
            ("metadata_hits", stats.metadata_hits, shadow.metadata_hits),
            ("demand_misses", stats.demand_misses, shadow.demand_misses),
            ("metadata_misses", stats.metadata_misses,
             shadow.metadata_misses),
            ("insertions", stats.insertions, shadow.insertions),
            ("writebacks_out", stats.writebacks_out, shadow.writebacks_out),
            ("writebacks_in", stats.writebacks_in, shadow.writebacks_in),
            ("dirty_bypass_forwards", stats.dirty_bypass_forwards,
             shadow.dirty_bypass_forwards),
        )
        for counter, published, observed in pairs:
            if published != observed:
                raise InvariantViolation(
                    "counter-truth",
                    f"published {counter}={published} but {observed} "
                    f"events were observed; hits+misses no longer match "
                    f"accesses",
                    level=name, counter=counter)
        if not self.finalized:
            histogram_total = sum(stats.reuse_histogram.values())
            if histogram_total != shadow.departures:
                raise InvariantViolation(
                    "counter-truth",
                    f"reuse histogram counts {histogram_total} departures "
                    f"but {shadow.departures} were observed",
                    level=name, counter="reuse_histogram")

    def _check_conservation(self, resident: int) -> None:
        shadow = self.shadow
        expected = self.resident_baseline + shadow.insertions - \
            shadow.departures
        if resident != expected:
            raise InvariantViolation(
                "line-conservation",
                f"insertions({shadow.insertions}) != "
                f"departures({shadow.departures}) + resident delta "
                f"({resident} now vs {self.resident_baseline} at reset)",
                level=self.level.cfg.name,
                counter="insertions==evictions+resident")

    def _check_energy(self) -> None:
        # Energy accounting is deferred to integer event counters;
        # materialize (idempotent) so the audit sees real picojoules,
        # and corrupted counters surface as negative/shrinking fields.
        energy = self.level.stats.materialize().energy
        name = self.level.cfg.name
        for field in dataclass_fields(energy):
            value = getattr(energy, field.name)
            if not math.isfinite(value) or value < 0.0:
                raise InvariantViolation(
                    "energy-monotonicity",
                    f"{field.name}={value!r} is negative or non-finite",
                    level=name, counter=field.name)
            floor = self._energy_floor.get(field.name, 0.0)
            if value < floor:
                raise InvariantViolation(
                    "energy-monotonicity",
                    f"{field.name} decreased from {floor!r} to {value!r}",
                    level=name, counter=field.name)
            self._energy_floor[field.name] = value


class HierarchyInvariantChecker:
    """Periodic full-state checks over one :class:`MemoryHierarchy`."""

    def __init__(self, hierarchy: Any, period: int = _DEFAULT_PERIOD,
                 l3_shared: bool = False) -> None:
        self.hierarchy = hierarchy
        self.period = max(1, period)
        self.l3_shared = l3_shared
        self.checks_run = 0
        self._since_check = 0

        self.level_checkers: List[LevelChecker] = []
        for level, placement in (
            (hierarchy.l1, hierarchy.l1_placement),
            (hierarchy.l2, hierarchy.l2_placement),
            (hierarchy.l3, hierarchy.l3_placement),
        ):
            existing = getattr(level, "_simcheck", None)
            if existing is not None:
                # Shared level (multicore L3): one checker, one wrap.
                self.level_checkers.append(existing)
                continue
            checker = LevelChecker(level, getattr(placement, "space", None))
            level._simcheck = checker
            # The fused baseline fill would bypass the wrapped
            # primitives (and so the shadow ledger); force every
            # placement through the observable slow path.
            level._fast_fill = False
            self.level_checkers.append(checker)

        self._install_eou_guards()
        self._install_triggers()

    # ------------------------------------------------------------------
    def _install_triggers(self) -> None:
        hierarchy = self.hierarchy
        orig_access = hierarchy.access

        def access(line_addr, is_write=False):
            latency = orig_access(line_addr, is_write)
            self._since_check += 1
            if self._since_check >= self.period:
                self._since_check = 0
                self.check()
            return latency

        hierarchy.access = access

        orig_finalize = hierarchy.finalize

        def finalize():
            # Full check on the pre-finalize state, then let finalize
            # fold resident lines into the reuse histogram (which is
            # exactly the drift the histogram check would flag).
            self.check()
            orig_finalize()
            for checker in self.level_checkers:
                checker.finalized = True

        hierarchy.finalize = finalize

    def _install_eou_guards(self) -> None:
        runtime = self.hierarchy.runtime
        eous = getattr(runtime, "eous", None)
        self.eous = list(eous.values()) if eous else []
        for eou in self.eous:
            if getattr(eou, "_simcheck_guarded", False):
                continue
            orig_optimize = eou.optimize
            space_size = len(eou.space)

            def optimize(distribution, allow_abp=True,
                         evidence_samples=None, _orig=orig_optimize,
                         _eou=eou, _n=space_size):
                negatives = [c for c in distribution.counts if c < 0]
                if negatives:
                    raise InvariantViolation(
                        "eou-distribution",
                        f"negative reuse-distance bin counters "
                        f"{negatives}", counter="distribution.counts")
                slip_id = _orig(distribution, allow_abp=allow_abp,
                                evidence_samples=evidence_samples)
                if not 0 <= slip_id < _n:
                    raise InvariantViolation(
                        "eou-slip-id",
                        f"optimizer returned SLIP id {slip_id}, space "
                        f"holds {_n}", counter="slip_id")
                # Memo soundness: the (possibly cached) answer must
                # equal a fresh argmin over the same counters.
                direct = _eou.optimize_direct(
                    distribution, allow_abp=allow_abp,
                    evidence_samples=evidence_samples)
                if slip_id != direct:
                    raise InvariantViolation(
                        "eou-memo",
                        f"memoized optimizer returned SLIP id {slip_id} "
                        f"but a direct argmin over counts "
                        f"{list(distribution.counts)} returns {direct}",
                        counter="memo")
                return slip_id

            eou.optimize = optimize
            eou._simcheck_guarded = True

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Run every invariant; raises InvariantViolation on failure."""
        self.checks_run += 1
        for checker in self.level_checkers:
            checker.check()
        self._check_hierarchy_counters()
        if not self.l3_shared:
            self._check_writeback_conservation()
        self._check_eous()

    def _check_hierarchy_counters(self) -> None:
        h = self.hierarchy
        counters = h.counters
        l1 = h.l1.stats
        if counters.l1_hits != l1.demand_hits:
            raise InvariantViolation(
                "counter-truth",
                f"hierarchy counts {counters.l1_hits} L1 hits, L1 stats "
                f"count {l1.demand_hits}",
                level="L1", counter="l1_hits")
        probes = l1.demand_hits + l1.demand_misses
        if counters.demand_accesses != probes:
            raise InvariantViolation(
                "counter-truth",
                f"{counters.demand_accesses} demand accesses but "
                f"{probes} L1 demand probes (hits+misses != accesses)",
                level="L1", counter="demand_accesses")
        dram = h.dram.stats
        if counters.dram_reads != dram.reads:
            raise InvariantViolation(
                "counter-truth",
                f"hierarchy counts {counters.dram_reads} DRAM reads, "
                f"DRAM stats count {dram.reads}",
                level="DRAM", counter="dram_reads")
        if counters.dram_writebacks != dram.writes:
            raise InvariantViolation(
                "counter-truth",
                f"hierarchy counts {counters.dram_writebacks} DRAM "
                f"writebacks, DRAM stats count {dram.writes}",
                level="DRAM", counter="dram_writebacks")

    def _check_writeback_conservation(self) -> None:
        shadows = [c.shadow for c in self.level_checkers]
        emitted = sum(s.writebacks_out for s in shadows) + \
            sum(s.dirty_bypass_forwards for s in shadows)
        l2, l3 = self.level_checkers[1].shadow, self.level_checkers[2].shadow
        absorbed = (l2.writebacks_in + l3.writebacks_in
                    + self.hierarchy.counters.dram_writebacks)
        if emitted != absorbed:
            raise InvariantViolation(
                "writeback-conservation",
                f"{emitted} dirty lines left their levels but {absorbed} "
                f"writebacks were absorbed below "
                f"(L2 in={l2.writebacks_in}, L3 in={l3.writebacks_in}, "
                f"DRAM={self.hierarchy.counters.dram_writebacks})",
                counter="writebacks_out==writebacks_in+dram_writebacks")

    def _check_eous(self) -> None:
        for eou in self.eous:
            stats = eou.stats
            if stats.optimizations < 0:
                raise InvariantViolation(
                    "eou-energy",
                    f"negative optimization count {stats.optimizations}",
                    counter="optimizations")
            # ``stats.energy_pj`` is a materialized product of the two
            # fields below, so the old accumulated-vs-expected ledger
            # comparison is structural now; what can still drift is the
            # per-op cost (e.g. a stats reset that drops the configured
            # value) and the cycle ledger.
            if stats.energy_pj_per_op != eou.energy_pj_per_op:
                raise InvariantViolation(
                    "eou-energy",
                    f"stats carry {stats.energy_pj_per_op} pJ/op but the "
                    f"EOU was configured with {eou.energy_pj_per_op} "
                    f"pJ/op (stats object lost the per-op cost)",
                    counter="energy_pj_per_op")
            if stats.tlb_block_cycles != stats.optimizations:
                raise InvariantViolation(
                    "eou-energy",
                    f"{stats.tlb_block_cycles} TLB block cycles for "
                    f"{stats.optimizations} optimizations",
                    counter="tlb_block_cycles")


def maybe_install(hierarchy: Any,
                  l3_shared: bool = False
                  ) -> Optional[HierarchyInvariantChecker]:
    """Install SimCheck on a hierarchy iff the env flag is set."""
    if not invariants_enabled():
        return None
    return HierarchyInvariantChecker(hierarchy, period=check_period(),
                                     l3_shared=l3_shared)


# ----------------------------------------------------------------------
# Filtered-replay conservation (always on, independent of the env flag)
# ----------------------------------------------------------------------
def check_capture_replay(hierarchy: Any, capture: Any,
                         slip_kind: bool) -> None:
    """``capture-replay-conservation``: audit one finished replay.

    Full SimCheck cannot observe a filtered replay (the per-access
    wrappers never see events the replay skips, so the filtered path is
    bypassed when the env flag is set); this O(1) audit runs at the end
    of *every* replay instead. It checks that the back end consumed
    exactly the captured boundary events and that the merged
    front-end statistics still satisfy the line/writeback conservation
    and energy-monotonicity properties of a direct run:

    * every captured demand miss / metadata access probed L2 exactly
      once (for the slip kind, the metadata count is instead balanced
      against the live runtime's PTE + distribution fetch counters);
    * every captured L1 writeback was absorbed exactly once below
      (L2/L3 in-place update or DRAM write, net of the writebacks the
      back end itself emitted);
    * the merged L1 statistics agree with the hierarchy counters and
      with the captured boundary (hits + misses == accesses, misses ==
      demand events, writebacks_out == writeback events);
    * every merged per-level energy field is finite and non-negative.
    """
    name = "capture-replay-conservation"
    counts = capture.frozen["event_counts"]
    l1 = hierarchy.l1.stats
    l2 = hierarchy.l2.stats
    l3 = hierarchy.l3.stats
    counters = hierarchy.counters

    demand_consumed = l2.demand_hits + l2.demand_misses
    if demand_consumed != counts["demand"]:
        raise InvariantViolation(
            name,
            f"replay consumed {demand_consumed} demand events but the "
            f"capture holds {counts['demand']}",
            level="L2", counter="demand_events")
    metadata_consumed = l2.metadata_hits + l2.metadata_misses
    if slip_kind:
        runtime_stats = hierarchy.runtime.stats
        expected_metadata = (runtime_stats.tlb_miss_fetches
                             + runtime_stats.distribution_fetches)
    else:
        expected_metadata = counts["metadata"]
    if metadata_consumed != expected_metadata:
        raise InvariantViolation(
            name,
            f"replay consumed {metadata_consumed} metadata events, "
            f"expected {expected_metadata}",
            level="L2", counter="metadata_events")
    absorbed = (l2.writebacks_in + l3.writebacks_in
                + counters.dram_writebacks)
    emitted_below = (l2.writebacks_out + l3.writebacks_out
                     + l2.dirty_bypass_forwards
                     + l3.dirty_bypass_forwards)
    if absorbed - emitted_below != counts["writeback"]:
        raise InvariantViolation(
            name,
            f"{counts['writeback']} captured L1 writebacks but the back "
            f"end absorbed {absorbed} and emitted {emitted_below} of its "
            f"own",
            counter="writeback_events")
    if counters.demand_accesses != l1.demand_hits + l1.demand_misses:
        raise InvariantViolation(
            name,
            f"merged counters claim {counters.demand_accesses} demand "
            f"accesses, frozen L1 saw "
            f"{l1.demand_hits + l1.demand_misses}",
            level="L1", counter="demand_accesses")
    if counters.l1_hits != l1.demand_hits:
        raise InvariantViolation(
            name,
            f"merged counters claim {counters.l1_hits} L1 hits, frozen "
            f"L1 stats claim {l1.demand_hits}",
            level="L1", counter="l1_hits")
    if l1.demand_misses != counts["demand"]:
        raise InvariantViolation(
            name,
            f"frozen L1 saw {l1.demand_misses} demand misses but the "
            f"capture holds {counts['demand']} demand events",
            level="L1", counter="demand_misses")
    if l1.writebacks_out != counts["writeback"]:
        raise InvariantViolation(
            name,
            f"frozen L1 emitted {l1.writebacks_out} writebacks but the "
            f"capture holds {counts['writeback']} writeback events",
            level="L1", counter="writebacks_out")
    for stats in (l1, l2, l3):
        for fld in dataclass_fields(stats.energy):
            value = getattr(stats.energy, fld.name)
            if not math.isfinite(value) or value < 0.0:
                raise InvariantViolation(
                    name,
                    f"merged energy field {fld.name}={value!r}",
                    level=stats.name, counter=fld.name)


# ----------------------------------------------------------------------
# Vector-replay conservation (always on, independent of the env flag)
# ----------------------------------------------------------------------
def check_vector_replay(ops: Any, measured: Any, l3_ops: Any,
                        l3_measured: Any, l2_tally: Any, l3_tally: Any,
                        *, dram_demand: int, dram_metadata: int) -> None:
    """``vector-replay-conservation``: audit one batched back-end run.

    Runs inside :func:`repro.sim.vector_replay.replay_capture_vector`
    before the tallies are published, complementing the end-of-replay
    ``capture-replay-conservation`` audit with the internal identities
    of the batched kernel itself:

    * every measured access event of a level's stream was consumed
      exactly once (hits + misses == events, split by demand/metadata);
    * every movement read pairs with a movement write;
    * the derived DRAM read counts equal the L3 miss tallies (every L3
      access miss is exactly one DRAM read);
    * a level never absorbs more writebacks than its stream carries.
    """
    import numpy as np

    name = "vector-replay-conservation"
    for label, stream_ops, stream_meas, tally in (
        ("L2", ops, measured, l2_tally),
        ("L3", l3_ops, l3_measured, l3_tally),
    ):
        demand_events = int(np.count_nonzero(
            (stream_ops == 0) & stream_meas))
        metadata_events = int(np.count_nonzero(
            (stream_ops == 1) & stream_meas))
        wb_events = int(np.count_nonzero(
            (stream_ops == 2) & stream_meas))
        demand_seen = sum(tally.dh_sub) + tally.demand_misses
        if demand_seen != demand_events:
            raise InvariantViolation(
                name,
                f"kernel consumed {demand_seen} measured demand events "
                f"of {demand_events} in the stream",
                level=label, counter="demand_events")
        metadata_seen = sum(tally.mh_sub) + tally.metadata_misses
        if metadata_seen != metadata_events:
            raise InvariantViolation(
                name,
                f"kernel consumed {metadata_seen} measured metadata "
                f"events of {metadata_events} in the stream",
                level=label, counter="metadata_events")
        if sum(tally.mvr_sub) != sum(tally.mvw_sub):
            raise InvariantViolation(
                name,
                f"{sum(tally.mvr_sub)} movement reads vs "
                f"{sum(tally.mvw_sub)} movement writes",
                level=label, counter="move_events")
        if sum(tally.wbin_sub) > wb_events:
            raise InvariantViolation(
                name,
                f"absorbed {sum(tally.wbin_sub)} writebacks but the "
                f"stream carries only {wb_events}",
                level=label, counter="wb_in_events")
    if dram_demand != l3_tally.demand_misses:
        raise InvariantViolation(
            name,
            f"{dram_demand} DRAM demand reads vs "
            f"{l3_tally.demand_misses} L3 demand misses",
            level="DRAM", counter="dram_demand_reads")
    if dram_metadata != l3_tally.metadata_misses:
        raise InvariantViolation(
            name,
            f"{dram_metadata} DRAM metadata reads vs "
            f"{l3_tally.metadata_misses} L3 metadata misses",
            level="DRAM", counter="dram_metadata_reads")


# ----------------------------------------------------------------------
# SLIP vector-replay conservation (always on, independent of the flag)
# ----------------------------------------------------------------------
def check_slip_vector_replay(*, demand_events: int, metadata_events: int,
                             fetch_events: int, wb_events: int,
                             l2_tally: Any, l3_tally: Any,
                             dram_writebacks: int) -> None:
    """``slip-vector-replay-conservation``: audit one phase-split run.

    Runs inside :func:`repro.sim.vector_replay_slip.
    replay_capture_vector_slip` before the tallies are published. The
    SLIP kernel records level events in two independent ways — packed
    annotation bytes consumed by a phase-2 bincount (hits, misses,
    absorbed writebacks) and inline tallies for the rare events
    (insertions, bypasses, movements, writebacks out) — so the streams
    can be balanced against each other, against the capture, and
    against the live runtime's metadata-fetch ledger:

    * every measured captured demand event was consumed exactly once at
      L2, and every metadata line the live runtime fetched (PTE line
      plus distribution lines, ``tlb_miss_fetches +
      distribution_fetches``) appears once in both the fetch-count
      stream and the L2 annotation stream;
    * at each level, fills partition into insertions and ABP bypasses
      (``insertions + bypasses == misses``) and the per-class tally
      covers them; movement reads pair with movement writes;
    * the L3 stream carries exactly the L2 misses (demand and metadata
      separately), and the L3 writeback stream carries exactly the
      forwarded plus evicted-dirty L2 writebacks;
    * DRAM absorbs exactly the L3-forwarded plus L3-evicted writebacks.
    """
    name = "slip-vector-replay-conservation"
    l2_demand = sum(l2_tally.dh_sub) + l2_tally.demand_misses
    if l2_demand != demand_events:
        raise InvariantViolation(
            name,
            f"kernel consumed {l2_demand} measured demand events of "
            f"{demand_events} in the capture",
            level="L2", counter="demand_events")
    l2_meta = sum(l2_tally.mh_sub) + l2_tally.metadata_misses
    if l2_meta != fetch_events:
        raise InvariantViolation(
            name,
            f"kernel consumed {l2_meta} measured metadata events but "
            f"the fetch stream carries {fetch_events}",
            level="L2", counter="metadata_events")
    if fetch_events != metadata_events:
        raise InvariantViolation(
            name,
            f"fetch stream carries {fetch_events} metadata lines but "
            f"the runtime ledger accounts for {metadata_events}",
            level="L2", counter="metadata_fetches")
    for label, tally in (("L2", l2_tally), ("L3", l3_tally)):
        fills = tally.demand_misses + tally.metadata_misses
        placed = sum(tally.ins_sub) + tally.bypasses
        if placed != fills:
            raise InvariantViolation(
                name,
                f"{sum(tally.ins_sub)} insertions + {tally.bypasses} "
                f"bypasses != {fills} misses",
                level=label, counter="insertions")
        if sum(tally.class_counts) != placed:
            raise InvariantViolation(
                name,
                f"class tally covers {sum(tally.class_counts)} fills "
                f"of {placed}",
                level=label, counter="insertions_by_class")
        if sum(tally.mvr_sub) != sum(tally.mvw_sub):
            raise InvariantViolation(
                name,
                f"{sum(tally.mvr_sub)} movement reads vs "
                f"{sum(tally.mvw_sub)} movement writes",
                level=label, counter="move_events")
    l2_wb = sum(l2_tally.wbin_sub) + l2_tally.forwarded_wbs
    if l2_wb != wb_events:
        raise InvariantViolation(
            name,
            f"L2 writeback stream consumed {l2_wb} events but the "
            f"capture holds {wb_events}",
            level="L2", counter="wb_in_events")
    l3_demand = sum(l3_tally.dh_sub) + l3_tally.demand_misses
    if l3_demand != l2_tally.demand_misses:
        raise InvariantViolation(
            name,
            f"L3 saw {l3_demand} demand events but L2 missed "
            f"{l2_tally.demand_misses}",
            level="L3", counter="demand_events")
    l3_meta = sum(l3_tally.mh_sub) + l3_tally.metadata_misses
    if l3_meta != l2_tally.metadata_misses:
        raise InvariantViolation(
            name,
            f"L3 saw {l3_meta} metadata events but L2 missed "
            f"{l2_tally.metadata_misses}",
            level="L3", counter="metadata_events")
    l3_wb_in = sum(l3_tally.wbin_sub) + l3_tally.forwarded_wbs
    l3_wb_expect = l2_tally.forwarded_wbs + sum(l2_tally.wbout_sub)
    if l3_wb_in != l3_wb_expect:
        raise InvariantViolation(
            name,
            f"L3 writeback stream consumed {l3_wb_in} events but L2 "
            f"emitted {l3_wb_expect}",
            level="L3", counter="wb_in_events")
    dram_expect = l3_tally.forwarded_wbs + sum(l3_tally.wbout_sub)
    if dram_writebacks != dram_expect:
        raise InvariantViolation(
            name,
            f"{dram_writebacks} DRAM writebacks vs {dram_expect} "
            f"emitted by L3",
            level="DRAM", counter="dram_writebacks")


# ----------------------------------------------------------------------
# Vector-front-end conservation (always on, independent of the flag)
# ----------------------------------------------------------------------
def check_vector_frontend(*, n: int, warmup: int, event_boundary: int,
                          total_events: int, total_demand: int,
                          total_metadata: int, total_writeback: int,
                          l1_hits: int, l1_misses: int, l1_writebacks: int,
                          tlb_hits: int, tlb_misses: int,
                          histogram_total: int, measured_evictions: int,
                          residents: int, capacity: int) -> None:
    """``vector-frontend-conservation``: audit one batched capture.

    Runs inside :func:`repro.sim.vector_frontend.
    capture_front_end_vector` before the capture is packaged,
    balancing the emitted event streams against the frozen front-end
    tallies the same capture carries:

    * every measured access resolved to exactly one L1 outcome and one
      TLB outcome (hits + misses == measured accesses for both);
    * the event stream partitions into demand / metadata / writeback
      ops, the warmup boundary splits it consistently with the frozen
      measured-phase counts, and no access emitted a writeback without
      a demand miss;
    * the reuse histogram covers exactly the measured evictions plus
      the lines resident at the end of the trace, and residency never
      exceeds the L1's capacity.
    """
    name = "vector-frontend-conservation"
    if l1_hits + l1_misses != n - warmup:
        raise InvariantViolation(
            name,
            f"L1 resolved {l1_hits} hits + {l1_misses} misses for "
            f"{n - warmup} measured accesses",
            level="L1", counter="demand_events")
    if tlb_hits + tlb_misses != n - warmup:
        raise InvariantViolation(
            name,
            f"TLB resolved {tlb_hits} hits + {tlb_misses} misses for "
            f"{n - warmup} measured accesses",
            level="TLB", counter="tlb_probes")
    if total_demand + total_metadata + total_writeback != total_events:
        raise InvariantViolation(
            name,
            f"{total_demand}+{total_metadata}+{total_writeback} typed "
            f"events vs {total_events} stream slots",
            level="L1", counter="event_stream")
    measured_events = l1_misses + tlb_misses + l1_writebacks
    if event_boundary + measured_events != total_events:
        raise InvariantViolation(
            name,
            f"boundary {event_boundary} + {measured_events} measured "
            f"events != {total_events} stream slots",
            level="L1", counter="event_boundary")
    if total_writeback > total_demand:
        raise InvariantViolation(
            name,
            f"{total_writeback} writebacks exceed {total_demand} "
            f"demand misses",
            level="L1", counter="writebacks_out")
    if histogram_total != measured_evictions + residents:
        raise InvariantViolation(
            name,
            f"reuse histogram holds {histogram_total} departures vs "
            f"{measured_evictions} evictions + {residents} residents",
            level="L1", counter="reuse_histogram")
    if not 0 <= residents <= capacity:
        raise InvariantViolation(
            name,
            f"{residents} resident lines in a {capacity}-line L1",
            level="L1", counter="residents")


# ----------------------------------------------------------------------
# Replay-plan conservation (always on, independent of the flag)
# ----------------------------------------------------------------------
def check_replay_plan(plan, capture, trace) -> None:
    """``replay-plan-conservation``: a plan must re-derive byte-equal.

    A :class:`~repro.sim.replay_plan.ReplayPlan` is pure derived data —
    nothing in it may carry information beyond the (capture, geometry)
    pair it claims to precompute. Before the first kernel consumes a
    plan object (fresh build, memoized share or memmap sidecar load),
    this re-runs the derivation from the capture and compares every
    persisted array byte-for-byte, so a corrupted, truncated or stale
    plan can never alter a result. Passing marks ``plan.verified``;
    shared plan objects pay the check once per process.
    """
    import numpy as np

    from ..sim.replay_plan import PLAN_ARRAY_NAMES, derive_plan_arrays

    name = "replay-plan-conservation"
    expected = derive_plan_arrays(capture, trace, plan.geometry)
    for array_name in PLAN_ARRAY_NAMES:
        got = np.asarray(getattr(plan, array_name))
        want = expected[array_name]
        if got.dtype != want.dtype:
            raise InvariantViolation(
                name,
                f"plan array {array_name} has dtype {got.dtype}, "
                f"re-derivation yields {want.dtype}",
                counter=array_name)
        if not np.array_equal(got, want):
            raise InvariantViolation(
                name,
                f"plan array {array_name} does not re-derive "
                f"byte-identically from the capture",
                counter=array_name)
    plan.verified = True
