"""slip-lint rule set: simulator-specific static-analysis checks.

Each rule is an AST pass with a stable ``SLIPnnn`` code. The rules
encode determinism and accounting hazards that generic linters do not
know about: an unseeded RNG or a ``set`` iteration in a victim-selection
path silently breaks run-to-run reproducibility, and a plain ``sum()``
over picojoule floats accumulates rounding error into headline energy
numbers. Findings can be suppressed per line with
``# slip-lint: disable=SLIP005`` (or ``disable=all``), or for a whole
file with ``# slip-lint: disable-file=SLIP002``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: The always-on diagnostic code for files that fail to parse or
#: decode. Not a Rule instance: it can never be deselected (a file the
#: linter cannot read is a finding regardless of ``--select``) and both
#: slip-lint and slip-audit emit it.
SYNTAX_ERROR_CODE = "SLIP999"

#: Packages whose code runs inside the simulator hot loop; wall-clock
#: reads and unslotted metadata classes are only hazards there.
SIM_PACKAGES: Tuple[Tuple[str, ...], ...] = (
    ("repro", "mem"),
    ("repro", "core"),
    ("repro", "sim"),
)

#: Packages holding victim-selection / policy-enumeration code, where
#: iteration order feeds directly into simulated decisions.
ORDERING_PACKAGES: Tuple[Tuple[str, ...], ...] = SIM_PACKAGES + (
    ("repro", "policies"),
)


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, addressable as path:line:col."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def module_parts_of(path: str) -> Tuple[str, ...]:
    """Dotted-module components of a file path, rooted at ``repro``.

    ``src/repro/mem/cache.py`` -> ``("repro", "mem", "cache")``; paths
    outside a ``repro`` tree map to their bare stem, which matches no
    package-scoped rule.
    """
    parts = re.split(r"[\\/]", path)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    parts = [p for p in parts if p]
    for idx in range(len(parts) - 1, -1, -1):
        if parts[idx] == "repro":
            return tuple(parts[idx:])
    return tuple(parts[-1:])


def _in_packages(module: Sequence[str],
                 packages: Sequence[Tuple[str, ...]]) -> bool:
    return any(tuple(module[:len(pkg)]) == pkg for pkg in packages)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: one code, one AST pass."""

    code: str = "SLIP000"
    name: str = "base"
    summary: str = ""

    def applies_to(self, module: Sequence[str]) -> bool:
        return True

    def check(self, tree: ast.AST, source: str, path: str,
              module: Sequence[str]) -> List[Finding]:
        raise NotImplementedError

    def _finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(path=path, line=node.lineno, col=node.col_offset,
                       code=self.code, message=message)


class UnseededRngRule(Rule):
    """SLIP001: RNG constructed without an explicit seed."""

    code = "SLIP001"
    name = "unseeded-rng"
    summary = ("random.Random() / np.random.default_rng() without an "
               "explicit seed breaks run-to-run determinism")

    _CTORS = ("Random", "default_rng")

    def check(self, tree, source, path, module):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf not in self._CTORS:
                continue
            if node.args or node.keywords:
                continue
            findings.append(self._finding(
                path, node,
                f"{dotted}() constructed without a seed; pass an explicit "
                f"seed so simulations are reproducible",
            ))
        return findings


class WallClockRule(Rule):
    """SLIP002: wall-clock reads inside simulator packages."""

    code = "SLIP002"
    name = "wall-clock-in-sim"
    summary = ("time.time()/datetime.now() inside repro.mem/core/sim; "
               "timing belongs only in the experiments layer")

    _BANNED = {
        "time.time", "time.perf_counter", "time.monotonic",
        "time.process_time", "time.time_ns", "time.perf_counter_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def applies_to(self, module):
        return _in_packages(module, SIM_PACKAGES)

    def check(self, tree, source, path, module):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in self._BANNED:
                findings.append(self._finding(
                    path, node,
                    f"{dotted}() read inside a simulator package; "
                    f"wall-clock timing belongs in repro.experiments only",
                ))
        return findings


class UnorderedIterationRule(Rule):
    """SLIP003: iteration over set / dict-.keys() in policy code."""

    code = "SLIP003"
    name = "unordered-iteration"
    summary = ("iteration over a set (or explicit .keys()) in "
               "victim-selection / policy-enumeration code; ordering "
               "hazard for determinism")

    def applies_to(self, module):
        return _in_packages(module, ORDERING_PACKAGES)

    def _offending(self, iter_node: ast.AST) -> Optional[str]:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return "a set expression"
        if isinstance(iter_node, ast.Call):
            dotted = _dotted_name(iter_node.func)
            if dotted in ("set", "frozenset"):
                return f"{dotted}(...)"
            if (isinstance(iter_node.func, ast.Attribute)
                    and iter_node.func.attr == "keys"
                    and not iter_node.args and not iter_node.keywords):
                return ".keys()"
        return None

    def check(self, tree, source, path, module):
        findings = []
        iters: List[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
        for iter_node in iters:
            what = self._offending(iter_node)
            if what is not None:
                findings.append(self._finding(
                    path, iter_node,
                    f"iteration over {what}: set order is not "
                    f"deterministic across runs; iterate a sorted() copy "
                    f"or an order-preserving container",
                ))
        return findings


class MutableDefaultRule(Rule):
    """SLIP004: mutable default argument."""

    code = "SLIP004"
    name = "mutable-default-arg"
    summary = "mutable default argument shared across calls"

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted in ("list", "dict", "set", "bytearray",
                              "collections.defaultdict",
                              "collections.Counter", "defaultdict",
                              "Counter")
        return False

    def check(self, tree, source, path, module):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(self._finding(
                        path, default,
                        f"mutable default argument in {node.name}(); "
                        f"use None and allocate inside the function",
                    ))
        return findings


class FloatSumRule(Rule):
    """SLIP005: builtin sum() over energy quantities."""

    code = "SLIP005"
    name = "float-sum-energy"
    summary = ("builtin sum() over picojoule floats; use math.fsum so "
               "energy ledgers are exact and order-independent")

    _ENERGY = re.compile(r"_pj\b|energy", re.IGNORECASE)
    _FUNC = re.compile(r"energy|_pj$", re.IGNORECASE)

    def check(self, tree, source, path, module):
        findings = []
        func_stack: List[str] = []

        def visit(node: ast.AST) -> None:
            is_func = isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
            if is_func:
                func_stack.append(node.name)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum"
                    and node.args):
                arg_src = ast.get_source_segment(source, node.args[0]) or ""
                in_energy_fn = bool(
                    func_stack and self._FUNC.search(func_stack[-1])
                )
                if self._ENERGY.search(arg_src) or in_energy_fn:
                    findings.append(self._finding(
                        path, node,
                        "builtin sum() accumulating energy floats; use "
                        "math.fsum for exact, order-independent "
                        "accumulation (or disable if the sum is integral)",
                    ))
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_func:
                func_stack.pop()

        visit(tree)
        return findings


class MissingSlotsRule(Rule):
    """SLIP006: record-like hot-path class without __slots__."""

    code = "SLIP006"
    name = "missing-slots"
    summary = ("plain record class on the simulator hot path without "
               "__slots__; per-instance dicts dominate memory and access "
               "time for per-line metadata")

    _MIN_ATTRS = 3

    def applies_to(self, module):
        return _in_packages(module, SIM_PACKAGES)

    def _record_attrs(self, init: ast.FunctionDef) -> Optional[int]:
        """Count of self attributes iff __init__ is a plain record."""
        attrs = set()
        body = init.body
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            body = body[1:]
        for stmt in body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            else:
                return None
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                return None
            attrs.add(target.attr)
        return len(attrs)

    def check(self, tree, source, path, module):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            # Decorated (dataclasses etc.) and subclassing types manage
            # their own layout; only plain record classes are flagged.
            if node.decorator_list or node.bases:
                continue
            has_slots = any(
                isinstance(stmt, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets)
                for stmt in node.body
            )
            if has_slots:
                continue
            # A record holds data, it doesn't behave: any method beyond
            # __init__ / reset / dunders means this is a behavior class
            # whose instance count the linter cannot bound.
            methods = [stmt for stmt in node.body
                       if isinstance(stmt, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))]
            if any(m.name not in ("__init__", "reset")
                   and not (m.name.startswith("__")
                            and m.name.endswith("__"))
                   for m in methods):
                continue
            init = next(
                (stmt for stmt in methods if stmt.name == "__init__"),
                None,
            )
            if init is None:
                continue
            count = self._record_attrs(init)
            if count is not None and count >= self._MIN_ATTRS:
                findings.append(self._finding(
                    path, node,
                    f"class {node.name} is a plain {count}-field record "
                    f"in a simulator package but defines no __slots__",
                ))
        return findings


class EnergyAugAssignRule(Rule):
    """SLIP007: float += onto a picojoule stats field."""

    code = "SLIP007"
    name = "energy-augmented-assign"
    summary = ("augmented += onto a *_pj stats attribute in simulator "
               "code; repeated float accumulation drifts from the exact "
               "product — bump an integer event counter and materialize "
               "the energy once at the stats boundary")

    def applies_to(self, module):
        return _in_packages(module, SIM_PACKAGES)

    def check(self, tree, source, path, module):
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Attribute)
                    and node.target.attr.endswith("_pj")):
                continue
            target = _dotted_name(node.target) or node.target.attr
            findings.append(self._finding(
                path, node,
                f"float accumulation onto {target}: sequential += "
                f"drifts from the exact product (ULP error per add); "
                f"count integer events and materialize energy once, or "
                f"disable with a justification if the ledger has no "
                f"event-count source of truth",
            ))
        return findings


#: Registry, in code order. lint.py and the docs both derive from this.
RULES: Tuple[Rule, ...] = (
    UnseededRngRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    MutableDefaultRule(),
    FloatSumRule(),
    MissingSlotsRule(),
    EnergyAugAssignRule(),
)


# ----------------------------------------------------------------------
# Pragma handling
# ----------------------------------------------------------------------
_PRAGMA = re.compile(
    r"#\s*(?P<tool>slip-lint|slip-audit)\s*:\s*"
    r"disable(?P<file>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)


def _parse_codes(raw: str) -> Tuple[str, ...]:
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def suppressed(findings: List[Finding], source: str,
               tool: str = "slip-lint") -> List[Finding]:
    """Drop findings disabled by line or file pragmas.

    Pragmas are tool-scoped: ``# slip-audit: disable=SLIP013`` only
    suppresses slip-audit findings, never slip-lint's, and vice versa.
    """
    lines = source.splitlines()
    file_disabled: set = set()
    line_disabled: dict = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if not match or match.group("tool") != tool:
            continue
        codes = _parse_codes(match.group("codes"))
        if match.group("file"):
            file_disabled.update(codes)
        else:
            line_disabled.setdefault(lineno, set()).update(codes)

    def keep(finding: Finding) -> bool:
        if "ALL" in file_disabled or finding.code in file_disabled:
            return False
        on_line = line_disabled.get(finding.line, ())
        return not ("ALL" in on_line or finding.code in on_line)

    return [f for f in findings if keep(f)]


def lint_source(source: str, path: str = "<string>",
                module: Optional[Sequence[str]] = None,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string; the core entry point behind the CLI.

    ``module`` overrides the dotted-module derivation from ``path``
    (used by tests to exercise package-scoped rules on fixture text).
    ``select`` restricts to a subset of rule codes.
    """
    if module is None:
        module = module_parts_of(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        # SLIP999 is always-on by construction: this return precedes
        # the ``select`` filter below, so a parse failure is reported
        # even under the narrowest ``--select``.
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, code=SYNTAX_ERROR_CODE,
                        message=f"syntax error: {exc.msg}")]
    findings: List[Finding] = []
    wanted = {c.upper() for c in select} if select else None
    for rule in RULES:
        if wanted is not None and rule.code not in wanted:
            continue
        if not rule.applies_to(module):
            continue
        findings.extend(rule.check(tree, source, path, module))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return suppressed(findings, source)
