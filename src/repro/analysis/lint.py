"""slip-lint command-line driver.

Usage::

    slip-lint src/                      # console entry point
    python -m repro.analysis.lint src/  # equivalent module form
    slip-lint --format json src/ tests/
    slip-lint --select SLIP001,SLIP005 src/repro/mem/cache.py
    slip-lint --list-rules

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, List, Optional

from .reporting import render_json, render_rule_catalog, render_text
from .rules import RULES, SYNTAX_ERROR_CODE, Finding, lint_source

#: Directory names never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".ruff_cache", ".pytest_cache"}


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(out))


def read_source(file_path: str) -> "tuple[Optional[str], Optional[Finding]]":
    """Read one source file; (source, None) or (None, SLIP999 finding).

    A file that is not valid UTF-8 (or is unreadable) must not abort
    the whole scan: it becomes a per-file always-on finding — the same
    contract as a syntax error — and the scan continues.
    """
    try:
        with open(file_path, "r", encoding="utf-8") as handle:
            return handle.read(), None
    except UnicodeDecodeError as exc:
        return None, Finding(
            path=file_path, line=1, col=0, code=SYNTAX_ERROR_CODE,
            message=(f"file is not valid UTF-8 "
                     f"(byte offset {exc.start}): {exc.reason}"))
    except OSError as exc:
        return None, Finding(
            path=file_path, line=1, col=0, code=SYNTAX_ERROR_CODE,
            message=f"cannot read file: {exc.strerror or exc}")


def lint_paths(paths: Iterable[str],
               select: Optional[List[str]] = None
               ) -> "tuple[List[Finding], int]":
    """Lint every .py file under ``paths``; (findings, files_scanned)."""
    files = discover_files(paths)
    findings: List[Finding] = []
    for file_path in files:
        source, failure = read_source(file_path)
        if failure is not None:
            findings.append(failure)
            continue
        findings.extend(lint_source(source, path=file_path, select=select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, len(files)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slip-lint",
        description=("Simulator-specific static analysis for the SLIP "
                     "reproduction (determinism and energy-accounting "
                     "hazards)."),
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("slip-lint: error: no paths given", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [c.strip().upper() for c in args.select.split(",")
                  if c.strip()]
        known = {rule.code for rule in RULES} | {"SLIP999"}
        unknown = [c for c in select if c not in known]
        if unknown:
            print(f"slip-lint: error: unknown rule code(s) "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        findings, files_scanned = lint_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        print(f"slip-lint: error: no such file or directory: {exc}",
              file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings, files_scanned))
    else:
        print(render_text(findings, files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":  # python -m repro.analysis.lint
    raise SystemExit(main())
