"""Static analysis and runtime invariant checking ("SimCheck").

Two pillars keep the reproduction's accounting trustworthy:

* :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` — the
  ``slip-lint`` AST pass with simulator-specific rules (SLIP001...),
  runnable as ``slip-lint src/`` or ``python -m repro.analysis.lint``;
* :mod:`repro.analysis.invariants` — the ``REPRO_CHECK_INVARIANTS=1``
  runtime mode installing conservation/consistency checkers on every
  :class:`~repro.mem.hierarchy.MemoryHierarchy`.

See ANALYSIS.md for the rule catalog and invariant reference.
"""

from .invariants import (
    HierarchyInvariantChecker,
    InvariantViolation,
    LevelChecker,
    check_capture_replay,
    check_period,
    invariants_enabled,
    maybe_install,
)
from .rules import RULES, Finding, lint_source, module_parts_of


def __getattr__(name):
    # Lazy so `python -m repro.analysis.lint` doesn't import the CLI
    # module twice (runpy warns when __init__ eagerly imports it).
    if name == "lint_paths":
        from .lint import lint_paths

        return lint_paths
    raise AttributeError(name)

__all__ = [
    "RULES",
    "Finding",
    "HierarchyInvariantChecker",
    "InvariantViolation",
    "LevelChecker",
    "check_capture_replay",
    "check_period",
    "invariants_enabled",
    "lint_paths",
    "lint_source",
    "maybe_install",
    "module_parts_of",
]
