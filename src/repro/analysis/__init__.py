"""Static analysis and runtime invariant checking ("SimCheck").

Two pillars keep the reproduction's accounting trustworthy:

* :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` — the
  ``slip-lint`` AST pass with simulator-specific rules (SLIP001...),
  runnable as ``slip-lint src/`` or ``python -m repro.analysis.lint``;
* :mod:`repro.analysis.audit` (on :mod:`repro.analysis.dataflow` and
  :mod:`repro.analysis.effects`) — the ``slip-audit`` twin-path drift
  and determinism-taint pass (SLIP010-SLIP014), runnable as
  ``slip-audit src/`` or ``python -m repro.analysis.audit``;
* :mod:`repro.analysis.invariants` — the ``REPRO_CHECK_INVARIANTS=1``
  runtime mode installing conservation/consistency checkers on every
  :class:`~repro.mem.hierarchy.MemoryHierarchy`.

See ANALYSIS.md for the rule catalog and invariant reference.
"""

from .invariants import (
    HierarchyInvariantChecker,
    InvariantViolation,
    LevelChecker,
    check_capture_replay,
    check_period,
    invariants_enabled,
    maybe_install,
)
from .rules import RULES, Finding, lint_source, module_parts_of


_AUDIT_EXPORTS = ("audit_paths", "audit_sources", "TWIN_REGISTRY",
                  "AUDIT_RULES", "TwinPair", "explain_pair")


def __getattr__(name):
    # Lazy so `python -m repro.analysis.lint` (or `.audit`) doesn't
    # import the CLI module twice (runpy warns when __init__ eagerly
    # imports it).
    if name == "lint_paths":
        from .lint import lint_paths

        return lint_paths
    if name in _AUDIT_EXPORTS:
        from . import audit

        return getattr(audit, name)
    raise AttributeError(name)

__all__ = [
    "AUDIT_RULES",
    "RULES",
    "Finding",
    "TWIN_REGISTRY",
    "TwinPair",
    "audit_paths",
    "audit_sources",
    "explain_pair",
    "HierarchyInvariantChecker",
    "InvariantViolation",
    "LevelChecker",
    "check_capture_replay",
    "check_period",
    "invariants_enabled",
    "lint_paths",
    "lint_source",
    "maybe_install",
    "module_parts_of",
]
