"""Per-function effect summaries and interprocedural expansion.

Built on :mod:`repro.analysis.dataflow`, this module answers the
question the twin-path audit needs: *which counters can this function
mutate, directly or through its callees?*

An :class:`EffectSummary` records, for one function body:

* every attribute/subscript **write path** (normalized through the
  local alias environment — ``stats = level.stats; stats.hits += 1``
  records ``level.stats.hits``);
* every **call site** with its normalized receiver path;
* the direct **counter write sites** (key, line) — the unit of the
  mutation tests: delete one line and the site multiset changes.

:func:`counter_key` classifies a write path into the repo's accounting
vocabulary: any path through a ``stats`` or ``counters`` segment is a
counter (keyed from that segment on, so ``level.stats.insertions`` and
``self.stats.insertions`` agree), and a small set of structural state
tails (``valid_count``, ``_clock``, ``_alloc_rotor``,
``access_counter``) are compared by bare tail name because fast paths
reach them through attach-time aliases (``self._replacement._clock``)
that intraprocedural analysis cannot connect to ``level.replacement``.

:class:`SummaryIndex` holds every function of the analyzed tree and
computes **expanded** write sets: a function's own writes plus the
(receiver-substituted) expanded writes of everything it calls. Call
resolution is name-based — same-class methods win for ``self.`` calls,
bare names resolve to module-level functions, anything else falls back
to a global method-name index — with a cycle guard and memoization so
the whole tree expands in one linear pass. The resolution is a
deliberate over-approximation: twin comparisons subtract symmetric
noise, and each registry pair carries an ``ignore`` set for the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from .dataflow import (
    SUBSCRIPT,
    FunctionInfo,
    dotted_path,
    index_functions,
    path_segments,
    resolve_guard_branch,
    terminal_attr,
)

#: Path segments that anchor the accounting vocabulary.
COUNTER_SEGMENTS = ("stats", "counters")

#: Structural state mutated by both fused and checked paths, reached
#: through different aliases; compared by bare tail attribute name.
STATE_COUNTER_TAILS = frozenset({
    "valid_count", "_clock", "_alloc_rotor", "access_counter",
})

#: Receiver sentinel for attribute calls whose base expression has no
#: normalizable path (``type(x).foo()``, chained call results).
UNKNOWN_RECEIVER = "<expr>"


def counter_key(path: str) -> Optional[str]:
    """Classify a normalized write path as an accounting counter.

    Returns the counter key (``stats.demand_hits``,
    ``counters.l1_hits``, ``stats.wb_out_events[]``, bare ``_clock``)
    or ``None`` for non-accounting state.
    """
    segments = path_segments(path)
    for idx, segment in enumerate(segments):
        if segment.replace(SUBSCRIPT, "") in COUNTER_SEGMENTS:
            return ".".join([segment.replace(SUBSCRIPT, "")]
                            + segments[idx + 1:])
    tail = terminal_attr(path)
    if tail in STATE_COUNTER_TAILS:
        return tail
    return None


def counter_keys(paths: Iterable[str]) -> Set[str]:
    """The set of counter keys among a collection of write paths."""
    out: Set[str] = set()
    for path in paths:
        key = counter_key(path)
        if key is not None:
            out.add(key)
    return out


@dataclass(frozen=True)
class CallSite:
    """One call expression: receiver path (or None for bare names)."""

    receiver: Optional[str]
    name: str
    line: int


@dataclass(frozen=True)
class EffectSummary:
    """Intraprocedural effects of one function body."""

    writes: FrozenSet[str]
    calls: Tuple[CallSite, ...]
    counter_sites: Tuple[Tuple[str, int], ...]   # (key, line), direct


class _Extractor:
    """One forward pass over a function body collecting effects."""

    def __init__(self, assume: Optional[Mapping[str, bool]]) -> None:
        self.assume = dict(assume or {})
        self.aliases: Dict[str, str] = {}
        self.writes: Set[str] = set()
        self.calls: List[CallSite] = []
        self.counter_sites: List[Tuple[str, int]] = []

    # -- expressions ---------------------------------------------------
    def collect_calls(self, expr: Optional[ast.AST]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node)

    def _record_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = dotted_path(func.value, self.aliases)
            if receiver is None:
                receiver = UNKNOWN_RECEIVER
            self.calls.append(CallSite(receiver, func.attr, call.lineno))
        elif isinstance(func, ast.Name):
            aliased = self.aliases.get(func.id)
            if aliased and "." in aliased:
                # Hoisted bound method: wb = h._writeback_below_l1; wb(x)
                receiver, _, name = aliased.rpartition(".")
                self.calls.append(CallSite(receiver, name, call.lineno))
            else:
                self.calls.append(CallSite(None, func.id, call.lineno))

    # -- write targets -------------------------------------------------
    def _kill_name(self, name: str) -> None:
        self.aliases.pop(name, None)

    def _write_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._kill_name(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(elt)
            return
        if isinstance(target, ast.Starred):
            self._write_target(target.value)
            return
        path = dotted_path(target, self.aliases)
        if path is None:
            return
        self.writes.add(path)
        key = counter_key(path)
        if key is not None:
            self.counter_sites.append((key, getattr(target, "lineno", 0)))

    # -- statements ----------------------------------------------------
    def process(self, stmts: Iterable[ast.stmt]) -> bool:
        """Process a statement sequence; True if control cannot fall
        through past it (it ends in ``return``/``raise``/... under the
        current guard assumptions). Statements after the terminator are
        unreachable and contribute nothing — this is what separates the
        two sides of a ``if not gate: return general()`` dispatch."""
        for stmt in stmts:
            if self._stmt(stmt):
                return True
        return False

    def _stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Assign):
            self.collect_calls(stmt.value)
            value_path = dotted_path(stmt.value, self.aliases)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value_path is not None:
                        self.aliases[target.id] = value_path
                    else:
                        self._kill_name(target.id)
                else:
                    self.collect_calls(target)   # index expressions
                    self._write_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            self.collect_calls(stmt.value)
            if isinstance(stmt.target, ast.Name):
                value_path = (dotted_path(stmt.value, self.aliases)
                              if stmt.value is not None else None)
                if value_path is not None:
                    self.aliases[stmt.target.id] = value_path
                else:
                    self._kill_name(stmt.target.id)
            elif stmt.value is not None:
                self.collect_calls(stmt.target)
                self._write_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            self.collect_calls(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._kill_name(stmt.target.id)
            else:
                self.collect_calls(stmt.target)
                self._write_target(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._kill_name(target.id)
                else:
                    self.collect_calls(target)
                    self._write_target(target)
        elif isinstance(stmt, ast.Expr):
            self.collect_calls(stmt.value)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.collect_calls(getattr(stmt, "value", None))
            self.collect_calls(getattr(stmt, "exc", None))
            self.collect_calls(getattr(stmt, "cause", None))
            return True
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            # Terminal for the enclosing block (statements after it in
            # the same suite never run in any iteration); the loop
            # itself still falls through.
            return True
        elif isinstance(stmt, ast.Assert):
            self.collect_calls(stmt.test)
            self.collect_calls(stmt.msg)
        elif isinstance(stmt, ast.If):
            self.collect_calls(stmt.test)
            branch = resolve_guard_branch(stmt, self.assume)
            if branch is not None:
                return self.process(branch)
            body_term = self.process(stmt.body)
            orelse_term = self.process(stmt.orelse)
            return body_term and bool(stmt.orelse) and orelse_term
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.collect_calls(stmt.iter)
            self._write_target(stmt.target)
            self.process(stmt.body)
            self.process(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.collect_calls(stmt.test)
            self.process(stmt.body)
            self.process(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.collect_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._write_target(item.optional_vars)
            return self.process(stmt.body)
        elif isinstance(stmt, ast.Try):
            # Conservative: any prefix of the body may raise into a
            # handler, so nothing here is treated as terminal.
            self.process(stmt.body)
            for handler in stmt.handlers:
                self.process(handler.body)
            self.process(stmt.orelse)
            self.process(stmt.finalbody)
        # FunctionDef / ClassDef / Import / Pass / Global / Nonlocal:
        # no effects at this scope.
        return False


def extract_effects(fn: ast.AST,
                    assume: Optional[Mapping[str, bool]] = None
                    ) -> EffectSummary:
    """Intraprocedural effect summary of one function node.

    ``assume`` maps gate attribute names to an assumed truth value;
    ``if`` tests that are exactly one gate read are resolved to the
    matching branch (see :func:`dataflow.resolve_guard_branch`), which
    is how the same source yields fused-path and reference-path
    summaries.
    """
    extractor = _Extractor(assume)
    extractor.process(getattr(fn, "body", []))
    return EffectSummary(
        writes=frozenset(extractor.writes),
        calls=tuple(extractor.calls),
        counter_sites=tuple(extractor.counter_sites),
    )


def substitute_receiver(path: str, receiver: Optional[str]) -> str:
    """Rebase a callee's ``self.``-rooted write path onto the caller's
    receiver: callee ``self.stats.insertions`` called as
    ``level.place_fill(...)`` becomes ``level.stats.insertions``."""
    root, sep, rest = path.partition(".")
    if root in ("self", "cls") and receiver not in (None, UNKNOWN_RECEIVER):
        return f"{receiver}{sep}{rest}" if sep else str(receiver)
    return path


class SummaryIndex:
    """All functions of an analyzed tree, with expansion and memoization.

    ``trees`` maps file path -> parsed module AST. Functions are
    addressable by qualified name (``ClassName.method`` or bare
    function name); collisions across files keep every definition and
    :meth:`find` returns the first in sorted-path order.
    """

    def __init__(self, trees: Mapping[str, ast.AST]) -> None:
        self.functions: List[FunctionInfo] = []
        self.by_qualname: Dict[str, List[FunctionInfo]] = {}
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for path in sorted(trees):
            for info in index_functions(trees[path], path):
                self.functions.append(info)
                self.by_qualname.setdefault(info.qualname, []).append(info)
                self.by_name.setdefault(info.name, []).append(info)
        self._summaries: Dict[Tuple[int, FrozenSet], EffectSummary] = {}
        self._expanded: Dict[Tuple[int, FrozenSet], FrozenSet[str]] = {}
        self._in_progress: Set[Tuple[int, FrozenSet]] = set()

    # -- lookup --------------------------------------------------------
    def find(self, qualname: str) -> Optional[FunctionInfo]:
        candidates = self.by_qualname.get(qualname)
        return candidates[0] if candidates else None

    def resolve_call(self, caller: FunctionInfo,
                     call: CallSite) -> List[FunctionInfo]:
        """Name-based callee resolution (see module docstring)."""
        if call.receiver == "self" and caller.cls is not None:
            own = self.by_qualname.get(f"{caller.cls}.{call.name}")
            if own:
                return own[:1]
        candidates = self.by_name.get(call.name, [])
        if call.receiver is None:
            # Bare-name call: only same-file module-level functions can
            # match. Constructors and builtins stay out, and a local
            # variable that happens to share a name with some other
            # module's function (`run = _RUNNERS[kind]; run(...)`)
            # cannot drag that module's writes into the summary.
            return [c for c in candidates
                    if c.cls is None and c.path == caller.path]
        return list(candidates)

    # -- summaries -----------------------------------------------------
    @staticmethod
    def _key(info: FunctionInfo,
             assume: Optional[Mapping[str, bool]]) -> Tuple[int, FrozenSet]:
        return (id(info.node), frozenset((assume or {}).items()))

    def summary(self, info: FunctionInfo,
                assume: Optional[Mapping[str, bool]] = None
                ) -> EffectSummary:
        key = self._key(info, assume)
        if key not in self._summaries:
            self._summaries[key] = extract_effects(info.node, assume)
        return self._summaries[key]

    def expanded_writes(self, info: FunctionInfo,
                        assume: Optional[Mapping[str, bool]] = None
                        ) -> FrozenSet[str]:
        """Write paths of ``info`` plus its transitive callees.

        ``assume`` conditions only the top-level function; callees are
        expanded unconditioned (their own gates stay may-effects).
        Cycles fall back to the in-progress function's intraprocedural
        writes.
        """
        key = self._key(info, assume)
        cached = self._expanded.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return self.summary(info, assume).writes
        self._in_progress.add(key)
        try:
            summary = self.summary(info, assume)
            writes = set(summary.writes)
            for call in summary.calls:
                for callee in self.resolve_call(info, call):
                    if callee.node is info.node:
                        continue
                    for sub in self.expanded_writes(callee):
                        writes.add(substitute_receiver(sub, call.receiver))
            result = frozenset(writes)
        finally:
            self._in_progress.discard(key)
        self._expanded[key] = result
        return result

    def expanded_counter_keys(self, info: FunctionInfo,
                              assume: Optional[Mapping[str, bool]] = None
                              ) -> Set[str]:
        """Counter keys reachable from ``info`` (writes + callees)."""
        return counter_keys(self.expanded_writes(info, assume))

    def direct_counter_sites(self, info: FunctionInfo,
                             assume: Optional[Mapping[str, bool]] = None
                             ) -> Sequence[Tuple[str, int]]:
        """Direct (un-expanded) counter write sites of ``info``."""
        return self.summary(info, assume).counter_sites
