"""slip-audit: twin-path effect auditing + determinism taint analysis.

PRs 3-6 cloned the accounting hot paths into fused "twins": a fast
body that inlines the counter bumps (legal only under stock LRU with
no SimCheck wrappers) and a reference body built from the accounting
primitives. Runtime goldens prove the twins byte-identical *on the
traces we run*; this tool proves the stronger static property — both
paths mutate the same counters — before anything runs, and catches a
counter added to one twin and forgotten in the other at lint time.

Two analysis families, built on :mod:`repro.analysis.dataflow` /
:mod:`repro.analysis.effects` and sharing slip-lint's Finding,
reporting, pragma and ``--select`` machinery:

* **Twin-path drift** (SLIP010/011/012) — each fast/reference pair is
  declared in :data:`TWIN_REGISTRY` with its shared counter write-set
  and the expected per-side differences. The effect engine computes
  both sides' reachable counter writes (gated pairs: the same function
  under guards-assumed-True vs guards-assumed-False; explicit pairs:
  two functions) and diffs them against the registration.
* **Determinism taint** (SLIP013/014) — a flow-sensitive walk tracking
  values derived from ``os.environ`` / ``time.*`` / unseeded RNGs /
  set iteration into counter writes (the stats that
  ``RunResult.to_dict`` publishes), with kills on reassignment — the
  flows SLIP001-003's syntactic rules cannot see.

Usage::

    slip-audit src/
    python -m repro.analysis.audit src/      # equivalent module form
    slip-audit --format json --select SLIP013,SLIP014 src/
    slip-audit --list-rules
    slip-audit --explain-pair slip-fill src/  # computed write-sets

Exit codes match slip-lint: 0 clean, 1 findings, 2 usage error.
Suppressions use the same pragma grammar under the ``slip-audit``
tool name: ``# slip-audit: disable=SLIP013`` (or ``disable-file=``).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from .dataflow import FunctionInfo, split_guard_test, taint_function
from .effects import SummaryIndex, counter_key, extract_effects
from .reporting import render_json, render_rule_catalog, render_text
from .rules import SYNTAX_ERROR_CODE, Finding, module_parts_of, suppressed

#: Packages whose functions the taint pass and gate scan cover. The
#: effect engine itself indexes every scanned file (callee resolution
#: needs the whole tree), but findings are only raised for simulator /
#: policy / experiment code.
AUDIT_PACKAGES: Tuple[Tuple[str, ...], ...] = (
    ("repro", "mem"),
    ("repro", "core"),
    ("repro", "sim"),
    ("repro", "policies"),
    ("repro", "workloads"),
    ("repro", "experiments"),
)

#: Attribute names that mark a fused fast-path gate when tested by an
#: ``if``: `_fast_fill`, `_l1_fast`, `_l2_hit_fast`, `_unchecked`, ...
GATE_ATTR = re.compile(r"(?:^|_)(?:fast|unchecked)(?:_|$)")

#: Twin annotation comments placed next to registered functions.
_ANNOTATION = re.compile(
    r"#\s*slip-audit\s*:\s*twin\s*=\s*(?P<pair>[A-Za-z0-9_-]+)"
    r"\s+role\s*=\s*(?P<role>fast|ref)"
)


# ----------------------------------------------------------------------
# Rule metadata (catalog / --select)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AuditRule:
    code: str
    name: str
    summary: str


AUDIT_RULES: Tuple[AuditRule, ...] = (
    AuditRule("SLIP010", "twin-missing-write",
              "a registered twin-pair counter is no longer written by "
              "one side (fused or reference) of the pair"),
    AuditRule("SLIP011", "twin-unregistered-write",
              "a twin path writes a counter outside the registered "
              "shared/side write-sets, or a duplicated counter's "
              "write-site count changed"),
    AuditRule("SLIP012", "unregistered-fast-gate",
              "a fast-gated branch (_fast/_unchecked test) mutates "
              "counters without a registered + annotated twin pair"),
    AuditRule("SLIP013", "tainted-stats-write",
              "a value derived from os.environ/time/unseeded-RNG/"
              "set-iteration flows into a published counter"),
    AuditRule("SLIP014", "tainted-stats-guard",
              "a counter write is control-dependent on a "
              "nondeterministic condition"),
)


# ----------------------------------------------------------------------
# Twin registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TwinPair:
    """One registered fast/reference pair.

    ``fast`` and ``refs`` are qualified names (``Class.method`` or a
    module-level function name). When ``guards`` is non-empty the
    reference side is the *same* function with every gate assumed
    False (the dispatch/checked branches); ``refs`` then documents the
    reference implementations for annotation checking only. With no
    guards, the reference side is the union of the ``refs`` functions.

    ``shared`` must be written by both sides; ``fast_only`` is the
    exact expected fast-minus-reference difference and ``ref_only``
    the reference-minus-fast difference. ``site_counts`` pins the
    number of direct fast-side write sites for counters written more
    than once (a set comparison alone would miss deleting one of two
    duplicated bumps); ``ref_site_counts`` pins the direct counter
    sites of the ``refs`` functions themselves, which catches a
    deleted reference-side bump even when the same key stays reachable
    through a callee (``record_bypass`` also touches
    ``insertions_by_class``, so the expanded *set* would not notice).
    ``ignore`` drops engine noise from both sides before any
    comparison.
    """

    pair_id: str
    fast: str
    refs: Tuple[str, ...] = ()
    guards: Tuple[str, ...] = ()
    shared: FrozenSet[str] = frozenset()
    fast_only: FrozenSet[str] = frozenset()
    ref_only: FrozenSet[str] = frozenset()
    site_counts: Mapping[str, int] = field(default_factory=dict)
    ref_site_counts: Mapping[str, int] = field(default_factory=dict)
    ignore: FrozenSet[str] = frozenset()


TWIN_REGISTRY: Tuple[TwinPair, ...] = (
    # Every shared / fast_only / ref_only / site_counts value below is
    # the engine's own computed output on the current tree, pinned
    # (run `slip-audit --explain-pair <id> src/` to regenerate after a
    # deliberate accounting change). `shared` lists the counters the
    # fused body bumps directly — the keys a hand edit is most likely
    # to touch; `site_counts` pins how many direct fused write sites
    # each has, so deleting one of two duplicated bumps (which leaves
    # the key *set* unchanged) still fires.
    TwinPair(
        pair_id="baseline-fill",
        fast="BaselinePlacement.fill",
        refs=("BaselinePlacement._fill_general",),
        guards=("_fast_fill",),
        shared=frozenset({
            "_alloc_rotor", "_clock", "valid_count",
            "stats.insert_events[]", "stats.insertions",
            "stats.insertions_by_class[]", "stats.metadata_events",
            "stats.reuse_histogram[]", "stats.wb_out_events[]",
            "stats.writebacks_out",
        }),
        site_counts={
            "_alloc_rotor": 1, "_clock": 1, "valid_count": 1,
            "stats.insert_events[]": 1, "stats.insertions": 1,
            "stats.insertions_by_class[]": 1,
            "stats.metadata_events": 1, "stats.reuse_histogram[]": 1,
            "stats.wb_out_events[]": 1, "stats.writebacks_out": 1,
        },
        # _fill_general's only direct counter line; the rest of its
        # accounting flows through choose_victim/place_fill callees.
        ref_site_counts={"stats.insertions_by_class[]": 1},
    ),
    TwinPair(
        pair_id="slip-fill",
        fast="SlipPlacement.fill",
        refs=("SlipPlacement._fill_general",),
        guards=("_fast_fill",),
        shared=frozenset({
            "_alloc_rotor", "_clock", "valid_count",
            "stats.bypasses", "stats.dirty_bypass_forwards",
            "stats.energy.movement_queue_pj", "stats.insert_events[]",
            "stats.insertions", "stats.insertions_by_class[]",
            "stats.metadata_events", "stats.move_read_events[]",
            "stats.move_write_events[]", "stats.movements",
            "stats.reuse_histogram[]", "stats.wb_out_events[]",
            "stats.writebacks_out",
        }),
        site_counts={
            "_alloc_rotor": 1, "_clock": 1, "valid_count": 1,
            "stats.bypasses": 1, "stats.dirty_bypass_forwards": 1,
            "stats.insert_events[]": 1, "stats.insertions": 1,
            "stats.insertions_by_class[]": 2,   # ABP bypass + install
            "stats.metadata_events": 1, "stats.reuse_histogram[]": 1,
            "stats.wb_out_events[]": 1, "stats.writebacks_out": 1,
        },
        ref_site_counts={"stats.insertions_by_class[]": 1},
    ),
    TwinPair(
        pair_id="l1-access",
        fast="MemoryHierarchy.access",
        refs=("CacheLevel.record_hit", "CacheLevel.record_miss"),
        guards=("_l1_fast",),
        shared=frozenset({
            "_clock", "access_counter",
            "counters.demand_accesses", "counters.l1_hits",
            "counters.total_latency_cycles",
            "stats.demand_hits", "stats.demand_misses",
            "stats.hits_by_sublevel[]", "stats.read_events[]",
        }),
        site_counts={
            "_clock": 1, "access_counter": 1,
            "counters.demand_accesses": 1, "counters.l1_hits": 1,
            "counters.total_latency_cycles": 2,   # hit + miss legs
            "stats.demand_hits": 1, "stats.demand_misses": 1,
            "stats.hits_by_sublevel[]": 1, "stats.read_events[]": 1,
        },
        # Union over record_hit + record_miss direct bumps.
        ref_site_counts={
            "_clock": 1, "stats.demand_hits": 1, "stats.demand_misses": 1,
            "stats.hits_by_sublevel[]": 1, "stats.metadata_events": 2,
            "stats.metadata_hits": 1, "stats.metadata_misses": 1,
            "stats.read_events[]": 1,
        },
    ),
    TwinPair(
        pair_id="below-l1",
        fast="MemoryHierarchy._access_below_l1",
        refs=("CacheLevel.record_hit", "CacheLevel.record_miss"),
        guards=("_l2_hit_fast", "_l3_hit_fast", "_unchecked"),
        shared=frozenset({
            "_clock", "access_counter",
            "counters.dram_demand_reads", "counters.dram_metadata_reads",
            "stats.demand_hits", "stats.demand_misses",
            "stats.metadata_hits", "stats.metadata_misses",
            "stats.hits_by_sublevel[]", "stats.metadata_events",
            "stats.read_events[]",
        }),
        site_counts={
            # One site per level leg (L2 + L3), four metadata bumps
            # (hit/miss at each level).
            "_clock": 2, "access_counter": 2,
            "counters.dram_demand_reads": 1,
            "counters.dram_metadata_reads": 1,
            "stats.demand_hits": 2, "stats.demand_misses": 2,
            "stats.metadata_hits": 2, "stats.metadata_misses": 2,
            "stats.hits_by_sublevel[]": 2, "stats.metadata_events": 4,
            "stats.read_events[]": 2,
        },
        ref_site_counts={
            "_clock": 1, "stats.demand_hits": 1, "stats.demand_misses": 1,
            "stats.hits_by_sublevel[]": 1, "stats.metadata_events": 2,
            "stats.metadata_hits": 1, "stats.metadata_misses": 1,
            "stats.read_events[]": 1,
        },
    ),
    TwinPair(
        pair_id="wb-l2",
        fast="MemoryHierarchy._writeback_below_l1",
        refs=("CacheLevel.record_writeback_in",),
        guards=("_unchecked",),
        shared=frozenset({
            "access_counter", "counters.dram_writebacks",
            "stats.wb_in_events[]", "stats.writebacks_in",
            "stats.writes",
        }),
        site_counts={
            "access_counter": 1, "stats.wb_in_events[]": 1,
            "stats.writebacks_in": 1,
        },
        ref_site_counts={
            "stats.wb_in_events[]": 1, "stats.writebacks_in": 1,
        },
    ),
    TwinPair(
        pair_id="wb-l3",
        fast="MemoryHierarchy._writeback_to_l3",
        refs=("CacheLevel.record_writeback_in",),
        guards=("_unchecked",),
        shared=frozenset({
            "access_counter", "counters.dram_writebacks",
            "stats.wb_in_events[]", "stats.writebacks_in",
            "stats.writes",
        }),
        site_counts={
            "access_counter": 1, "stats.wb_in_events[]": 1,
            "stats.writebacks_in": 1,
        },
        ref_site_counts={
            "stats.wb_in_events[]": 1, "stats.writebacks_in": 1,
        },
    ),
    TwinPair(
        # optimize_direct deliberately bypasses the stats (it exists so
        # SimCheck's eou-memo invariant can re-derive answers without
        # perturbing the ledger): the pair registers an empty shared
        # set and the ledger counters as fast-only.
        pair_id="eou-optimize",
        fast="EnergyOptimizerUnit.optimize",
        refs=("EnergyOptimizerUnit.optimize_direct",),
        fast_only=frozenset({
            "stats.optimizations", "stats.tlb_block_cycles",
        }),
        site_counts={
            "stats.optimizations": 1, "stats.tlb_block_cycles": 1,
        },
    ),
    TwinPair(
        # The batched kernel publishes whole tallies through
        # LevelStats.adopt_counts (list assignments — no [] suffix),
        # where the scalar replay bumps element-wise through the
        # hierarchy twins; the side-sets record that shape difference.
        pair_id="vector-replay",
        fast="replay_capture_vector",
        refs=("_replay_events",),
        shared=frozenset({
            "counters.dram_demand_reads", "counters.dram_metadata_reads",
            "counters.dram_writebacks", "counters.total_latency_cycles",
            "stats.demand_hits", "stats.demand_misses",
            "stats.energy.movement_queue_pj", "stats.insertions",
            "stats.insertions_by_class[]", "stats.metadata_hits",
            "stats.metadata_misses", "stats.movements", "stats.reads",
            "stats.reuse_histogram[]", "stats.writebacks_in",
            "stats.writebacks_out", "stats.writes",
        }),
        fast_only=frozenset({
            "stats.hits_by_sublevel", "stats.insert_events",
            "stats.move_read_events", "stats.move_write_events",
            "stats.read_events", "stats.wb_in_events",
            "stats.wb_out_events",
        }),
        ref_only=frozenset({
            "_alloc_rotor", "_clock", "access_counter", "valid_count",
            "counters", "stats",
            "stats._metadata_pj", "stats._read_pj_table",
            "stats._write_pj_table", "stats.bypasses",
            "stats.dirty_bypass_forwards",
            "stats.energy.insertion_pj", "stats.energy.metadata_pj",
            "stats.energy.movement_pj", "stats.energy.read_pj",
            "stats.energy.writeback_pj", "stats.hits_by_sublevel[]",
            "stats.insert_events[]", "stats.insertion_pj",
            "stats.metadata_events", "stats.metadata_pj",
            "stats.move_read_events[]", "stats.move_write_events[]",
            "stats.movement_pj", "stats.read_events[]",
            "stats.read_pj", "stats.wb_in_events[]",
            "stats.wb_out_events[]", "stats.writeback_pj",
        }),
        site_counts={
            "counters.dram_demand_reads": 1,
            "counters.dram_metadata_reads": 1,
            "counters.dram_writebacks": 1,
            "counters.total_latency_cycles": 1,
            "stats.reads": 1, "stats.writes": 1,
        },
        ref_site_counts={"counters.total_latency_cycles": 1},
    ),
    TwinPair(
        # The SLIP phase-split kernel: the flat-array model keeps every
        # hot count in locals and publishes once through adopt_counts
        # (whole-tally assignments), while the scalar slip replay bumps
        # the same ledgers element-wise through the hierarchy/placement
        # twins. The live page machinery (sampler RNG, EOU, runtime
        # ledgers) is shared — the kernel drives the real runtime.
        pair_id="slip-vector-replay",
        fast="replay_capture_vector_slip",
        refs=("_replay_slip",),
        shared=frozenset({
            "counters", "counters.total_latency_cycles",
            "stats", "stats._metadata_pj", "stats._read_pj_table",
            "stats._write_pj_table",
            "stats.energy.insertion_pj", "stats.energy.metadata_pj",
            "stats.energy.movement_pj", "stats.energy.read_pj",
            "stats.energy.writeback_pj", "stats.hits",
            "stats.insertion_pj", "stats.metadata_pj",
            "stats.movement_pj", "stats.read_pj", "stats.writeback_pj",
        }),
        fast_only=frozenset({
            "counters.dram_demand_reads", "counters.dram_metadata_reads",
            "counters.dram_writebacks", "stats.bypasses",
            "stats.demand_hits", "stats.demand_misses",
            "stats.dirty_bypass_forwards", "stats.distribution_fetches",
            "stats.energy.movement_queue_pj", "stats.hits_by_sublevel",
            "stats.insert_events", "stats.insertions",
            "stats.insertions_by_class[]", "stats.metadata_events",
            "stats.metadata_hits", "stats.metadata_misses",
            "stats.misses", "stats.move_read_events",
            "stats.move_write_events", "stats.movements",
            "stats.optimizations", "stats.policy_recomputations",
            "stats.read_events", "stats.reads", "stats.reuse_histogram[]",
            "stats.state_transitions_to_sampling",
            "stats.state_transitions_to_stable", "stats.tlb_block_cycles",
            "stats.tlb_miss_fetches", "stats.wb_in_events",
            "stats.wb_out_events", "stats.writebacks_in",
            "stats.writebacks_out", "stats.writes",
        }),
        site_counts={
            "counters.dram_demand_reads": 1,
            "counters.dram_metadata_reads": 1,
            "counters.dram_writebacks": 1,
            "counters.total_latency_cycles": 1,
            "stats.hits": 1, "stats.misses": 1, "stats.reads": 1,
            "stats.tlb_miss_fetches": 1, "stats.writes": 1,
        },
        ref_site_counts={
            "counters.total_latency_cycles": 1, "stats.hits": 1,
        },
    ),
    TwinPair(
        # The batched front-end capture kernel vs the scalar shadowed
        # walk: both publish the frozen L1 through adopt_counts /
        # materialize (the large shared set), but the kernel assigns
        # whole tallies (no [] suffix) while the scalar walk drives the
        # live hierarchy — its element-wise bumps, TLB/runtime ledgers
        # and hierarchy counters are ref-only. Neither side bumps a
        # counter directly in its own body (everything flows through
        # callees), so both site-count maps are empty.
        pair_id="vector-frontend",
        fast="capture_front_end_vector",
        refs=("capture_front_end",),
        shared=frozenset({
            "stats._metadata_pj", "stats._read_pj_table",
            "stats._write_pj_table", "stats.bypasses",
            "stats.demand_hits", "stats.demand_misses",
            "stats.dirty_bypass_forwards",
            "stats.energy.insertion_pj", "stats.energy.metadata_pj",
            "stats.energy.movement_pj",
            "stats.energy.movement_queue_pj", "stats.energy.read_pj",
            "stats.energy.writeback_pj", "stats.insertion_pj",
            "stats.insertions", "stats.insertions_by_class[]",
            "stats.metadata_events", "stats.metadata_hits",
            "stats.metadata_misses", "stats.metadata_pj",
            "stats.movement_pj", "stats.movements", "stats.read_pj",
            "stats.reuse_histogram[]", "stats.writeback_pj",
            "stats.writebacks_in", "stats.writebacks_out",
        }),
        fast_only=frozenset({
            "stats.hits_by_sublevel", "stats.insert_events",
            "stats.move_read_events", "stats.move_write_events",
            "stats.read_events", "stats.wb_in_events",
            "stats.wb_out_events",
        }),
        ref_only=frozenset({
            "_alloc_rotor", "_clock", "access_counter", "counters",
            "counters.demand_accesses", "counters.dram_demand_reads",
            "counters.dram_metadata_reads", "counters.dram_writebacks",
            "counters.l1_hits", "counters.total_latency_cycles",
            "stats", "stats.distribution_fetches", "stats.energy_pj",
            "stats.hits", "stats.hits_by_sublevel[]",
            "stats.insert_events[]", "stats.misses",
            "stats.move_read_events[]", "stats.move_write_events[]",
            "stats.optimizations", "stats.policy_recomputations",
            "stats.read_events[]", "stats.reads",
            "stats.state_transitions_to_sampling",
            "stats.state_transitions_to_stable",
            "stats.tlb_block_cycles", "stats.tlb_miss_fetches",
            "stats.wb_in_events[]", "stats.wb_out_events[]",
            "stats.writes", "valid_count",
        }),
    ),
    TwinPair(
        # The composed direct pipeline (kernel capture -> kernel
        # replay behind run_trace) vs the golden scalar walk. Both
        # sides reach almost every counter through their callees (the
        # kernels publish via adopt_counts, the scalar walk drives the
        # live hierarchy), so the shared set is the union of the other
        # twin pairs' surfaces; the frozen-L1 restore assigns a whole
        # EnergyBreakdown object (fast-only ``stats.energy``) while the
        # live-runtime ledger fields the replay restores wholesale are
        # ref-only. Neither body bumps a counter directly.
        pair_id="replay-plan",
        fast="try_run_direct",
        refs=("_run_trace_scalar",),
        shared=frozenset({
            "_alloc_rotor", "_clock", "access_counter", "counters",
            "counters.demand_accesses", "counters.dram_demand_reads",
            "counters.dram_metadata_reads", "counters.dram_writebacks",
            "counters.l1_hits", "counters.total_latency_cycles",
            "stats", "stats._metadata_pj", "stats._read_pj_table",
            "stats._write_pj_table", "stats.bypasses",
            "stats.demand_hits", "stats.demand_misses",
            "stats.dirty_bypass_forwards",
            "stats.energy.insertion_pj", "stats.energy.metadata_pj",
            "stats.energy.movement_pj",
            "stats.energy.movement_queue_pj", "stats.energy.read_pj",
            "stats.energy.writeback_pj", "stats.energy_pj",
            "stats.hits", "stats.hits_by_sublevel[]",
            "stats.insert_events[]", "stats.insertion_pj",
            "stats.insertions", "stats.insertions_by_class[]",
            "stats.metadata_events", "stats.metadata_hits",
            "stats.metadata_misses", "stats.metadata_pj",
            "stats.move_read_events[]", "stats.move_write_events[]",
            "stats.movement_pj", "stats.movements",
            "stats.read_events[]", "stats.read_pj", "stats.reads",
            "stats.reuse_histogram[]", "stats.wb_in_events[]",
            "stats.wb_out_events[]", "stats.writeback_pj",
            "stats.writebacks_in", "stats.writebacks_out",
            "stats.writes", "valid_count",
        }),
        fast_only=frozenset({"stats.energy"}),
        ref_only=frozenset({
            "stats.distribution_fetches", "stats.misses",
            "stats.optimizations", "stats.policy_recomputations",
            "stats.state_transitions_to_sampling",
            "stats.state_transitions_to_stable",
            "stats.tlb_block_cycles", "stats.tlb_miss_fetches",
        }),
    ),
)

_PAIRS_BY_FAST: Dict[str, TwinPair] = {p.fast: p for p in TWIN_REGISTRY}
_PAIRS_BY_ID: Dict[str, TwinPair] = {p.pair_id: p for p in TWIN_REGISTRY}


def _finding(code: str, info: FunctionInfo, message: str,
             line: Optional[int] = None) -> Finding:
    return Finding(path=info.path, line=line or info.lineno, col=0,
                   code=code, message=message)


# ----------------------------------------------------------------------
# Annotations
# ----------------------------------------------------------------------
def parse_annotations(source: str) -> List[Tuple[int, str, str]]:
    """All ``# slip-audit: twin=<id> role=<fast|ref>`` comment lines."""
    out: List[Tuple[int, str, str]] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _ANNOTATION.finditer(text):
            out.append((lineno, match.group("pair"), match.group("role")))
    return out


def _attach_annotations(
    annotations: Mapping[str, List[Tuple[int, str, str]]],
    functions: Iterable[FunctionInfo],
) -> Dict[int, List[Tuple[str, str]]]:
    """Map id(function node) -> [(pair_id, role)].

    An annotation binds to the function whose body contains it, or to
    the next ``def`` starting within 3 lines below it.
    """
    by_path: Dict[str, List[FunctionInfo]] = {}
    for info in functions:
        by_path.setdefault(info.path, []).append(info)
    bound: Dict[int, List[Tuple[str, str]]] = {}
    for path, items in annotations.items():
        infos = sorted(by_path.get(path, []), key=lambda i: i.lineno)
        for lineno, pair_id, role in items:
            target = None
            for info in infos:
                if info.lineno <= lineno <= info.end_lineno:
                    target = info      # keep innermost (later) match
            if target is None:
                for info in infos:
                    if 0 < info.lineno - lineno <= 3:
                        target = info
                        break
            if target is not None:
                bound.setdefault(id(target.node), []).append(
                    (pair_id, role))
    return bound


# ----------------------------------------------------------------------
# Twin-path drift (SLIP010 / SLIP011 / SLIP012)
# ----------------------------------------------------------------------
def _pair_sides(index: SummaryIndex,
                pair: TwinPair) -> Optional[Tuple[Set[str], Set[str],
                                                  FunctionInfo]]:
    """(fast_keys, ref_keys, fast_info) for one pair, or None if the
    fast function is not in the analyzed tree."""
    fast = index.find(pair.fast)
    if fast is None:
        return None
    assume_true = {g: True for g in pair.guards}
    fast_keys = index.expanded_counter_keys(fast, assume_true)
    if pair.guards:
        assume_false = {g: False for g in pair.guards}
        ref_keys = index.expanded_counter_keys(fast, assume_false)
    else:
        ref_keys = set()
        for ref_name in pair.refs:
            ref = index.find(ref_name)
            if ref is not None:
                ref_keys |= index.expanded_counter_keys(ref)
    return (set(fast_keys) - pair.ignore,
            set(ref_keys) - pair.ignore, fast)


def check_twin_pairs(index: SummaryIndex) -> List[Finding]:
    findings: List[Finding] = []
    for pair in TWIN_REGISTRY:
        sides = _pair_sides(index, pair)
        if sides is None:
            continue
        fast_keys, ref_keys, fast = sides
        ref_desc = ("guard-false reference path" if pair.guards
                    else " + ".join(pair.refs))
        for key in sorted(pair.shared):
            if key not in fast_keys:
                findings.append(_finding(
                    "SLIP010", fast,
                    f"twin pair '{pair.pair_id}': shared counter "
                    f"'{key}' is registered but the fused path "
                    f"({pair.fast}) no longer writes it",
                ))
            if key not in ref_keys:
                findings.append(_finding(
                    "SLIP010", fast,
                    f"twin pair '{pair.pair_id}': shared counter "
                    f"'{key}' is registered but the reference path "
                    f"({ref_desc}) no longer writes it",
                ))
        for key in sorted(pair.fast_only):
            if key not in fast_keys:
                findings.append(_finding(
                    "SLIP010", fast,
                    f"twin pair '{pair.pair_id}': fast-only counter "
                    f"'{key}' is registered but no longer written by "
                    f"{pair.fast}",
                ))
        for key in sorted(pair.ref_only):
            if key not in ref_keys:
                findings.append(_finding(
                    "SLIP010", fast,
                    f"twin pair '{pair.pair_id}': reference-only "
                    f"counter '{key}' is registered but no longer "
                    f"written by the reference path ({ref_desc})",
                ))
        for key in sorted((fast_keys - ref_keys) - set(pair.fast_only)):
            findings.append(_finding(
                "SLIP011", fast,
                f"twin pair '{pair.pair_id}': fused path writes "
                f"counter '{key}' which the reference path never "
                f"writes and the registry does not allow as fast-only",
            ))
        for key in sorted((ref_keys - fast_keys) - set(pair.ref_only)):
            findings.append(_finding(
                "SLIP011", fast,
                f"twin pair '{pair.pair_id}': reference path writes "
                f"counter '{key}' which the fused path never writes "
                f"and the registry does not allow as reference-only",
            ))
        if pair.site_counts:
            assume_true = {g: True for g in pair.guards}
            counts = Counter(
                key for key, _ in
                index.direct_counter_sites(fast, assume_true)
            )
            for key in sorted(pair.site_counts):
                expected = pair.site_counts[key]
                got = counts.get(key, 0)
                if got != expected:
                    findings.append(_finding(
                        "SLIP011", fast,
                        f"twin pair '{pair.pair_id}': counter '{key}' "
                        f"has {got} direct write site(s) in the fused "
                        f"path, registry expects {expected}",
                    ))
        if pair.ref_site_counts:
            ref_counts: Counter = Counter()
            for ref_name in pair.refs:
                ref = index.find(ref_name)
                if ref is not None:
                    ref_counts.update(
                        key for key, _ in index.direct_counter_sites(ref)
                    )
            for key in sorted(pair.ref_site_counts):
                expected = pair.ref_site_counts[key]
                got = ref_counts.get(key, 0)
                if got != expected:
                    findings.append(_finding(
                        "SLIP011", fast,
                        f"twin pair '{pair.pair_id}': counter '{key}' "
                        f"has {got} direct write site(s) across the "
                        f"reference function(s) "
                        f"({' + '.join(pair.refs)}), registry expects "
                        f"{expected}",
                    ))
    return findings


def _gated_counter_ifs(info: FunctionInfo) -> List[Tuple[int, str]]:
    """(line, gate) for each ``if`` on a fast-gate attribute whose
    branches contain direct counter writes."""
    out: List[Tuple[int, str]] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.If):
            continue
        split = split_guard_test(node.test)
        if split is None or not GATE_ATTR.search(split[0]):
            continue
        branch_module = ast.Module(body=list(node.body) + list(node.orelse),
                                   type_ignores=[])
        summary = extract_effects(branch_module)
        if summary.counter_sites:
            out.append((node.lineno, split[0]))
    return out


def check_gates_and_annotations(
    index: SummaryIndex,
    annotations: Mapping[str, List[Tuple[int, str, str]]],
) -> List[Finding]:
    findings: List[Finding] = []
    in_scope = [info for info in index.functions
                if _in_audit_scope(info.path)]
    bound = _attach_annotations(annotations, in_scope)

    registered_refs: Dict[str, Set[str]] = {}
    for pair in TWIN_REGISTRY:
        for ref in pair.refs:
            registered_refs.setdefault(ref, set()).add(pair.pair_id)

    for info in in_scope:
        own = bound.get(id(info.node), [])
        # (1) gate tests over counter-mutating branches need a pair
        for line, gate in _gated_counter_ifs(info):
            pair = _PAIRS_BY_FAST.get(info.qualname)
            if pair is None or gate not in pair.guards:
                findings.append(_finding(
                    "SLIP012", info,
                    f"{info.qualname} gates counter writes on "
                    f"'{gate}' but is not the registered fast path "
                    f"of any twin pair covering that gate; register "
                    f"it in repro.analysis.audit.TWIN_REGISTRY and "
                    f"annotate it with "
                    f"'# slip-audit: twin=<id> role=fast'",
                    line=line,
                ))
        # (2) every annotation must match the registry
        for pair_id, role in own:
            pair = _PAIRS_BY_ID.get(pair_id)
            if pair is None:
                findings.append(_finding(
                    "SLIP012", info,
                    f"{info.qualname} is annotated for twin pair "
                    f"'{pair_id}' which is not in TWIN_REGISTRY",
                ))
            elif role == "fast" and pair.fast != info.qualname:
                findings.append(_finding(
                    "SLIP012", info,
                    f"{info.qualname} is annotated role=fast for "
                    f"pair '{pair_id}' but the registry names "
                    f"{pair.fast} as its fast path",
                ))
            elif role == "ref" and info.qualname not in pair.refs:
                findings.append(_finding(
                    "SLIP012", info,
                    f"{info.qualname} is annotated role=ref for "
                    f"pair '{pair_id}' but the registry's reference "
                    f"list is {list(pair.refs)}",
                ))
        # (3) registered functions must carry the annotation
        pair = _PAIRS_BY_FAST.get(info.qualname)
        if pair is not None and (pair.pair_id, "fast") not in own:
            findings.append(_finding(
                "SLIP012", info,
                f"{info.qualname} is the registered fast path of "
                f"twin pair '{pair.pair_id}' but carries no "
                f"'# slip-audit: twin={pair.pair_id} role=fast' "
                f"annotation",
            ))
        for pair_id in registered_refs.get(info.qualname, ()):
            if (pair_id, "ref") not in own:
                findings.append(_finding(
                    "SLIP012", info,
                    f"{info.qualname} is a registered reference path "
                    f"of twin pair '{pair_id}' but carries no "
                    f"'# slip-audit: twin={pair_id} role=ref' "
                    f"annotation",
                ))
    return findings


# ----------------------------------------------------------------------
# Determinism taint (SLIP013 / SLIP014)
# ----------------------------------------------------------------------
def _in_audit_scope(path: str) -> bool:
    return any(tuple(module_parts_of(path)[:len(pkg)]) == pkg
               for pkg in AUDIT_PACKAGES)


def check_taint(index: SummaryIndex) -> List[Finding]:
    findings: List[Finding] = []
    for info in index.functions:
        if not _in_audit_scope(info.path):
            continue
        for hit in taint_function(info.node, counter_key):
            if hit.kind == "write":
                findings.append(Finding(
                    path=info.path, line=hit.line, col=hit.col,
                    code="SLIP013",
                    message=(f"counter '{hit.sink}' in "
                             f"{info.qualname} receives a value "
                             f"derived from {hit.source}; published "
                             f"stats must not depend on "
                             f"nondeterministic sources"),
                ))
            else:
                findings.append(Finding(
                    path=info.path, line=hit.line, col=hit.col,
                    code="SLIP014",
                    message=(f"counter '{hit.sink}' in "
                             f"{info.qualname} is written under a "
                             f"condition derived from {hit.source}; "
                             f"the write becomes "
                             f"run-order-dependent"),
                ))
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def audit_sources(sources: Mapping[str, str],
                  select: Optional[Sequence[str]] = None
                  ) -> Tuple[List[Finding], int]:
    """Audit a set of in-memory sources (path -> text).

    The in-memory form is what the mutation tests use: lint a modified
    copy of the real tree without touching the working copy. SLIP999
    parse failures are always reported, regardless of ``select``.
    """
    findings: List[Finding] = []
    trees: Dict[str, ast.AST] = {}
    annotations: Dict[str, List[Tuple[int, str, str]]] = {}
    for path in sorted(sources):
        source = sources[path]
        try:
            trees[path] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(Finding(
                path=path, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, code=SYNTAX_ERROR_CODE,
                message=f"syntax error: {exc.msg}"))
            continue
        annotations[path] = parse_annotations(source)

    index = SummaryIndex(trees)
    raw: List[Finding] = []
    raw.extend(check_twin_pairs(index))
    raw.extend(check_gates_and_annotations(index, annotations))
    raw.extend(check_taint(index))

    if select:
        wanted = {c.upper() for c in select}
        raw = [f for f in raw if f.code in wanted]

    by_path: Dict[str, List[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)
    for path, group in by_path.items():
        findings.extend(
            suppressed(group, sources.get(path, ""), tool="slip-audit"))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, len(sources)


def audit_paths(paths: Iterable[str],
                select: Optional[Sequence[str]] = None
                ) -> Tuple[List[Finding], int]:
    """Audit every .py file under ``paths``; (findings, files_scanned).

    Files that cannot be decoded are reported as SLIP999 findings and
    the scan continues (same contract as ``lint_paths``).
    """
    from .lint import discover_files, read_source

    sources: Dict[str, str] = {}
    decode_findings: List[Finding] = []
    for file_path in discover_files(paths):
        source, failure = read_source(file_path)
        if failure is not None:
            decode_findings.append(failure)
        else:
            sources[file_path] = source
    findings, _ = audit_sources(sources, select=select)
    findings.extend(decode_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, len(sources) + len(decode_findings)


def explain_pair(pair_id: str, paths: Iterable[str]) -> str:
    """Human dump of one pair's computed write-sets (registry tuning)."""
    from .lint import discover_files, read_source

    pair = _PAIRS_BY_ID.get(pair_id)
    if pair is None:
        known = ", ".join(sorted(_PAIRS_BY_ID))
        return f"unknown pair '{pair_id}' (known: {known})"
    sources: Dict[str, str] = {}
    for file_path in discover_files(paths):
        source, failure = read_source(file_path)
        if failure is None:
            try:
                ast.parse(source, filename=file_path)
            except SyntaxError:
                continue
            sources[file_path] = source
    trees = {p: ast.parse(s, filename=p) for p, s in sources.items()}
    index = SummaryIndex(trees)
    sides = _pair_sides(index, pair)
    if sides is None:
        return f"pair '{pair_id}': fast function {pair.fast} not found"
    fast_keys, ref_keys, fast = sides
    assume_true = {g: True for g in pair.guards}
    counts = Counter(key for key, _ in
                     index.direct_counter_sites(fast, assume_true))
    ref_counts: Counter = Counter()
    for ref_name in pair.refs:
        ref = index.find(ref_name)
        if ref is not None:
            ref_counts.update(key for key, _ in
                              index.direct_counter_sites(ref))
    lines = [
        f"pair '{pair.pair_id}' (fast={pair.fast}, "
        f"refs={list(pair.refs)}, guards={list(pair.guards)})",
        f"  shared (fast & ref): "
        f"{sorted(fast_keys & ref_keys)}",
        f"  fast - ref: {sorted(fast_keys - ref_keys)}",
        f"  ref - fast: {sorted(ref_keys - fast_keys)}",
        f"  fast direct site counts: "
        f"{dict(sorted(counts.items()))}",
        f"  ref direct site counts: "
        f"{dict(sorted(ref_counts.items()))}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slip-audit",
        description=("Twin-path effect auditing and determinism taint "
                     "analysis for the SLIP reproduction (write-set "
                     "equivalence of fused fast paths, nondeterminism "
                     "flow into published stats)."),
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to audit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all; SLIP999 is always on)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--explain-pair", default=None, metavar="PAIR",
                        help="print the computed write-sets of one "
                             "registered twin pair and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog(AUDIT_RULES))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("slip-audit: error: no paths given", file=sys.stderr)
        return 2

    if args.explain_pair:
        try:
            print(explain_pair(args.explain_pair, args.paths))
        except FileNotFoundError as exc:
            print(f"slip-audit: error: no such file or directory: "
                  f"{exc}", file=sys.stderr)
            return 2
        return 0

    select = None
    if args.select:
        select = [c.strip().upper() for c in args.select.split(",")
                  if c.strip()]
        known = {rule.code for rule in AUDIT_RULES} | {SYNTAX_ERROR_CODE}
        unknown = [c for c in select if c not in known]
        if unknown:
            print(f"slip-audit: error: unknown rule code(s) "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        findings, files_scanned = audit_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        print(f"slip-audit: error: no such file or directory: {exc}",
              file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings, files_scanned, tool="slip-audit"))
    else:
        print(render_text(findings, files_scanned, tool="slip-audit"))
    return 1 if findings else 0


if __name__ == "__main__":  # python -m repro.analysis.audit
    raise SystemExit(main())
