"""Reporters for slip-lint findings: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .rules import RULES, Finding


def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    """Classic path:line:col one-per-line report with a summary tail."""
    lines = [f.render() for f in findings]
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"slip-lint: {len(findings)} finding(s) in "
            f"{files_scanned} file(s) scanned ({breakdown})"
        )
    else:
        lines.append(
            f"slip-lint: clean ({files_scanned} file(s) scanned)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    """Stable JSON for CI consumption (sorted keys, no wall-clock)."""
    payload = {
        "tool": "slip-lint",
        "files_scanned": files_scanned,
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The --list-rules output; ANALYSIS.md holds the long-form docs."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.code}  {rule.name}: {rule.summary}")
    return "\n".join(lines)
