"""Reporters shared by slip-lint and slip-audit: text and JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .rules import RULES, SYNTAX_ERROR_CODE, Finding


def render_text(findings: Sequence[Finding], files_scanned: int,
                tool: str = "slip-lint") -> str:
    """Classic path:line:col one-per-line report with a summary tail."""
    lines = [f.render() for f in findings]
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{tool}: {len(findings)} finding(s) in "
            f"{files_scanned} file(s) scanned ({breakdown})"
        )
    else:
        lines.append(
            f"{tool}: clean ({files_scanned} file(s) scanned)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int,
                tool: str = "slip-lint") -> str:
    """Stable JSON for CI consumption (sorted keys, no wall-clock)."""
    payload = {
        "tool": tool,
        "files_scanned": files_scanned,
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog(rules: Sequence = RULES) -> str:
    """The --list-rules output; ANALYSIS.md holds the long-form docs.

    Works for any sequence of objects with code/name/summary (slip-lint
    Rule instances or slip-audit AuditRule records), and always appends
    the SLIP999 line: parse/decode failures are reported by both tools
    regardless of ``--select``.
    """
    lines = []
    for rule in rules:
        lines.append(f"{rule.code}  {rule.name}: {rule.summary}")
    lines.append(
        f"{SYNTAX_ERROR_CODE}  syntax-error: file fails to parse or "
        f"decode; always on — reported even when --select names other "
        f"rules"
    )
    return "\n".join(lines)
