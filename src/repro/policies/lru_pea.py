"""LRU-PEA placement (Lira et al.), as simulated in §5 of the paper.

LRU-PEA (Least Recently Used with Priority Eviction Approach) maps
incoming lines to a random bankcluster — here a random sublevel, sized
like the SLIP sublevels for a fair comparison — promotes lines one
sublevel nearer on each hit, and biases victim selection toward lines
that were previously *demoted*, based on the observation that a line
that received a hit tends to receive more. Like NuRAPID, its promotions
buy latency with movement energy (+79% L2 / +83% L3 in the paper).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..mem.cache import CacheLevel, Line
from ..mem.replacement import LruReplacement
from .base import FillOutcome, PlacementPolicy


class PeaLruReplacement(LruReplacement):
    """LRU that preferentially evicts demoted lines."""

    def choose_victim(
        self, set_idx: int, candidate_ways: Sequence[int], lines: List[Line]
    ) -> int:
        demoted = [w for w in candidate_ways if lines[w].demoted]
        pool = demoted if demoted else candidate_ways
        return min(pool, key=lambda w: lines[w].lru)


class LruPeaPlacement(PlacementPolicy):
    """Random-sublevel insertion, promote-on-hit, evict demoted first."""

    performs_movement = True

    def __init__(self, movement_queue_pj: float = 0.3, seed: int = 0) -> None:
        super().__init__()
        self.movement_queue_pj = movement_queue_pj
        self._rng = random.Random(seed)

    def attach(self, level: CacheLevel) -> None:
        super().attach(level)
        if not isinstance(level.replacement, PeaLruReplacement):
            raise TypeError(
                "LruPeaPlacement requires PeaLruReplacement on its level"
            )

    def _random_sublevel(self) -> int:
        cfg = self.level.cfg
        weights = list(cfg.sublevel_ways) or [cfg.ways]
        return self._rng.choices(
            range(len(weights)), weights=weights, k=1
        )[0]

    def fill(self, line_addr: int, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        level = self.level
        assert level is not None
        outcome = FillOutcome(inserted=True)
        set_idx = level.set_index(line_addr)
        ways = list(level.cfg.ways_of_sublevel(self._random_sublevel()))
        way = level.choose_victim(set_idx, ways)
        victim = level.extract(set_idx, way)
        if victim is not None:
            self._evict_from_level(victim, outcome)
        level.place_fill(
            set_idx, way, line_addr, dirty=dirty, page=page,
            is_metadata=is_metadata, timestamp=level.timestamp_now(),
        )
        level.stats.insertions_by_class["default"] += 1
        return outcome

    def on_hit(self, set_idx: int, way: int) -> None:
        """Promote one sublevel nearer, swapping with a PEA victim."""
        level = self.level
        assert level is not None
        sublevel = level.cfg.sublevel_of_way(way)
        if sublevel == 0:
            return
        nearer_ways = list(level.cfg.ways_of_sublevel(sublevel - 1))
        target = level.choose_victim(set_idx, nearer_ways)
        promoted = level.extract(set_idx, way)
        displaced = level.extract(set_idx, target)
        assert promoted is not None
        level.place_moved(
            set_idx, target, promoted, new_chunk_idx=promoted.chunk_idx,
            movement_queue_pj=self.movement_queue_pj, demoted=False,
        )
        if displaced is not None:
            level.place_moved(
                set_idx, way, displaced, new_chunk_idx=displaced.chunk_idx,
                movement_queue_pj=self.movement_queue_pj, demoted=True,
            )
