"""NuRAPID placement (Chishti et al., MICRO 2003), as simulated in §5.

NuRAPID partitions a cache into distance groups (d-groups) of banks with
similar delay; for a fair comparison the paper sets the d-groups equal
to the SLIP sublevels. Lines are initially placed in the *nearest*
d-group; a line is promoted back to the nearest d-group when it receives
a hit (swapping with a victim there) and demoted one d-group further
when displaced. Latency-wise this is excellent; energy-wise every
promotion costs two reads and two writes, which is why the paper
measures NuRAPID at +84% L2 / +94% L3 energy.
"""

from __future__ import annotations

from typing import List

from ..mem.cache import EvictedLine
from .base import FillOutcome, PlacementPolicy


class NurapidPlacement(PlacementPolicy):
    """Nearest-d-group insertion with promotion-on-hit and demotion."""

    performs_movement = True

    def __init__(self, movement_queue_pj: float = 0.3) -> None:
        super().__init__()
        self.movement_queue_pj = movement_queue_pj

    # ------------------------------------------------------------------
    def _sublevel_ways(self, sublevel: int) -> List[int]:
        assert self.level is not None
        return list(self.level.cfg.ways_of_sublevel(sublevel))

    def _demote(self, victim: EvictedLine, from_sublevel: int,
                outcome: FillOutcome) -> None:
        """Push a displaced line one d-group further, cascading."""
        level = self.level
        assert level is not None
        set_idx = level.set_index(victim.tag)
        sublevel = from_sublevel + 1
        while victim is not None:
            if sublevel >= level.cfg.num_sublevels:
                self._evict_from_level(victim, outcome)
                return
            ways = self._sublevel_ways(sublevel)
            way = level.choose_victim(set_idx, ways)
            displaced = level.extract(set_idx, way)
            level.place_moved(
                set_idx, way, victim,
                new_chunk_idx=victim.chunk_idx,
                movement_queue_pj=self.movement_queue_pj,
                demoted=True,
            )
            victim = displaced
            sublevel += 1

    # ------------------------------------------------------------------
    def fill(self, line_addr: int, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        level = self.level
        assert level is not None
        outcome = FillOutcome(inserted=True)
        set_idx = level.set_index(line_addr)
        nearest = self._sublevel_ways(0)
        way = level.choose_victim(set_idx, nearest)
        victim = level.extract(set_idx, way)
        if victim is not None:
            self._demote(victim, from_sublevel=0, outcome=outcome)
        level.place_fill(
            set_idx, way, line_addr, dirty=dirty, page=page,
            is_metadata=is_metadata, timestamp=level.timestamp_now(),
        )
        level.stats.insertions_by_class["default"] += 1
        return outcome

    def on_hit(self, set_idx: int, way: int) -> None:
        """Promote the hitting line to the nearest d-group by swapping."""
        level = self.level
        assert level is not None
        if level.cfg.sublevel_of_way(way) == 0:
            return
        nearest = self._sublevel_ways(0)
        target = level.choose_victim(set_idx, nearest)
        promoted = level.extract(set_idx, way)
        displaced = level.extract(set_idx, target)
        assert promoted is not None
        level.place_moved(
            set_idx, target, promoted, new_chunk_idx=promoted.chunk_idx,
            movement_queue_pj=self.movement_queue_pj, demoted=False,
        )
        if displaced is not None:
            level.place_moved(
                set_idx, way, displaced, new_chunk_idx=displaced.chunk_idx,
                movement_queue_pj=self.movement_queue_pj, demoted=True,
            )
