"""Placement-policy interface shared by baseline, NUCA and SLIP caches.

A placement policy decides *where* in a level a line lives over its
lifetime: which ways an incoming line may be inserted into, what happens
to the victim it displaces (demotion, movement, eviction), and whether a
hit triggers promotion. Victim *selection* inside the allowed ways is
delegated to the level's replacement policy — SLIP is orthogonal to
replacement (Section 3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from ..mem.cache import CacheLevel, EvictedLine


@dataclass
class FillOutcome:
    """Result of offering a line to a level."""

    inserted: bool
    writebacks: List[int] = field(default_factory=list)
    #: Clean lines evicted from the level entirely (for inclusion upkeep
    #: and statistics; no writeback traffic).
    clean_evictions: List[int] = field(default_factory=list)


class PlacementPolicy(ABC):
    """Insertion/movement policy for one cache level."""

    #: Whether the policy moves lines between ways and therefore needs
    #: the movement queue (and pays its lookup energy per movement).
    performs_movement: bool = False

    def __init__(self) -> None:
        self.level: Optional[CacheLevel] = None

    def attach(self, level: CacheLevel) -> None:
        self.level = level

    @abstractmethod
    def fill(self, line_addr: int, *, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        """Offer a line fetched from the next level to this level."""

    def on_hit(self, set_idx: int, way: int) -> None:
        """Hook invoked after hit bookkeeping; may move lines."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _evict_from_level(self, victim: EvictedLine,
                          outcome: FillOutcome) -> None:
        """Account a line leaving the level entirely.

        Only dirty victims cost energy: their data must be read out and
        written back. Clean victims are simply overwritten.
        """
        assert self.level is not None
        self.level.record_departure(victim)
        if victim.dirty:
            self.level.record_writeback_out(victim.from_way)
            outcome.writebacks.append(victim.tag)
        else:
            outcome.clean_evictions.append(victim.tag)
