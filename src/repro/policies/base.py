"""Placement-policy interface shared by baseline, NUCA and SLIP caches.

A placement policy decides *where* in a level a line lives over its
lifetime: which ways an incoming line may be inserted into, what happens
to the victim it displaces (demotion, movement, eviction), and whether a
hit triggers promotion. Victim *selection* inside the allowed ways is
delegated to the level's replacement policy — SLIP is orthogonal to
replacement (Section 3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..mem.cache import CacheLevel, EvictedLine


class FillOutcome:
    """Result of offering a line to a level.

    A plain ``__slots__`` class rather than a dataclass: one is built
    per fill on the hottest simulator path, and the generated dataclass
    ``__init__`` plus two ``default_factory`` list constructions are
    measurable there. Both sequences start as the shared empty tuple —
    consumers only iterate/read them — and are promoted to real lists
    by :meth:`add_writeback` / :meth:`add_clean_eviction` on first use.
    """

    __slots__ = ("inserted", "writebacks", "clean_evictions")

    def __init__(self, inserted: bool,
                 writebacks: Optional[List[int]] = None,
                 clean_evictions: Optional[List[int]] = None) -> None:
        self.inserted = inserted
        self.writebacks: Sequence[int] = \
            () if writebacks is None else writebacks
        #: Clean lines evicted from the level entirely (for inclusion
        #: upkeep and statistics; no writeback traffic).
        self.clean_evictions: Sequence[int] = \
            () if clean_evictions is None else clean_evictions

    def add_writeback(self, tag: int) -> None:
        if self.writebacks:
            self.writebacks.append(tag)
        else:
            self.writebacks = [tag]

    def add_clean_eviction(self, tag: int) -> None:
        if self.clean_evictions:
            self.clean_evictions.append(tag)
        else:
            self.clean_evictions = [tag]


class PlacementPolicy(ABC):
    """Insertion/movement policy for one cache level."""

    #: Whether the policy moves lines between ways and therefore needs
    #: the movement queue (and pays its lookup energy per movement).
    performs_movement: bool = False

    def __init__(self) -> None:
        self.level: Optional[CacheLevel] = None

    def attach(self, level: CacheLevel) -> None:
        self.level = level

    @abstractmethod
    def fill(self, line_addr: int, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        """Offer a line fetched from the next level to this level."""

    def on_hit(self, set_idx: int, way: int) -> None:
        """Hook invoked after hit bookkeeping; may move lines."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _evict_from_level(self, victim: EvictedLine,
                          outcome: FillOutcome) -> None:
        """Account a line leaving the level entirely.

        Only dirty victims cost energy: their data must be read out and
        written back. Clean victims are simply overwritten.
        """
        level = self.level
        assert level is not None
        level.record_departure(victim)
        if victim.dirty:
            level.record_writeback_out(victim.from_way)
            outcome.add_writeback(victim.tag)
        else:
            outcome.add_clean_eviction(victim.tag)
