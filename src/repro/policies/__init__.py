"""Placement policies: the baseline and the NUCA comparators."""

from .base import FillOutcome, PlacementPolicy
from .baseline import BaselinePlacement
from .lru_pea import LruPeaPlacement, PeaLruReplacement
from .nurapid import NurapidPlacement

__all__ = [
    "BaselinePlacement",
    "FillOutcome",
    "LruPeaPlacement",
    "NurapidPlacement",
    "PeaLruReplacement",
    "PlacementPolicy",
]
