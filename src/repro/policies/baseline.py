"""The regular cache hierarchy: insert anywhere, never move.

This is the paper's baseline. Victims are chosen across all ways by the
underlying replacement policy; access energy is the uniform (way-mean)
energy because, with way interleaving, a line lands in a random-energy
way and stays there.
"""

from __future__ import annotations

from .base import FillOutcome, PlacementPolicy


class BaselinePlacement(PlacementPolicy):
    """Ordinary insertion into any way; no intra-level movement."""

    performs_movement = False

    def fill(self, line_addr: int, *, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        level = self.level
        assert level is not None
        outcome = FillOutcome(inserted=True)
        set_idx = level.set_index(line_addr)
        all_ways = range(level.cfg.ways)
        way = level.choose_victim(set_idx, all_ways)
        victim = level.extract(set_idx, way)
        if victim is not None:
            self._evict_from_level(victim, outcome)
        level.place_fill(
            set_idx, way, line_addr, dirty=dirty, page=page,
            is_metadata=is_metadata,
            timestamp=level.timestamp_now(),
        )
        level.stats.insertions_by_class["default"] += 1
        return outcome
