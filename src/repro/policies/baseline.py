"""The regular cache hierarchy: insert anywhere, never move.

This is the paper's baseline. Victims are chosen across all ways by the
underlying replacement policy; access energy is the uniform (way-mean)
energy because, with way interleaving, a line lands in a random-energy
way and stays there.
"""

from __future__ import annotations

from .base import FillOutcome, PlacementPolicy
from ..mem.cache import INVALID_LINE, NO_CHUNK, Line
from ..mem.stats import REUSE_KEYS

_INF = float("inf")

#: Shared result for fills with nothing to report upward (no dirty
#: victim). Callers only read FillOutcome fields, never mutate them
#: (the mutators live on policy-owned instances), so one immutable
#: instance serves every such fill. Consequence: the fast path does
#: not enumerate clean evictions — no consumer reads them; the stats
#: side of a clean departure is still fully recorded.
_INSERTED = FillOutcome(True)


class BaselinePlacement(PlacementPolicy):
    """Ordinary insertion into any way; no intra-level movement.

    Every miss at every level funnels through :meth:`fill`, so it gets
    two implementations: a fused fast path that performs the victim
    scan, departure bookkeeping and installation in one frame (reusing
    the victim ``Line`` object in place), and the general path built
    from the level's placement primitives. The fast path is only legal
    when ``level._fast_fill`` holds — stock LRU replacement, and no
    SimCheck wrappers observing the individual primitives — and is
    accounting-equivalent to the general path by construction (the
    golden tests pin this down byte-for-byte).
    """

    performs_movement = False

    def attach(self, level) -> None:
        super().attach(level)
        ways = level.cfg.ways
        # The candidate set never narrows for the baseline; build each
        # rotated visit order once instead of a slice pair per fill.
        self._all_ways = tuple(range(ways))
        self._orders = tuple(
            tuple(range(r, ways)) + tuple(range(r))
            for r in range(ways)
        )
        self._ways = ways

    # slip-audit: twin=baseline-fill role=fast
    def fill(self, line_addr: int, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        level = self.level
        assert level is not None
        if not level._fast_fill:
            return self._fill_general(line_addr, page=page, dirty=dirty,
                                      is_metadata=is_metadata)

        # ----- fused victim scan (same order as choose_victim) -----
        set_idx = line_addr % level.num_sets
        lines = level.sets[set_idx]
        index = level._index[set_idx]
        level._alloc_rotor = rotor = (level._alloc_rotor + 1) % 64
        victim_way = -1
        best_lru = _INF
        for way in self._orders[rotor % self._ways]:
            line = lines[way]
            if not line.valid:
                victim_way = way
                victim = line
                break
            lru = line.lru
            if lru < best_lru:
                victim_way, best_lru = way, lru
        else:
            victim = lines[victim_way]

        # ----- departure of a valid victim (no EvictedLine snapshot:
        # the baseline only needs its hits/dirty/tag) -----
        stats = level.stats
        if victim.valid:
            # Inlined stats.record_reuse_count(victim.hits).
            hits = victim.hits
            stats.reuse_histogram[REUSE_KEYS[hits] if hits <= 2
                                  else ">2"] += 1
            del index[victim.tag]
            if victim.dirty:
                stats.writebacks_out += 1
                stats.wb_out_events[level.sublevel_by_way[victim_way]] += 1
                outcome = FillOutcome(True, [victim.tag])
            else:
                outcome = _INSERTED
        else:
            level.valid_count += 1
            outcome = _INSERTED
            if victim is INVALID_LINE:
                # First fill of this way: materialize a real Line in
                # place of the shared invalid sentinel.
                victim = lines[victim_way] = Line()

        # ----- installation (inlined place_fill over the reused Line;
        # every slot the general path's reset() clears AND some consumer
        # reads is re-set. The RRIP/SHiP/PEA bookkeeping slots (rrpv,
        # signature, outcome, demoted) are deliberately left alone: the
        # fast path requires stock LRU, under which nothing ever reads
        # or writes them, so they keep their constructor defaults) -----
        line = victim
        line.valid = True
        line.tag = line_addr
        index[line_addr] = victim_way
        line.dirty = dirty
        line.policy_id = 0
        line.chunk_idx = NO_CHUNK
        line.page = page
        line.sampling = False
        line.is_metadata = is_metadata
        line.ts = (level.access_counter // level._granule) & level._ts_mask
        line.hits = 0
        replacement = level.replacement
        replacement._clock += 1
        line.lru = replacement._clock
        stats.insertions += 1
        stats.insert_events[level.sublevel_by_way[victim_way]] += 1
        if level.track_metadata_energy:
            stats.metadata_events += 1
        stats.insertions_by_class["default"] += 1
        return outcome

    # slip-audit: twin=baseline-fill role=ref
    def _fill_general(self, line_addr: int, *, page: int = -1,
                      dirty: bool = False,
                      is_metadata: bool = False) -> FillOutcome:
        """Primitive-by-primitive fill; SimCheck observes each step."""
        level = self.level
        outcome = FillOutcome(inserted=True)
        set_idx = line_addr % level.num_sets
        way = level.choose_victim(set_idx, self._all_ways)
        victim = level.extract(set_idx, way)
        if victim is not None:
            self._evict_from_level(victim, outcome)
        level.place_fill(
            set_idx, way, line_addr, dirty=dirty, page=page,
            is_metadata=is_metadata,
            timestamp=level.timestamp_now(),
        )
        level.stats.insertions_by_class["default"] += 1
        return outcome
