"""Figure 11: access vs movement energy breakdown per policy.

Each (benchmark, level) group shows five bars — baseline, NuRAPID,
LRU-PEA, SLIP, SLIP+ABP — normalized to the baseline total for that
benchmark. Movement energy includes inter-sublevel movement, insertion
and writeback energy (the figure's caption definition). The paper's
story: NuRAPID and LRU-PEA reduce *access* energy but explode *movement*
energy; SLIP minimizes the sum.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..mem.stats import LevelStats
from .common import ALL_POLICIES, ExperimentSettings, Table, shared_cache


def breakdown(stats: LevelStats) -> Tuple[float, float]:
    """(access, movement) energy in pJ per the Figure 11 definition."""
    energy = stats.energy
    access = energy.access_pj
    movement = (
        energy.move_total_pj
        + energy.metadata_pj
        + energy.movement_queue_pj
    )
    return access, movement


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, p) for b in settings.benchmarks for p in ALL_POLICIES]


def normalized_breakdowns(
    settings: Optional[ExperimentSettings] = None,
    level: str = "L2",
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """{benchmark: {policy: (access, movement)}} normalized to baseline."""
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for benchmark in settings.benchmarks:
        base = cache.result(benchmark, "baseline")
        stats = {"L2": base.l2, "L3": base.l3}[level]
        base_total = sum(breakdown(stats)) or 1.0
        per_policy = {}
        for policy in ALL_POLICIES:
            result = cache.result(benchmark, policy)
            stats = {"L2": result.l2, "L3": result.l3}[level]
            access, movement = breakdown(stats)
            per_policy[policy] = (access / base_total, movement / base_total)
        out[benchmark] = per_policy
    return out


def run(settings: Optional[ExperimentSettings] = None,
        level: str = "L2") -> Table:
    settings = settings or ExperimentSettings()
    data = normalized_breakdowns(settings, level)
    rows = []
    for benchmark, per_policy in data.items():
        row = [benchmark]
        for policy in ALL_POLICIES:
            access, movement = per_policy[policy]
            row.append(f"{access:.2f}+{movement:.2f}")
        rows.append(row)
    return Table(
        title=(
            f"Figure 11 ({level}): access+movement energy, "
            "normalized to baseline total"
        ),
        headers=["benchmark"] + list(ALL_POLICIES),
        rows=rows,
        notes=(
            "Each cell is access+movement. Paper: NuRAPID/LRU-PEA cut "
            "access energy but multiply movement energy; SLIP lowers the "
            "sum below 1.0."
        ),
    )
