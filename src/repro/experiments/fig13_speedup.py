"""Figure 13: speedups versus the regular memory hierarchy.

The paper measures +0.06% (NuRAPID), +0.16% (LRU-PEA), +0.24% (SLIP)
and +0.75% (SLIP+ABP, up to 3% on individual workloads): SPEC hit rates
at L2/L3 are low, so DRAM dominates AMAT and every policy lands within a
percent of baseline. Our AMAT/CPI model targets that insight — all
policies should sit within low single-digit percents of baseline — not
the exact orderings of fractions of a percent.
"""

from __future__ import annotations

from typing import Optional

from .common import (
    ExperimentSettings,
    Table,
    arithmetic_mean,
    pct,
    shared_cache,
)

PAPER_AVERAGES = {
    "nurapid": 0.0006,
    "lru_pea": 0.0016,
    "slip": 0.0024,
    "slip_abp": 0.0075,
}

POLICIES = ("nurapid", "lru_pea", "slip", "slip_abp")


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, p) for b in settings.benchmarks
            for p in ("baseline",) + POLICIES]


def run(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    rows = []
    sums = {p: [] for p in POLICIES}
    for benchmark in settings.benchmarks:
        base = cache.result(benchmark, "baseline")
        row = [benchmark]
        for policy in POLICIES:
            speedup = cache.result(benchmark, policy).speedup_over(base)
            sums[policy].append(speedup)
            row.append(pct(speedup))
        rows.append(row)
    rows.append(
        ["average"] + [pct(arithmetic_mean(sums[p])) for p in POLICIES]
    )
    return Table(
        title="Figure 13: speedup vs regular memory hierarchy",
        headers=["benchmark"] + list(POLICIES),
        rows=rows,
        notes=(
            "Paper averages: +0.06% / +0.16% / +0.24% / +0.75%; all "
            "policies within ~1% because DRAM time dominates."
        ),
    )
