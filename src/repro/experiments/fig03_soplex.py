"""Figure 3: reuse-distance classes of soplex's access regions.

The paper inspects three code locations in soplex's forest.cc: the
rorig rotation loops (72% of accesses beyond 256 KB, 18% within 64 KB),
the rperm permutation reads (essentially always missing) and the cperm
updates (66% within 64 KB, ~10% needing the full cache, 24% never
fitting). We regenerate the soplex analog's regions and measure each
region's reuse-distance distribution directly from the trace.

Reuse distance here is the count of *distinct lines* touched between
consecutive references to the same line (stack distance), binned at the
64 KB / 128 KB / 256 KB capacities of Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..workloads.benchmarks import _soplex_regions
from ..workloads.generators import RegionMix
from .common import ExperimentSettings, Table

BIN_EDGES_LINES = (1024, 2048, 4096)  # 64 KB, 128 KB, 256 KB
BIN_LABELS = ("<=64K", "128K", "256K", ">256K")

PAPER = {
    "rorig": {"<=64K": 0.18, ">256K": 0.72},
    "rperm": {">256K": 1.00},
    "cperm": {"<=64K": 0.66, ">256K": 0.24},
}


def stack_distance_bins(addresses: np.ndarray,
                        edges=BIN_EDGES_LINES) -> List[float]:
    """Binned stack-distance distribution of an address stream.

    O(n log n) via an order-statistics approach: for each access, the
    stack distance is the number of distinct lines seen since the
    previous touch of the same line. Cold misses land in the last bin.
    """
    last_seen: Dict[int, int] = {}
    # For distinct-count queries we keep, per time step, a Fenwick tree
    # over "most recent occurrence" flags.
    n = len(addresses)
    tree = [0] * (n + 1)

    def update(i: int, delta: int) -> None:
        i += 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def query(i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    counts = [0] * (len(edges) + 1)
    for t, addr in enumerate(addresses.tolist()):
        prev = last_seen.get(addr)
        if prev is None:
            counts[-1] += 1  # cold: beyond any capacity
        else:
            distinct = query(t - 1) - query(prev)
            bin_idx = len(edges)
            for k, edge in enumerate(edges):
                if distinct < edge:
                    bin_idx = k
                    break
            counts[bin_idx] += 1
            update(prev, -1)
        last_seen[addr] = t
        update(t, +1)
    total = sum(counts) or 1
    return [c / total for c in counts]


def run(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    length = min(settings.length, 150_000)  # stack distance is O(n log n)
    rng = np.random.default_rng(settings.seed)
    regions = _soplex_regions()
    mix = RegionMix(regions)
    addresses, _ = mix.generate(length, rng)

    rows = []
    for placement in mix.placements:
        region = placement.region
        base = placement.base_line
        span = region.span_lines()
        mask = (addresses >= base) & (addresses < base + span)
        region_addresses = addresses[mask]
        if region_addresses.size < 100:
            continue
        fractions = stack_distance_bins(region_addresses)
        rows.append(
            [region.name] + [f"{f:.0%}" for f in fractions]
        )
    return Table(
        title="Figure 3: soplex per-region reuse-distance classes",
        headers=["region"] + list(BIN_LABELS),
        rows=rows,
        notes=(
            "Paper: rorig 18% <=64K / 72% >256K; rperm ~100% >256K; "
            "cperm 66% <=64K / 24% >256K."
        ),
    )
