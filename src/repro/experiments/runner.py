"""CLI for regenerating every table and figure of the paper.

Usage::

    slip-experiments --list
    slip-experiments fig09 fig14
    slip-experiments --all
    slip-experiments --all --jobs 8                  # parallel fan-out
    REPRO_EXP_LENGTH=500000 slip-experiments --all   # higher fidelity
    REPRO_EXP_JOBS=8 slip-experiments --all          # same as --jobs 8
    slip-experiments fig09 --profile out.pstats      # cProfile the run

Each experiment prints a formatted table with the paper's reference
numbers in the notes, so paper-vs-measured comparison is immediate.

With ``--jobs N`` (or ``REPRO_EXP_JOBS``) the harness fans out across
worker processes: the shared single-core sweep is prefetched in
parallel across its (benchmark, policy) cells before the figure
modules format their slices, and sweep-owning experiments (ablations,
fig16) fan their own grids out the same way. Worker count only changes
wall-clock — tables are byte-identical for any ``--jobs``.
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from .common import ExperimentSettings, Table, shared_cache
from .parallel import resolve_jobs
from . import (
    ablations,
    fig01_reuse,
    fig03_soplex,
    fig09_energy,
    fig10_fullsystem,
    fig11_breakdown,
    fig12_misses,
    fig13_speedup,
    fig14_insertion_classes,
    fig15_sublevel_fractions,
    fig16_multicore,
)

Runner = Callable[[Optional[ExperimentSettings]], Table]

EXPERIMENTS: Dict[str, Runner] = {
    "fig01": fig01_reuse.run,
    "fig03": fig03_soplex.run,
    "fig09": fig09_energy.run,
    "fig10": fig10_fullsystem.run,
    "fig11-l2": lambda s: fig11_breakdown.run(s, level="L2"),
    "fig11-l3": lambda s: fig11_breakdown.run(s, level="L3"),
    "fig12-l2": lambda s: fig12_misses.run(s, level="L2"),
    "fig12-l3": lambda s: fig12_misses.run(s, level="L3"),
    "fig13": fig13_speedup.run,
    "fig14-l2": lambda s: fig14_insertion_classes.run(s, level="L2"),
    "fig14-l3": lambda s: fig14_insertion_classes.run(s, level="L3"),
    "fig15-l2": lambda s: fig15_sublevel_fractions.run(s, level="L2"),
    "fig15-l3": lambda s: fig15_sublevel_fractions.run(s, level="L3"),
    "fig16": fig16_multicore.run,
    "ablation-htree": ablations.run_htree,
    "ablation-replacement": ablations.run_replacement,
    "ablation-rdblock": ablations.run_rdblock,
    "ablation-22nm": ablations.run_22nm,
    "ablation-binwidth": ablations.run_binwidth,
    "ablation-sampling": ablations.run_sampling,
}

#: Experiments that read the shared single-core sweep, mapped to the
#: (benchmark, policy) cells they need. The runner unions these over
#: the selected experiments and prefetches them in parallel.
SWEEP_CELLS: Dict[str, Callable[[ExperimentSettings], list]] = {
    "fig01": fig01_reuse.required_cells,
    "fig09": fig09_energy.required_cells,
    "fig10": fig10_fullsystem.required_cells,
    "fig11-l2": fig11_breakdown.required_cells,
    "fig11-l3": fig11_breakdown.required_cells,
    "fig12-l2": fig12_misses.required_cells,
    "fig12-l3": fig12_misses.required_cells,
    "fig13": fig13_speedup.required_cells,
    "fig14-l2": fig14_insertion_classes.required_cells,
    "fig14-l3": fig14_insertion_classes.required_cells,
    "fig15-l2": fig15_sublevel_fractions.required_cells,
    "fig15-l3": fig15_sublevel_fractions.required_cells,
}


def settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    """Build settings from CLI flags, honouring explicit zeros.

    ``is not None`` checks matter: ``--length 0`` and ``--seed 0`` are
    legitimate explicit values and must not fall through to defaults.
    """
    kwargs = {}
    if args.length is not None:
        kwargs["length"] = args.length
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.jobs is not None:
        kwargs["jobs"] = args.jobs
    return ExperimentSettings(**kwargs)


def prefetch_shared_sweep(names: List[str],
                          settings: ExperimentSettings):
    """Warm the shared sweep for the selected experiments in parallel.

    Returns the engine's SweepReport (None when nothing was missing or
    no selected experiment uses the shared sweep).
    """
    cells: List[Tuple[str, str]] = []
    for name in names:
        cells_fn = SWEEP_CELLS.get(name)
        if cells_fn is not None:
            cells.extend(cells_fn(settings))
    if not cells:
        return None
    # Deduplicate, keep deterministic order for stable job numbering.
    cells = sorted(set(cells))
    return shared_cache(settings).prefetch(cells, jobs=settings.jobs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="slip-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--length", type=int, default=None,
                        help="trace length (overrides REPRO_EXP_LENGTH)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for sweeps "
                             "(default: REPRO_EXP_JOBS or 1)")
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="also write the tables as markdown to PATH")
    parser.add_argument("--capture-dir", metavar="PATH", default=None,
                        help="persist front-end captures on disk at "
                             "PATH (sets REPRO_CAPTURE_DIR, so pool "
                             "workers share one store across runs)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="profile the run with cProfile and dump "
                             "pstats to PATH (forces --jobs 1; inspect "
                             "with `python -m pstats PATH`)")
    parser.add_argument("--kernel-report", action="store_true",
                        help="after the run, print per-kernel run and "
                             "decline tallies for this process (pool "
                             "workers keep their own counts)")
    args = parser.parse_args(argv)

    if args.list:
        try:
            for name in EXPERIMENTS:
                print(name)
        except BrokenPipeError:  # e.g. `slip-experiments --list | head`
            sys.stderr.close()
        return 0

    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 1

    settings = settings_from_args(args)

    if args.capture_dir is not None:
        # Exported (not passed down) so forked/spawned pool workers
        # inherit it and resolve the same on-disk store.
        os.environ["REPRO_CAPTURE_DIR"] = args.capture_dir

    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; use --list",
              file=sys.stderr)
        return 2

    try:
        jobs = resolve_jobs(settings.jobs)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.profile is not None and jobs > 1:
        # cProfile only sees this process; worker processes would hide
        # exactly the hot paths being profiled. Force a serial run.
        print(f"[--profile forces --jobs 1; ignoring requested "
              f"--jobs {jobs}]", file=sys.stderr)
        settings = dataclasses.replace(settings, jobs=1)
        jobs = 1

    def run_selected() -> None:
        overall_started = time.time()
        if jobs > 1:
            report = prefetch_shared_sweep(names, settings)
            if report is not None:
                # Timing lines only (all "["-prefixed): table bodies
                # must stay byte-identical to a serial run.
                print("\n".join(report.lines()))

        for name in names:
            runner = EXPERIMENTS[name]
            started = time.time()
            table = runner(settings)
            print(table.formatted())
            if table.perf:
                print(table.perf_text())
            print(f"[{name} took {time.time() - started:.1f}s]\n")
            if args.markdown:
                markdown_parts.append(table.to_markdown())
        print(f"[{len(names)} experiment(s) took "
              f"{time.time() - overall_started:.1f}s total, "
              f"jobs={jobs}]")

    markdown_parts: List[str] = []
    if args.profile is not None:
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            run_selected()
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"[profile written to {args.profile}; inspect with "
                  f"`python -m pstats {args.profile}`]")
    else:
        run_selected()

    if args.kernel_report:
        # "["-prefixed like every timing line, so determinism diffs of
        # the table bodies stay clean (see scripts/check.sh det_smoke).
        from ..sim.kernel_report import kernel_report_lines

        print("\n".join(kernel_report_lines()))

    if args.markdown:
        header = (
            "# Experiment results\n\n"
            f"Generated by `slip-experiments` with length="
            f"{settings.length}, seed={settings.seed}.\n\n"
        )
        with open(args.markdown, "w") as handle:
            handle.write(header + "\n".join(markdown_parts))
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
