"""Shared infrastructure for the per-figure experiment modules.

All single-core figures (9-15) are views over the same policy sweep, so
results are cached per (benchmark, policy, length, seed, config) and
each figure module formats its own slice. Experiment scale is set by
``ExperimentSettings``; the defaults aim for minutes, not hours, and the
``REPRO_EXP_LENGTH`` environment variable scales everything up for
higher-fidelity runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import SystemConfig, default_system
from ..sim.filtered import run_trace_filtered
from ..sim.results import RunResult
from ..workloads.benchmarks import SPEC_ORDER, make_trace

ALL_POLICIES: Tuple[str, ...] = (
    "baseline", "nurapid", "lru_pea", "slip", "slip_abp",
)
SLIP_POLICIES: Tuple[str, ...] = ("slip", "slip_abp")


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and reproducibility knobs shared by every experiment.

    ``jobs`` is the worker-process fan-out for sweeps; ``None`` defers
    to the ``REPRO_EXP_JOBS`` environment variable (default serial).
    Worker count never changes results — only wall-clock.
    """

    length: int = int(os.environ.get("REPRO_EXP_LENGTH", 300_000))
    seed: int = int(os.environ.get("REPRO_EXP_SEED", 0))
    warmup_fraction: float = 0.3
    benchmarks: Tuple[str, ...] = SPEC_ORDER
    jobs: Optional[int] = None

    def scaled(self, factor: float) -> "ExperimentSettings":
        return ExperimentSettings(
            length=max(1000, int(self.length * factor)),
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
            benchmarks=self.benchmarks,
            jobs=self.jobs,
        )


@dataclass
class Table:
    """A printable experiment result: headers, rows, paper reference.

    ``perf`` carries the sweep's per-job wall-clock/throughput lines.
    They are rendered by :meth:`perf_text` and deliberately excluded
    from :meth:`formatted`/:meth:`to_markdown`: the table body must be
    byte-identical across worker counts, while timing never is.
    """

    title: str
    headers: List[str]
    rows: List[List[str]]
    notes: str = ""
    perf: List[str] = field(default_factory=list)

    def perf_text(self) -> str:
        """The timing/throughput report, one line per job."""
        return "\n".join(self.perf)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        lines.append("")
        return "\n".join(lines)

    def formatted(self) -> str:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in self.rows))
            if self.rows else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(
                str(c).rjust(w) if i else str(c).ljust(w)
                for i, (c, w) in enumerate(zip(cells, widths))
            )
        lines = [self.title, "=" * len(self.title), fmt_row(self.headers),
                 fmt_row(["-" * w for w in widths])]
        lines.extend(fmt_row(row) for row in self.rows)
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


class SweepCache:
    """Memoized (benchmark, policy) -> RunResult sweep runner."""

    def __init__(self, settings: ExperimentSettings,
                 config: Optional[SystemConfig] = None) -> None:
        self.settings = settings
        self.config = config or default_system()
        self._results: Dict[Tuple[str, str], RunResult] = {}

    def trace(self, benchmark: str):
        # Delegates to the process-wide LRU trace cache, so traces are
        # shared across SweepCache instances and pool workers alike.
        return make_trace(
            benchmark, self.settings.length, self.settings.seed
        )

    def result(self, benchmark: str, policy: str) -> RunResult:
        key = (benchmark, policy)
        if key not in self._results:
            # Filtered capture/replay: cells sharing a runtime kind
            # reuse one captured front end (byte-identical results).
            self._results[key] = run_trace_filtered(
                self.trace(benchmark),
                policy,
                config=self.config,
                seed=self.settings.seed,
                warmup_fraction=self.settings.warmup_fraction,
            )
        return self._results[key]

    def results_for(self, benchmark: str,
                    policies: Sequence[str]) -> Dict[str, RunResult]:
        return {p: self.result(benchmark, p) for p in policies}

    def prefetch(self, cells: Optional[Sequence[Tuple[str, str]]] = None,
                 jobs: Optional[int] = None):
        """Fill missing (benchmark, policy) cells via the parallel engine.

        Jobs carry exactly the arguments :meth:`result` would pass
        serially, so a prefetched cell is indistinguishable from a
        lazily computed one. Returns the :class:`SweepReport` for the
        cells actually run, or ``None`` if everything was cached.
        """
        from .parallel import RunRequest, run_jobs

        if cells is None:
            cells = [(b, p) for b in self.settings.benchmarks
                     for p in ALL_POLICIES]
        missing = [c for c in dict.fromkeys(cells) if c not in self._results]
        if not missing:
            return None
        requests = [
            RunRequest(
                benchmark=benchmark,
                policy=policy,
                length=self.settings.length,
                seed=self.settings.seed,
                warmup_fraction=self.settings.warmup_fraction,
                config=self.config,
            )
            for benchmark, policy in missing
        ]
        report = run_jobs(requests, jobs=jobs if jobs is not None
                          else self.settings.jobs)
        for cell, job in zip(missing, report.results):
            self._results[cell] = job.result
        return report


_shared_caches: Dict[Tuple[int, int, float], SweepCache] = {}


def shared_cache(settings: ExperimentSettings) -> SweepCache:
    """Process-wide cache so figure modules reuse each other's runs."""
    key = (settings.length, settings.seed, settings.warmup_fraction)
    if key not in _shared_caches:
        _shared_caches[key] = SweepCache(settings)
    return _shared_caches[key]


def pct(x: float) -> str:
    return f"{x:+.1%}"


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
