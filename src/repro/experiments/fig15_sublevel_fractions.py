"""Figure 15: fraction of accesses served from each sublevel.

All policies shift accesses toward sublevel 0 relative to the baseline's
capacity-proportional 25/25/50 split. NuRAPID and LRU-PEA reach the
highest sublevel-0 fractions — by paying for promotions with movement
energy (Figure 11) — while SLIP gets most of the shift for free through
energy-aware insertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .common import ALL_POLICIES, ExperimentSettings, Table, shared_cache


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, p) for b in settings.benchmarks for p in ALL_POLICIES]


def average_fractions(settings: Optional[ExperimentSettings] = None,
                      level: str = "L2") -> Dict[str, List[float]]:
    """{policy: [frac_sublevel0, frac1, frac2]} averaged over benchmarks."""
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    out: Dict[str, List[float]] = {}
    for policy in ALL_POLICIES:
        sums = [0.0, 0.0, 0.0]
        count = 0
        for benchmark in settings.benchmarks:
            result = cache.result(benchmark, policy)
            stats = {"L2": result.l2, "L3": result.l3}[level]
            fractions = stats.sublevel_access_fractions()
            if sum(fractions) == 0:
                continue
            for i, f in enumerate(fractions):
                sums[i] += f
            count += 1
        out[policy] = [s / count if count else 0.0 for s in sums]
    return out


def run(settings: Optional[ExperimentSettings] = None,
        level: str = "L2") -> Table:
    settings = settings or ExperimentSettings()
    data = average_fractions(settings, level)
    rows = [
        [policy] + [f"{f:.1%}" for f in data[policy]]
        for policy in ALL_POLICIES
    ]
    return Table(
        title=f"Figure 15 ({level}): access fraction per sublevel",
        headers=["policy", "sublevel 0", "sublevel 1", "sublevel 2"],
        rows=rows,
        notes=(
            "Baseline splits ~25/25/50 (capacity-proportional). All "
            "policies shift toward sublevel 0; NuRAPID/LRU-PEA furthest, "
            "at great movement-energy cost."
        ),
    )
