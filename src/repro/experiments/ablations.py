"""Ablation studies from the paper's text.

* **H-tree interconnect** (Section 2.1): an H-tree makes every access
  cost as much as the furthest bank; the paper measures +37% L2 / +32%
  L3 energy versus the hierarchical-bus baseline.
* **22 nm technology node** (Section 6): bank energy shrinks faster than
  wire energy, so SLIP+ABP's savings grow slightly (36% L2 / 25% L3).
* **Distribution bin width** (Section 6): 4-bit bins are within 1% of
  wider counters; 2-bit bins collapse because small hit counts round to
  zero and over-trigger bypassing.
* **Time-based sampling** (Section 4.2): without sampling, distribution
  metadata inflates L2 traffic by up to 27% (xalancbmk) and DRAM traffic
  by 6%; with Nsamp=16/Nstab=256 both stay under ~2%.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..sim.config import (
    SystemConfig,
    default_l2,
    default_l3,
    default_system,
)
from ..topology import (
    l2_geometry_45nm,
    l3_geometry_45nm,
    scale_to_22nm,
)
from .common import ExperimentSettings, Table, arithmetic_mean, pct
from .parallel import RunRequest, run_jobs

#: Representative subset for parameter sweeps (one pointer-chaser, one
#: phase-changer, one hot-set workload, one streamer).
SWEEP_BENCHMARKS: Tuple[str, ...] = ("soplex", "mcf", "sphinx3", "lbm")


def _request(settings: ExperimentSettings, benchmark: str, policy: str,
             **overrides) -> RunRequest:
    """A sweep cell at this ablation's scale (picklable for workers)."""
    return RunRequest(
        benchmark=benchmark,
        policy=policy,
        length=settings.length,
        seed=settings.seed,
        warmup_fraction=settings.warmup_fraction,
        **overrides,
    )


def _run_requests(settings: ExperimentSettings,
                  requests: List[RunRequest]):
    """Execute an ablation grid, serial or fanned out per settings.jobs.

    Returns (results in request order, SweepReport) — the report's
    lines are attached to the ablation's Table as its perf section.
    """
    report = run_jobs(requests, jobs=settings.jobs)
    return [job.result for job in report.results], report


# ----------------------------------------------------------------------
# H-tree topology study
# ----------------------------------------------------------------------
def htree_config() -> SystemConfig:
    """The Table 1 system with H-tree interconnects at L2 and L3."""
    l2_htree = l2_geometry_45nm().htree_access_energy_pj()
    l3_htree = l3_geometry_45nm().htree_access_energy_pj()
    return dataclasses.replace(
        default_system(),
        l2=default_l2(energies=(l2_htree,) * 3, baseline_energy=l2_htree),
        l3=default_l3(energies=(l3_htree,) * 3, baseline_energy=l3_htree),
    )


def run_htree(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    configs = (default_system(), htree_config())
    requests = [
        _request(settings, benchmark, "baseline", config=config)
        for benchmark in SWEEP_BENCHMARKS
        for config in configs
    ]
    results, report = _run_requests(settings, requests)
    increases = {"L2": [], "L3": []}
    rows = []
    for idx, benchmark in enumerate(SWEEP_BENCHMARKS):
        base, tree = results[2 * idx], results[2 * idx + 1]
        row = [benchmark]
        for level in ("L2", "L3"):
            increase = (
                tree.level_energy_pj(level) / base.level_energy_pj(level)
                - 1.0
            )
            increases[level].append(increase)
            row.append(pct(increase))
        rows.append(row)
    rows.append([
        "average",
        pct(arithmetic_mean(increases["L2"])),
        pct(arithmetic_mean(increases["L3"])),
    ])
    return Table(
        title="Ablation: H-tree interconnect energy increase vs baseline",
        headers=["benchmark", "L2 increase", "L3 increase"],
        rows=rows,
        notes="Paper: H-tree increases L2 energy by 37% and L3 by 32%.",
        perf=report.lines(),
    )


# ----------------------------------------------------------------------
# 22 nm technology study
# ----------------------------------------------------------------------
def config_22nm() -> SystemConfig:
    """Table 1 system with energies re-derived at 22 nm."""
    l2_geom = scale_to_22nm(l2_geometry_45nm())
    l3_geom = scale_to_22nm(l3_geometry_45nm())
    sublevels = (4, 4, 8)
    l2_energies = l2_geom.sublevel_energies_pj(sublevels)
    l3_energies = l3_geom.sublevel_energies_pj(sublevels)
    return dataclasses.replace(
        default_system(),
        l2=default_l2(
            energies=l2_energies,
            baseline_energy=l2_geom.uniform_access_energy_pj(),
            metadata_energy=0.5,
        ),
        l3=default_l3(
            energies=l3_energies,
            baseline_energy=l3_geom.uniform_access_energy_pj(),
            metadata_energy=1.25,
        ),
    )


def run_22nm(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    nodes = (("45nm", default_system()), ("22nm", config_22nm()))
    requests = [
        _request(settings, benchmark, policy, config=config)
        for _, config in nodes
        for benchmark in SWEEP_BENCHMARKS
        for policy in ("baseline", "slip_abp")
    ]
    results, report = _run_requests(settings, requests)
    pairs = iter(zip(results[::2], results[1::2]))
    rows = []
    for node_name, _ in nodes:
        savings = {"L2": [], "L3": []}
        for _ in SWEEP_BENCHMARKS:
            base, slip = next(pairs)
            for level in ("L2", "L3"):
                savings[level].append(slip.energy_savings_over(base, level))
        rows.append([
            node_name,
            pct(arithmetic_mean(savings["L2"])),
            pct(arithmetic_mean(savings["L3"])),
        ])
    return Table(
        title="Ablation: SLIP+ABP savings by technology node",
        headers=["node", "L2 savings", "L3 savings"],
        rows=rows,
        notes=(
            "Paper: 35%/22% at 45nm grows to 36%/25% at 22nm as wires "
            "dominate a larger share of access energy."
        ),
        perf=report.lines(),
    )


# ----------------------------------------------------------------------
# Distribution bin-width study
# ----------------------------------------------------------------------
def run_binwidth(settings: Optional[ExperimentSettings] = None,
                 bit_widths: Sequence[int] = (2, 3, 4, 6, 8)) -> Table:
    settings = settings or ExperimentSettings()
    configs = [default_system().with_slip(bin_bits=bits)
               for bits in bit_widths]
    requests = [
        _request(settings, benchmark, policy, config=config)
        for config in configs
        for benchmark in SWEEP_BENCHMARKS
        for policy in ("baseline", "slip_abp")
    ]
    results, report = _run_requests(settings, requests)
    pairs = iter(zip(results[::2], results[1::2]))
    rows = []
    for bits in bit_widths:
        savings = []
        for _ in SWEEP_BENCHMARKS:
            base, slip = next(pairs)
            savings.append(slip.energy_savings_over(base, "L2"))
        rows.append([f"{bits}-bit", pct(arithmetic_mean(savings))])
    return Table(
        title="Ablation: L2 savings vs distribution counter width",
        headers=["bin width", "L2 savings (SLIP+ABP)"],
        rows=rows,
        notes=(
            "Paper: 4-bit bins within 1% of larger widths; sharp drop at "
            "2 bits (hit counts round to zero, over-bypassing)."
        ),
        perf=report.lines(),
    )


# ----------------------------------------------------------------------
# rd-block granularity study (Section 7)
# ----------------------------------------------------------------------
def run_rdblock(settings: Optional[ExperimentSettings] = None,
                block_lines: Sequence[int] = (0, 32, 16, 8)) -> Table:
    """SLIP with reuse-distance blocks below page granularity.

    Section 7 proposes rd-blocks smaller than a page (with a SLIP-cache
    managing their metadata) for systems where per-page homogeneity does
    not hold. Finer blocks sharpen the profiles but multiply metadata
    traffic; this sweep shows the trade-off. 0 = one block per page.
    """
    settings = settings or ExperimentSettings()
    configs = [default_system().with_slip(rd_block_lines=lines)
               for lines in block_lines]
    requests = [
        _request(settings, benchmark, policy, config=config)
        for config in configs
        for benchmark in SWEEP_BENCHMARKS
        for policy in ("baseline", "slip_abp")
    ]
    results, report = _run_requests(settings, requests)
    pairs = iter(zip(results[::2], results[1::2]))
    rows = []
    for lines in block_lines:
        savings, dram = [], []
        for _ in SWEEP_BENCHMARKS:
            base, slip = next(pairs)
            savings.append(slip.energy_savings_over(base, "L2"))
            dram.append(slip.relative_dram_traffic(base))
        label = "page (4KB)" if lines == 0 else f"{lines * 64} B"
        rows.append([
            label,
            pct(arithmetic_mean(savings)),
            f"{arithmetic_mean(dram):.3f}",
        ])
    return Table(
        title="Ablation: rd-block granularity (Section 7 extension)",
        headers=["rd-block", "L2 savings", "relative DRAM traffic"],
        rows=rows,
        notes=(
            "Per-page profiles are the paper's default; sub-page blocks "
            "trade sharper per-block policies against extra metadata "
            "traffic through the SLIP-cache."
        ),
        perf=report.lines(),
    )


# ----------------------------------------------------------------------
# Replacement-policy study (Section 7)
# ----------------------------------------------------------------------
def run_replacement(settings: Optional[ExperimentSettings] = None,
                    replacements: Sequence[str] = ("lru", "drrip", "ship")
                    ) -> Table:
    """SLIP under different underlying replacement policies.

    Section 7 argues SLIP is orthogonal to replacement: DRRIP/SHiP are
    adapted by picking a random sublevel of the chunk (weighted by
    size), preserving their scan/thrash resistance. The study checks
    that SLIP+ABP's savings and miss behaviour hold across policies.
    """
    settings = settings or ExperimentSettings()
    requests = [
        _request(settings, benchmark, policy, replacement=replacement)
        for replacement in replacements
        for benchmark in SWEEP_BENCHMARKS
        for policy in ("baseline", "slip_abp")
    ]
    results, report = _run_requests(settings, requests)
    pairs = iter(zip(results[::2], results[1::2]))
    rows = []
    for replacement in replacements:
        savings, rel_misses = [], []
        for _ in SWEEP_BENCHMARKS:
            base, slip = next(pairs)
            savings.append(slip.energy_savings_over(base, "L2"))
            rel_misses.append(slip.relative_misses(base, "L2"))
        rows.append([
            replacement,
            pct(arithmetic_mean(savings)),
            f"{arithmetic_mean(rel_misses):.3f}",
        ])
    return Table(
        title="Ablation: SLIP+ABP under different replacement policies",
        headers=["replacement", "L2 savings", "relative L2 misses"],
        rows=rows,
        notes=(
            "Section 7: the randomized-sublevel adaptation preserves "
            "DRRIP/SHiP behaviour, so savings should be in the same "
            "band as LRU."
        ),
        perf=report.lines(),
    )


# ----------------------------------------------------------------------
# Time-based sampling study
# ----------------------------------------------------------------------
def run_sampling(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    benchmarks = ("soplex", "xalancbmk", "mcf")
    requests = [
        request
        for benchmark in benchmarks
        for request in (
            _request(settings, benchmark, "baseline"),
            _request(settings, benchmark, "slip_abp"),
            _request(settings, benchmark, "slip_abp", always_sample=True),
        )
    ]
    results, report = _run_requests(settings, requests)
    rows = []
    for idx, benchmark in enumerate(benchmarks):
        base, sampled, always = results[3 * idx:3 * idx + 3]
        # Overhead metric: metadata *accesses* (the paper's "traffic"),
        # relative to baseline demand accesses at the level.
        base_l2 = base.l2.demand_accesses or 1
        base_dram = base.dram_traffic() or 1
        def l2_meta(result):
            return result.l2.metadata_hits + result.l2.metadata_misses
        rows.append([
            benchmark,
            pct(l2_meta(always) / base_l2),
            pct(l2_meta(sampled) / base_l2),
            pct(always.dram_traffic() / base_dram - 1.0),
            pct(sampled.dram_traffic() / base_dram - 1.0),
        ])
    return Table(
        title="Ablation: metadata traffic, always-fetch vs time-based",
        headers=[
            "benchmark",
            "L2 meta (always)",
            "L2 meta (sampled)",
            "DRAM overhead (always)",
            "DRAM overhead (sampled)",
        ],
        rows=rows,
        notes=(
            "Paper: without sampling, metadata adds up to 27% L2 traffic "
            "and 6% DRAM traffic (xalancbmk); with Nsamp=16/Nstab=256 "
            "both stay under ~2%/1.5%."
        ),
        perf=report.lines(),
    )
