"""Figure 12: relative miss traffic (demand + metadata) at L2 and L3.

SLIP's metadata (PTE policy bits and per-page distributions) travels
through the hierarchy, so the figure reports total miss traffic —
demand plus overhead — relative to the baseline's demand misses. The
paper finds SLIP/SLIP+ABP *reduce* total traffic (-1.7%/-2.4% at L2,
-1%/-2.2% at L3) because bypassing avoids pollution, and that metadata
overhead is visible at L2 for TLB-heavy workloads but rarely reaches
DRAM (time-based sampling keeps it under ~2%).
"""

from __future__ import annotations

from typing import Optional

from .common import (
    ExperimentSettings,
    Table,
    arithmetic_mean,
    shared_cache,
)

PAPER_AVERAGES = {
    ("slip", "L2"): 0.983,
    ("slip_abp", "L2"): 0.976,
    ("slip", "L3"): 0.99,
    ("slip_abp", "L3"): 0.978,
}


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, p) for b in settings.benchmarks
            for p in ("baseline", "slip", "slip_abp")]


def run(settings: Optional[ExperimentSettings] = None,
        level: str = "L2") -> Table:
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    policies = ("slip", "slip_abp")
    rows = []
    rel = {p: [] for p in policies}
    demand_only = {p: [] for p in policies}
    for benchmark in settings.benchmarks:
        base = cache.result(benchmark, "baseline")
        row = [benchmark]
        for policy in policies:
            result = cache.result(benchmark, policy)
            relative = result.relative_misses(base, level)
            rel[policy].append(relative)
            base_demand = base.miss_traffic(level)["demand"] or 1
            dem = result.miss_traffic(level)["demand"] / base_demand
            demand_only[policy].append(dem)
            row.append(f"{relative:.3f} ({dem:.3f})")
        rows.append(row)
    rows.append(
        ["average"]
        + [
            f"{arithmetic_mean(rel[p]):.3f} "
            f"({arithmetic_mean(demand_only[p]):.3f})"
            for p in policies
        ]
    )
    return Table(
        title=f"Figure 12 ({level}): relative miss traffic vs baseline",
        headers=["benchmark", "slip total(demand)", "slip_abp total(demand)"],
        rows=rows,
        notes=(
            "Cells: total-including-metadata (demand-only). Paper "
            "averages (total): L2 0.983/0.976, L3 0.990/0.978."
        ),
    )
