"""Parallel execution engine for experiments and policy sweeps.

Every figure and ablation of the paper is a sweep over independent
(benchmark, policy) or (mix, policy) cells, so the whole table set is
embarrassingly parallel. This module turns one cell into a picklable
job descriptor (:class:`RunRequest` / :class:`MixRequest`), executes
batches of them either in-process or on a ``ProcessPoolExecutor``, and
reports per-job wall-clock and throughput so fan-out efficiency is
visible in every run.

Determinism contract: a job's entire behaviour is a pure function of
its request. Workers regenerate traces through the LRU-cached trace
factory (:func:`repro.workloads.benchmarks.make_trace`), which is
deterministic per ``(benchmark, length, seed)``, so the same request
grid produces byte-identical results at ``jobs=1`` and ``jobs=N``.
Worker count comes from the explicit ``jobs`` argument, else the
``REPRO_EXP_JOBS`` environment variable, else 1 (serial).
"""

from __future__ import annotations

import os
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..sim.config import SystemConfig
from ..sim.filtered import run_trace_filtered
from ..sim.multi_core import MulticoreResult, run_mix
from ..sim.results import RunResult
from ..workloads.benchmarks import make_trace

#: Environment variable read when no explicit worker count is given.
JOBS_ENV = "REPRO_EXP_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_EXP_JOBS`` > 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {raw!r}"
                ) from None
    if jobs is None:
        jobs = 1
    return max(1, jobs)


def derive_seed(base_seed: int, *components) -> int:
    """A deterministic per-job seed decorrelated from ``base_seed``.

    Sweeps that replicate the serial harness keep the base seed as-is
    (the serial loops run every cell with ``settings.seed``); use this
    for statistical replication jobs that must not share RNG streams.
    """
    salt = zlib.crc32(repr(components).encode())
    return (base_seed * 1_000_003 + salt) % (1 << 31)


# ----------------------------------------------------------------------
# Job descriptors (picklable, hashable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """One single-core simulation cell: a benchmark under a policy."""

    benchmark: str
    policy: str
    length: int
    seed: int = 0
    warmup_fraction: float = 0.25
    replacement: str = "lru"
    always_sample: bool = False
    #: ``None`` means the Table 1 default system (built in the worker).
    config: Optional[SystemConfig] = None

    def label(self) -> str:
        return f"{self.benchmark}/{self.policy}"

    @property
    def accesses(self) -> int:
        return self.length


@dataclass(frozen=True)
class MixRequest:
    """One multiprogrammed cell: a two-core mix under a policy."""

    mix: Tuple[str, ...]
    policy: str
    length_per_core: int
    seed: int = 0
    warmup_fraction: float = 0.3
    config: Optional[SystemConfig] = None

    def label(self) -> str:
        return f"{'+'.join(self.mix)}/{self.policy}"

    @property
    def accesses(self) -> int:
        return self.length_per_core * len(self.mix)


Request = Union[RunRequest, MixRequest]
Result = Union[RunResult, MulticoreResult]


@dataclass
class JobResult:
    """One executed request with its result and timing observability."""

    request: Request
    result: Result
    wall_seconds: float
    accesses: int
    pid: int

    @property
    def accesses_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.accesses / self.wall_seconds


def execute_request(request: Request) -> JobResult:
    """Run one job; pure function of the request (worker entry point)."""
    started = time.perf_counter()
    if isinstance(request, MixRequest):
        result: Result = run_mix(
            request.mix,
            request.policy,
            length_per_core=request.length_per_core,
            config=request.config,
            seed=request.seed,
            warmup_fraction=request.warmup_fraction,
        )
    else:
        trace = make_trace(request.benchmark, request.length, request.seed)
        # Filtered capture/replay: workers consult the capture store
        # (in-memory, or the shared on-disk store when
        # REPRO_CAPTURE_DIR is set) before simulating the front end.
        # Replayed cells dispatch to the batched back ends —
        # repro.sim.vector_replay for baseline-kind policies,
        # repro.sim.vector_replay_slip for slip kinds — fed by the
        # store's cached ReplayPlan unless REPRO_REPLAY_PLAN=0, and
        # gated by REPRO_VECTOR_REPLAY; all three knobs are plain
        # environment variables, so pool workers inherit the caller's
        # choice.
        result = run_trace_filtered(
            trace,
            request.policy,
            config=request.config,
            seed=request.seed,
            replacement=request.replacement,
            warmup_fraction=request.warmup_fraction,
            always_sample=request.always_sample,
        )
    wall = time.perf_counter() - started
    return JobResult(request, result, wall, request.accesses, os.getpid())


# ----------------------------------------------------------------------
# Batch execution + reporting
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """Timing/throughput observability for one executed batch.

    ``results`` preserves request order regardless of worker count, so
    callers can zip it back against their request list.
    """

    jobs: int
    elapsed_seconds: float
    results: List[JobResult] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        """Summed per-job wall-clock (serial-equivalent time)."""
        return sum(r.wall_seconds for r in self.results)

    @property
    def total_accesses(self) -> int:
        return sum(r.accesses for r in self.results)

    @property
    def aggregate_accesses_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_accesses / self.elapsed_seconds

    @property
    def speedup(self) -> float:
        """Parallel speedup: serial-equivalent time over elapsed time."""
        if self.elapsed_seconds <= 0:
            return 1.0
        return self.busy_seconds / self.elapsed_seconds

    def worker_pids(self) -> List[int]:
        return sorted({r.pid for r in self.results})

    def lines(self, per_job: bool = True) -> List[str]:
        """Human-readable per-job and aggregate throughput lines."""
        out = []
        if per_job:
            width = len(str(len(self.results)))
            for idx, job in enumerate(self.results, start=1):
                out.append(
                    f"[job {idx:>{width}}/{len(self.results)}] "
                    f"{job.request.label()}: {job.wall_seconds:.2f}s, "
                    f"{job.accesses_per_sec:,.0f} acc/s (pid {job.pid})"
                )
        out.append(
            f"[sweep] {len(self.results)} jobs on {self.jobs} worker(s) "
            f"({len(self.worker_pids())} process(es)): "
            f"{self.elapsed_seconds:.2f}s wall, "
            f"{self.busy_seconds:.2f}s serial-equivalent, "
            f"{self.speedup:.2f}x speedup, "
            f"{self.aggregate_accesses_per_sec:,.0f} acc/s aggregate"
        )
        return out

    def summary(self) -> str:
        return "\n".join(self.lines(per_job=False))


def run_jobs(requests: Iterable[Request],
             jobs: Optional[int] = None) -> SweepReport:
    """Execute a batch of requests on up to ``jobs`` worker processes.

    ``jobs <= 1`` (or a single request) runs in-process with the same
    reporting, so serial and parallel callers share one code path.
    """
    request_list = list(requests)
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    if jobs == 1 or len(request_list) <= 1:
        results = [execute_request(r) for r in request_list]
    else:
        workers = min(jobs, len(request_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(execute_request, request_list))
    elapsed = time.perf_counter() - started
    return SweepReport(jobs=jobs, elapsed_seconds=elapsed, results=results)


def sweep_requests(
    benchmarks: Sequence[str],
    policies: Sequence[str],
    length: int,
    seed: int = 0,
    warmup_fraction: float = 0.25,
    config: Optional[SystemConfig] = None,
    replacement: str = "lru",
) -> List[RunRequest]:
    """The full (benchmark x policy) grid as request descriptors."""
    return [
        RunRequest(
            benchmark=benchmark,
            policy=policy,
            length=length,
            seed=seed,
            warmup_fraction=warmup_fraction,
            replacement=replacement,
            config=config,
        )
        for benchmark in benchmarks
        for policy in policies
    ]


def run_policy_grid(
    benchmarks: Sequence[str],
    policies: Sequence[str],
    length: int,
    seed: int = 0,
    warmup_fraction: float = 0.25,
    config: Optional[SystemConfig] = None,
    replacement: str = "lru",
    jobs: Optional[int] = None,
) -> Tuple[Dict[Tuple[str, str], RunResult], SweepReport]:
    """Run a whole grid and index results by (benchmark, policy)."""
    requests = sweep_requests(
        benchmarks, policies, length, seed=seed,
        warmup_fraction=warmup_fraction, config=config,
        replacement=replacement,
    )
    report = run_jobs(requests, jobs=jobs)
    results = {
        (job.request.benchmark, job.request.policy): job.result
        for job in report.results
    }
    return results, report
