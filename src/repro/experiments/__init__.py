"""Experiment harness: one module per paper table/figure + ablations.

See :mod:`repro.experiments.runner` for the CLI, or call each module's
``run(settings)`` directly; all single-core figures share one memoized
policy sweep (:func:`repro.experiments.common.shared_cache`).
"""

from .common import ALL_POLICIES, ExperimentSettings, Table, shared_cache

__all__ = ["ALL_POLICIES", "ExperimentSettings", "Table", "shared_cache"]
