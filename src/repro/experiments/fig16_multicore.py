"""Figure 16: two-core multiprogrammed mixes with a shared L3.

The paper runs eight random SPEC pairs on private 256 KB L2s + shared
2 MB L3 and reports 47% average L3 energy savings and 5.5% lower DRAM
traffic for SLIP+ABP — larger than single-core because interleaved
cores roughly double each line's observed reuse distance, pushing more
pages into (cheap) bypassing policies. NuRAPID and LRU-PEA again
increase L3 energy (+97% / +85%).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.multi_core import MulticoreResult
from ..workloads.mixes import MULTICORE_MIXES, mix_name
from .common import ExperimentSettings, Table, arithmetic_mean, pct
from .parallel import MixRequest, SweepReport, run_jobs

PAPER = {"L3": 0.47, "DRAM": 0.055}


def mix_results(
    settings: Optional[ExperimentSettings] = None,
    policies: Tuple[str, ...] = ("baseline", "slip_abp"),
    length_scale: float = 1.0,
) -> Tuple[Dict[Tuple[str, str], Dict[str, MulticoreResult]], SweepReport]:
    """Per-core trace length defaults to the full settings length: the
    shared L3 needs as much page-learning time as the single-core runs.

    Every (mix, policy) cell is an independent job, fanned out across
    ``settings.jobs`` workers; returns the results plus the sweep's
    timing report.
    """
    settings = settings or ExperimentSettings()
    per_core = max(20_000, int(settings.length * length_scale))
    requests = [
        MixRequest(
            mix=mix,
            policy=policy,
            length_per_core=per_core,
            seed=settings.seed,
            warmup_fraction=settings.warmup_fraction,
        )
        for mix in MULTICORE_MIXES
        for policy in policies
    ]
    report = run_jobs(requests, jobs=settings.jobs)
    jobs = iter(report.results)
    out: Dict[Tuple[str, str], Dict[str, MulticoreResult]] = {}
    for mix in MULTICORE_MIXES:
        out[mix] = {policy: next(jobs).result for policy in policies}
    return out, report


def run(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    results, report = mix_results(settings)
    rows = []
    l3_savings, combined, dram = [], [], []
    for mix, by_policy in results.items():
        base = by_policy["baseline"]
        slip = by_policy["slip_abp"]
        l3 = slip.savings_over(base, "L3")
        both = slip.savings_over(base, "L2+L3")
        traffic = slip.savings_over(base, "DRAM")
        l3_savings.append(l3)
        combined.append(both)
        dram.append(traffic)
        rows.append([mix_name(mix), pct(l3), pct(both), pct(traffic)])
    rows.append([
        "average",
        pct(arithmetic_mean(l3_savings)),
        pct(arithmetic_mean(combined)),
        pct(arithmetic_mean(dram)),
    ])
    return Table(
        title="Figure 16: two-core shared-L3 mixes (SLIP+ABP vs baseline)",
        headers=["mix", "L3 savings", "L2+L3 savings", "DRAM traffic saved"],
        rows=rows,
        notes=(
            "Paper: 47% average L3 energy savings, 5.5% DRAM traffic "
            "reduction; worst-case DRAM degradation 2% (leslie3D+soplex)."
        ),
        perf=report.lines(),
    )
