"""Figure 14: breakdown of insertions by optimal-SLIP class.

Each insertion (or bypass) at a level is classified by the SLIP that
steered it: the All-Bypass Policy, a partial-bypass SLIP (some sublevels
unused), the Default SLIP, or another non-bypassing multi-chunk SLIP.
The paper observes that ABP + partial bypass + Default cover >95% of
insertions, that 27% of L2 and 14% of L3 insertions are full bypasses,
and that multi-chunk non-bypassing SLIPs are rarely optimal.
"""

from __future__ import annotations

from typing import Dict, Optional

from .common import ExperimentSettings, Table, shared_cache

PAPER = {"L2_bypass": 0.27, "L3_bypass": 0.14}
CLASSES = ("abp", "partial_bypass", "default", "other")


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, "slip_abp") for b in settings.benchmarks]


def class_fractions(settings: Optional[ExperimentSettings] = None,
                    policy: str = "slip_abp",
                    level: str = "L2") -> Dict[str, Dict[str, float]]:
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    out = {}
    for benchmark in settings.benchmarks:
        result = cache.result(benchmark, policy)
        stats = {"L2": result.l2, "L3": result.l3}[level]
        total = sum(stats.insertions_by_class.values()) or 1
        out[benchmark] = {
            cls: stats.insertions_by_class[cls] / total for cls in CLASSES
        }
    return out


def run(settings: Optional[ExperimentSettings] = None,
        level: str = "L2") -> Table:
    settings = settings or ExperimentSettings()
    data = class_fractions(settings, level=level)
    rows = []
    totals = {cls: [] for cls in CLASSES}
    for benchmark, fracs in data.items():
        rows.append(
            [benchmark] + [f"{fracs[cls]:.1%}" for cls in CLASSES]
        )
        for cls in CLASSES:
            totals[cls].append(fracs[cls])
    rows.append(
        ["average"]
        + [
            f"{sum(totals[cls]) / len(totals[cls]):.1%}"
            for cls in CLASSES
        ]
    )
    return Table(
        title=f"Figure 14 ({level}): insertions by SLIP class (SLIP+ABP)",
        headers=["benchmark", "ABP", "partial bypass", "default", "others"],
        rows=rows,
        notes=(
            "Paper: 27% of L2 and 14% of L3 insertions fully bypassed; "
            "ABP+partial+default cover >95%."
        ),
    )
