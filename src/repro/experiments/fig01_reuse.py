"""Figure 1: lines broken down by number of reuses before LLC eviction.

The paper motivates SLIP by showing that, in a 2 MB LLC, more than 70%
of lines are evicted without a single reuse and another ~21% see exactly
one. We run the baseline hierarchy and histogram per-fill hit counts at
eviction time.
"""

from __future__ import annotations

from typing import Optional

from ..workloads.benchmarks import FIG1_BENCHMARKS
from .common import ExperimentSettings, Table, arithmetic_mean, shared_cache

PAPER_AVERAGE_NR0 = 0.70  # ">70% of lines receive no hits"
PAPER_AVERAGE_NR1 = 0.21


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, "baseline") for b in FIG1_BENCHMARKS]


def run(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    rows = []
    fractions = {"0": [], "1": [], "2": [], ">2": []}
    for benchmark in FIG1_BENCHMARKS:
        result = cache.result(benchmark, "baseline")
        histogram = result.l3.reuse_histogram
        total = sum(histogram.values()) or 1
        row = [benchmark]
        for key in ("0", "1", "2", ">2"):
            frac = histogram[key] / total
            fractions[key].append(frac)
            row.append(f"{frac:.1%}")
        rows.append(row)
    rows.append(
        ["average"]
        + [f"{arithmetic_mean(fractions[k]):.1%}" for k in ("0", "1", "2", ">2")]
    )
    return Table(
        title="Figure 1: lines by number of reuses (NR) before LLC eviction",
        headers=["benchmark", "NR=0", "NR=1", "NR=2", "NR>2"],
        rows=rows,
        notes=(
            f"Paper: average NR=0 > {PAPER_AVERAGE_NR0:.0%}, "
            f"NR=1 ~ {PAPER_AVERAGE_NR1:.0%} of the remainder."
        ),
    )


def average_nr0(settings: Optional[ExperimentSettings] = None) -> float:
    """Machine-readable headline number (used by tests/benches)."""
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    values = []
    for benchmark in FIG1_BENCHMARKS:
        histogram = cache.result(benchmark, "baseline").l3.reuse_histogram
        total = sum(histogram.values()) or 1
        values.append(histogram["0"] / total)
    return arithmetic_mean(values)
