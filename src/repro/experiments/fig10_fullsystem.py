"""Figure 10: full-system dynamic energy savings.

The paper reports 0.73% (SLIP) and 1.68% (SLIP+ABP) across core, all
caches and DRAM: lower-level caches are a modest slice of total dynamic
energy, so 35%/22% cache savings compress to low single digits at the
system level. The core-energy constant in :class:`CoreConfig` is
calibrated so the L2+L3 share sits in the range the paper implies.
"""

from __future__ import annotations

from typing import Optional

from .common import (
    ExperimentSettings,
    Table,
    arithmetic_mean,
    pct,
    shared_cache,
)

PAPER_AVERAGES = {"slip": 0.0073, "slip_abp": 0.0168}


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, p) for b in settings.benchmarks
            for p in ("baseline", "slip", "slip_abp")]


def run(settings: Optional[ExperimentSettings] = None) -> Table:
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    policies = ("slip", "slip_abp")
    rows = []
    sums = {p: [] for p in policies}
    for benchmark in settings.benchmarks:
        base = cache.result(benchmark, "baseline")
        row = [benchmark]
        for policy in policies:
            saving = cache.result(benchmark, policy).full_system_savings_over(
                base
            )
            sums[policy].append(saving)
            row.append(pct(saving))
        rows.append(row)
    rows.append(
        ["average"] + [pct(arithmetic_mean(sums[p])) for p in policies]
    )
    return Table(
        title="Figure 10: full-system dynamic energy savings",
        headers=["benchmark", "slip", "slip_abp"],
        rows=rows,
        notes="Paper averages: SLIP +0.73%, SLIP+ABP +1.68%.",
    )
