"""Figure 9: L2 and L3 energy savings of SLIP and SLIP+ABP.

Paper headline: SLIP saves 21% (L2) / 13% (L3); adding ABP raises that
to 35% / 22%. NuRAPID and LRU-PEA are omitted from the figure because
they *increase* energy (by 84%/94% and 79%/83% respectively) — we report
them in the notes the same way.
"""

from __future__ import annotations

from typing import Dict, Optional

from .common import (
    ExperimentSettings,
    Table,
    arithmetic_mean,
    pct,
    shared_cache,
)

PAPER_AVERAGES = {
    ("slip", "L2"): 0.21,
    ("slip", "L3"): 0.13,
    ("slip_abp", "L2"): 0.35,
    ("slip_abp", "L3"): 0.22,
    ("nurapid", "L2"): -0.84,
    ("nurapid", "L3"): -0.94,
    ("lru_pea", "L2"): -0.79,
    ("lru_pea", "L3"): -0.83,
}


def required_cells(settings: ExperimentSettings):
    """Shared-sweep cells this figure reads (for parallel prefetch)."""
    return [(b, p) for b in settings.benchmarks
            for p in ("baseline", "slip", "slip_abp")]


def savings_by_benchmark(
    settings: Optional[ExperimentSettings] = None,
    policies=("slip", "slip_abp"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """{policy: {level: {benchmark: savings}}} over the shared sweep."""
    settings = settings or ExperimentSettings()
    cache = shared_cache(settings)
    out: Dict[str, Dict[str, Dict[str, float]]] = {
        p: {"L2": {}, "L3": {}} for p in policies
    }
    for benchmark in settings.benchmarks:
        base = cache.result(benchmark, "baseline")
        for policy in policies:
            result = cache.result(benchmark, policy)
            for level in ("L2", "L3"):
                out[policy][level][benchmark] = result.energy_savings_over(
                    base, level
                )
    return out


def run(settings: Optional[ExperimentSettings] = None,
        include_nuca: bool = False) -> Table:
    settings = settings or ExperimentSettings()
    policies = ("slip", "slip_abp") + (
        ("nurapid", "lru_pea") if include_nuca else ()
    )
    data = savings_by_benchmark(settings, policies)
    rows = []
    for benchmark in settings.benchmarks:
        rows.append(
            [benchmark]
            + [
                pct(data[p][lvl][benchmark])
                for p in policies
                for lvl in ("L2", "L3")
            ]
        )
    rows.append(
        ["average"]
        + [
            pct(arithmetic_mean(list(data[p][lvl].values())))
            for p in policies
            for lvl in ("L2", "L3")
        ]
    )
    headers = ["benchmark"] + [
        f"{p}:{lvl}" for p in policies for lvl in ("L2", "L3")
    ]
    return Table(
        title="Figure 9: energy savings over the regular hierarchy",
        headers=headers,
        rows=rows,
        notes=(
            "Paper averages: SLIP 21%/13% (L2/L3), SLIP+ABP 35%/22%; "
            "NuRAPID -84%/-94%, LRU-PEA -79%/-83% (they increase energy)."
        ),
    )
