"""SLIP policy representation and enumeration (Section 3.1).

A SLIP partitions a cache level's sublevels into an ordered list of
*chunks*. A line is inserted into chunk 0 and on eviction from chunk i
moves to chunk i+1; eviction from the last chunk leaves the level.
Chunks are consecutive groups of sublevels starting at sublevel 0 —
"skipping" sublevels saves <1% energy (footnote 1 of the paper) — so a
level with S sublevels admits exactly 2**S SLIPs, representable in S
bits. The empty SLIP is the All-Bypass Policy and the single-chunk SLIP
over every sublevel is the Default SLIP.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

Chunk = Tuple[int, ...]


@dataclass(frozen=True)
class Slip:
    """One sub-level insertion policy: an ordered tuple of chunks."""

    chunks: Tuple[Chunk, ...]

    def __post_init__(self) -> None:
        expected = 0
        for chunk in self.chunks:
            if not chunk:
                raise ValueError("empty chunk in SLIP")
            for sublevel in chunk:
                if sublevel != expected:
                    raise ValueError(
                        f"SLIP chunks must cover consecutive sublevels "
                        f"starting at 0, got {self.chunks}"
                    )
                expected += 1

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def num_sublevels_used(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    @property
    def is_abp(self) -> bool:
        """The All-Bypass Policy: no chunks, every access misses."""
        return not self.chunks

    def is_default(self, num_sublevels: int) -> bool:
        """The Default SLIP: one chunk containing every sublevel."""
        return (
            self.num_chunks == 1
            and self.num_sublevels_used == num_sublevels
        )

    def classify(self, num_sublevels: int) -> str:
        """Figure 14's four insertion classes."""
        if self.is_abp:
            return "abp"
        if self.num_sublevels_used < num_sublevels:
            return "partial_bypass"
        if self.is_default(num_sublevels):
            return "default"
        return "other"

    def chunk_of_sublevel(self, sublevel: int) -> int:
        """Index of the chunk containing a sublevel; -1 if bypassed."""
        for idx, chunk in enumerate(self.chunks):
            if sublevel in chunk:
                return idx
        return -1

    def __str__(self) -> str:
        if self.is_abp:
            return "{}"
        inner = ", ".join(
            "[" + ",".join(str(s) for s in chunk) + "]"
            for chunk in self.chunks
        )
        return "{" + inner + "}"


def _compositions(n: int) -> List[Tuple[int, ...]]:
    """All ordered compositions of n (ways to split n into parts)."""
    if n == 0:
        return [()]
    out = []
    for first in range(1, n + 1):
        for rest in _compositions(n - first):
            out.append((first,) + rest)
    return out


@lru_cache(maxsize=None)
def enumerate_slips(num_sublevels: int) -> Tuple[Slip, ...]:
    """All 2**S SLIPs for a level with S sublevels, in canonical order.

    Index 0 is the ABP; the last index is the single-chunk Default SLIP
    convention is not guaranteed — use :func:`default_slip` / ``is_abp``.
    """
    slips: List[Slip] = []
    for used in range(num_sublevels + 1):
        for parts in _compositions(used):
            chunks, start = [], 0
            for part in parts:
                chunks.append(tuple(range(start, start + part)))
                start += part
            slips.append(Slip(tuple(chunks)))
    assert len(slips) == 1 << num_sublevels
    return tuple(slips)


def default_slip(num_sublevels: int) -> Slip:
    """The Default SLIP: one chunk spanning every sublevel."""
    return Slip((tuple(range(num_sublevels)),))


def abp_slip() -> Slip:
    """The All-Bypass Policy."""
    return Slip(())


class SlipSpace:
    """The SLIP universe for one cache level.

    Maps between :class:`Slip` objects and their S-bit hardware ids, and
    resolves chunks to concrete way ranges given the level's sublevel
    partition.
    """

    def __init__(self, sublevel_ways: Sequence[int],
                 sublevel_capacity_lines: Sequence[int]) -> None:
        if len(sublevel_ways) != len(sublevel_capacity_lines):
            raise ValueError("sublevel spec lengths differ")
        self.sublevel_ways = tuple(sublevel_ways)
        self.sublevel_capacity_lines = tuple(sublevel_capacity_lines)
        self.num_sublevels = len(sublevel_ways)
        self.slips = enumerate_slips(self.num_sublevels)
        self._id_of = {slip: idx for idx, slip in enumerate(self.slips)}
        self.default_id = self._id_of[default_slip(self.num_sublevels)]
        self.abp_id = self._id_of[abp_slip()]
        # Precompute way tuples per (slip id, chunk index).
        chunk_ways: List[Tuple[Tuple[int, ...], ...]] = []
        for slip in self.slips:
            per_chunk = []
            for chunk in slip.chunks:
                ways: List[int] = []
                for sublevel in chunk:
                    start = sum(self.sublevel_ways[:sublevel])
                    ways.extend(range(start, start + self.sublevel_ways[sublevel]))
                per_chunk.append(tuple(ways))
            chunk_ways.append(tuple(per_chunk))
        # Hot-path tables, indexed by SLIP id: the placement controller
        # runs one fill per miss at every SLIP level, and indexing a
        # tuple is measurably cheaper than a method call per frame.
        self.chunk_ways_by_id: Tuple[Tuple[Tuple[int, ...], ...], ...] = \
            tuple(chunk_ways)
        self.num_chunks_by_id: Tuple[int, ...] = tuple(
            len(per_chunk) for per_chunk in chunk_ways
        )
        self.class_by_id: Tuple[str, ...] = tuple(
            slip.classify(self.num_sublevels) for slip in self.slips
        )
        # Every rotation of each SLIP's insertion (chunk 0) ways, in the
        # exact visit order CacheLevel.choose_victim would produce for a
        # given allocation-rotor value; the fused SLIP fill indexes
        # ``orders[rotor % len(ways)]`` instead of slicing per fill.
        # The ABP (no chunks) maps to an empty tuple, never indexed.
        self.chunk0_orders_by_id: Tuple[Tuple[Tuple[int, ...], ...], ...] = \
            tuple(
                tuple(
                    per_chunk[0][r:] + per_chunk[0][:r]
                    for r in range(len(per_chunk[0]))
                ) if per_chunk else ()
                for per_chunk in chunk_ways
            )

    def __len__(self) -> int:
        return len(self.slips)

    def slip_of(self, slip_id: int) -> Slip:
        return self.slips[slip_id]

    def id_of(self, slip: Slip) -> int:
        return self._id_of[slip]

    def chunk_ways(self, slip_id: int, chunk_idx: int) -> Tuple[int, ...]:
        """Way indices composing one chunk of one SLIP."""
        return self.chunk_ways_by_id[slip_id][chunk_idx]

    def num_chunks(self, slip_id: int) -> int:
        return self.num_chunks_by_id[slip_id]

    def cumulative_chunk_capacity(self, slip_id: int) -> Tuple[int, ...]:
        """Cumulative line capacity through each chunk of a SLIP."""
        slip = self.slips[slip_id]
        out, total = [], 0
        for chunk in slip.chunks:
            total += sum(self.sublevel_capacity_lines[s] for s in chunk)
            out.append(total)
        return tuple(out)

    def classify(self, slip_id: int) -> str:
        return self.class_by_id[slip_id]
