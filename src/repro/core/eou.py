"""The Energy Optimizer Unit (Sections 3.2 and 4.4).

The EOU is an array of Energy Evaluation Units, one per SLIP. Each EEU
holds the fixed-point coefficient vector of its SLIP (Equation 5) and,
given a reuse-distance distribution, computes a dot product against the
*raw* low-precision bin counters — normalization does not change the
argmin, so the hardware never divides. A comparator tree then picks the
minimum-energy SLIP, with ties resolved toward the lower SLIP id.

The synthesized unit in the paper takes 2 cycles per optimization at
2.4 GHz, is fully pipelined, and consumes 1.27 pJ per operation; those
costs are charged through :class:`EouStats`.

The software EOU memoizes its argmin: with B-bit counters and K+1 bins
the input space holds at most ``2**(B*(K+1))`` distinct counter tuples
(4-bit counters x <=5 bins in the evaluation), times two flags
(``allow_abp`` and the bypass-evidence gate), so every recomputation
after the first for a given key is a dict probe. The cache can never go
stale: coefficients, the SLIP space and the evidence floor are all
fixed at construction, and both inputs that vary are part of the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .distribution import DEFAULT_WARM_SAMPLES, ReuseDistanceDistribution
from .energy_model import SlipEnergyModel

EOU_LATENCY_CYCLES = 2


@dataclass
class EouStats:
    """Cost accounting for EOU invocations.

    ``energy_pj`` is a materialized product, not an accumulated float:
    the hot path only bumps the integer ``optimizations`` counter and
    the published energy is always ``optimizations * energy_pj_per_op``
    exactly — the same deferred-accounting rule the cache levels follow
    (one rounding, independent of invocation count).
    """

    optimizations: int = 0
    tlb_block_cycles: int = 0
    energy_pj_per_op: float = 1.27

    @property
    def energy_pj(self) -> float:
        return self.optimizations * self.energy_pj_per_op


class EnergyEvaluationUnit:
    """One EEU: a fixed-point dot-product engine for one SLIP."""

    __slots__ = ("slip_id", "coefficients")

    def __init__(self, slip_id: int, coefficients: Sequence[int]) -> None:
        self.slip_id = slip_id
        self.coefficients = tuple(coefficients)

    def evaluate(self, counts: Sequence[int]) -> int:
        """Integer energy estimate: dot(alpha_fixed, raw counters)."""
        if len(counts) != len(self.coefficients):
            raise ValueError("bin count mismatch")
        return sum(a * c for a, c in zip(self.coefficients, counts))


class EnergyOptimizerUnit:
    """The full EOU: EEU array plus min-select (Figure 8)."""

    def __init__(self, model: SlipEnergyModel,
                 energy_pj_per_op: float = 1.27,
                 min_abp_samples: int = 0) -> None:
        """``min_abp_samples``: evidence floor for choosing the ABP.

        Full bypass is the one policy whose mistake cost is a next-level
        access *per reference*; at an LLC backed by DRAM that breaks
        even near a 1% hit rate, so the optimizer refuses to bypass
        until the sampling period has gathered this many samples.
        """
        self.model = model
        self.space = model.space
        self.energy_pj_per_op = energy_pj_per_op
        self.min_abp_samples = min_abp_samples
        quantized = model.quantized_alphas()
        self.eeus: List[EnergyEvaluationUnit] = [
            EnergyEvaluationUnit(slip_id, alpha)
            for slip_id, alpha in enumerate(quantized)
        ]
        # EEUs eligible under each (allow_abp, confident) combination;
        # the filtering inside the argmin loop never changes, so it is
        # hoisted out of it entirely.
        space = self.space
        num_sublevels = space.num_sublevels
        self._eligible: Dict[Tuple[bool, bool],
                             Tuple[EnergyEvaluationUnit, ...]] = {}
        for allow_abp in (False, True):
            for confident in (False, True):
                self._eligible[(allow_abp, confident)] = tuple(
                    eeu for eeu in self.eeus
                    if (allow_abp or eeu.slip_id != space.abp_id)
                    and (confident
                         or space.slips[eeu.slip_id].num_sublevels_used
                         >= num_sublevels)
                )
        # argmin memo: (counts tuple, allow_abp, confident) -> SLIP id.
        self._memo: Dict[Tuple[Tuple[int, ...], bool, bool], int] = {}
        self.stats = EouStats(energy_pj_per_op=energy_pj_per_op)

    def reset_stats(self) -> None:
        """Fresh counters; the argmin memo stays (it is input-pure)."""
        self.stats = EouStats(energy_pj_per_op=self.energy_pj_per_op)

    @property
    def expected_energy_pj(self) -> float:
        """Ledger cross-check: optimizations times the per-op cost."""
        return self.stats.optimizations * self.energy_pj_per_op

    # slip-audit: twin=eou-optimize role=fast
    def optimize(self, distribution: ReuseDistanceDistribution,
                 allow_abp: bool = True,
                 evidence_samples: Optional[int] = None) -> int:
        """Minimum-energy SLIP id for a distribution's raw counters.

        ``allow_abp=False`` supports inclusive last-level caches, where
        bypassing the LLC would break inclusion (Section 4.3).
        ``evidence_samples`` is the number of samples gathered in the
        current sampling period, checked against ``min_abp_samples``;
        None means "plenty" (trust the distribution alone).
        """
        stats = self.stats
        stats.optimizations += 1
        stats.tlb_block_cycles += 1
        key = (
            tuple(distribution.counts),
            allow_abp,
            evidence_samples is None
            or evidence_samples >= self.min_abp_samples,
        )
        slip_id = self._memo.get(key)
        if slip_id is None:
            slip_id = self._memo[key] = self._argmin(*key)
        return slip_id

    # slip-audit: twin=eou-optimize role=ref
    def optimize_direct(self, distribution: ReuseDistanceDistribution,
                        allow_abp: bool = True,
                        evidence_samples: Optional[int] = None) -> int:
        """The un-memoized argmin, bypassing the cache and the stats.

        Used by the memoization-equivalence tests and by SimCheck's
        eou-memo invariant (a memo hit must equal a fresh argmin).
        """
        return self._argmin(
            tuple(distribution.counts),
            allow_abp,
            evidence_samples is None
            or evidence_samples >= self.min_abp_samples,
        )

    def _argmin(self, counts: Tuple[int, ...], allow_abp: bool,
                confident: bool) -> int:
        """Comparator tree over the eligible EEUs; pure in its inputs."""
        # Cold distribution: behave exactly like a cache without SLIP.
        if sum(counts) < DEFAULT_WARM_SAMPLES:
            return self.space.default_id
        best_id, best_energy = None, None
        for eeu in self._eligible[(allow_abp, confident)]:
            # Thin evidence already filtered capacity-discarding
            # policies (full or partial bypass) out of the pool.
            energy = sum(
                a * c for a, c in zip(eeu.coefficients, counts)
            )
            if best_energy is None or energy < best_energy:
                best_id, best_energy = eeu.slip_id, energy
        assert best_id is not None
        return best_id

    def optimize_float(self, distribution: ReuseDistanceDistribution,
                       allow_abp: bool = True) -> int:
        """Float reference optimizer (no fixed-point quantization)."""
        if not distribution.is_warm():
            return self.space.default_id
        return self.model.best_slip(
            distribution.probabilities(), allow_abp=allow_abp
        )
