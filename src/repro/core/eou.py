"""The Energy Optimizer Unit (Sections 3.2 and 4.4).

The EOU is an array of Energy Evaluation Units, one per SLIP. Each EEU
holds the fixed-point coefficient vector of its SLIP (Equation 5) and,
given a reuse-distance distribution, computes a dot product against the
*raw* low-precision bin counters — normalization does not change the
argmin, so the hardware never divides. A comparator tree then picks the
minimum-energy SLIP, with ties resolved toward the lower SLIP id.

The synthesized unit in the paper takes 2 cycles per optimization at
2.4 GHz, is fully pipelined, and consumes 1.27 pJ per operation; those
costs are charged through :class:`EouStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .distribution import ReuseDistanceDistribution
from .energy_model import SlipEnergyModel

EOU_LATENCY_CYCLES = 2


@dataclass
class EouStats:
    """Cost accounting for EOU invocations."""

    optimizations: int = 0
    energy_pj: float = 0.0
    tlb_block_cycles: int = 0


class EnergyEvaluationUnit:
    """One EEU: a fixed-point dot-product engine for one SLIP."""

    __slots__ = ("slip_id", "coefficients")

    def __init__(self, slip_id: int, coefficients: Sequence[int]) -> None:
        self.slip_id = slip_id
        self.coefficients = tuple(coefficients)

    def evaluate(self, counts: Sequence[int]) -> int:
        """Integer energy estimate: dot(alpha_fixed, raw counters)."""
        if len(counts) != len(self.coefficients):
            raise ValueError("bin count mismatch")
        return sum(a * c for a, c in zip(self.coefficients, counts))


class EnergyOptimizerUnit:
    """The full EOU: EEU array plus min-select (Figure 8)."""

    def __init__(self, model: SlipEnergyModel,
                 energy_pj_per_op: float = 1.27,
                 min_abp_samples: int = 0) -> None:
        """``min_abp_samples``: evidence floor for choosing the ABP.

        Full bypass is the one policy whose mistake cost is a next-level
        access *per reference*; at an LLC backed by DRAM that breaks
        even near a 1% hit rate, so the optimizer refuses to bypass
        until the sampling period has gathered this many samples.
        """
        self.model = model
        self.space = model.space
        self.energy_pj_per_op = energy_pj_per_op
        self.min_abp_samples = min_abp_samples
        quantized = model.quantized_alphas()
        self.eeus: List[EnergyEvaluationUnit] = [
            EnergyEvaluationUnit(slip_id, alpha)
            for slip_id, alpha in enumerate(quantized)
        ]
        self.stats = EouStats()

    @property
    def expected_energy_pj(self) -> float:
        """Ledger cross-check: optimizations times the per-op cost."""
        return self.stats.optimizations * self.energy_pj_per_op

    def optimize(self, distribution: ReuseDistanceDistribution,
                 allow_abp: bool = True,
                 evidence_samples: Optional[int] = None) -> int:
        """Minimum-energy SLIP id for a distribution's raw counters.

        ``allow_abp=False`` supports inclusive last-level caches, where
        bypassing the LLC would break inclusion (Section 4.3).
        ``evidence_samples`` is the number of samples gathered in the
        current sampling period, checked against ``min_abp_samples``;
        None means "plenty" (trust the distribution alone).
        """
        counts = distribution.counts
        self.stats.optimizations += 1
        self.stats.energy_pj += self.energy_pj_per_op
        self.stats.tlb_block_cycles += 1
        # Cold distribution: behave exactly like a cache without SLIP.
        if not distribution.is_warm():
            return self.space.default_id
        confident = (
            evidence_samples is None
            or evidence_samples >= self.min_abp_samples
        )
        num_sublevels = self.space.num_sublevels
        best_id, best_energy = None, None
        for eeu in self.eeus:
            if not allow_abp and eeu.slip_id == self.space.abp_id:
                continue
            if not confident and (
                self.space.slips[eeu.slip_id].num_sublevels_used
                < num_sublevels
            ):
                # Thin evidence: capacity-discarding policies (full or
                # partial bypass) are off the table until the sampling
                # period has gathered enough samples.
                continue
            energy = eeu.evaluate(counts)
            if best_energy is None or energy < best_energy:
                best_id, best_energy = eeu.slip_id, energy
        assert best_id is not None
        return best_id

    def optimize_float(self, distribution: ReuseDistanceDistribution,
                       allow_abp: bool = True) -> int:
        """Float reference optimizer (no fixed-point quantization)."""
        if not distribution.is_warm():
            return self.space.default_id
        return self.model.best_slip(
            distribution.probabilities(), allow_abp=allow_abp
        )
