"""Time-based sampling of page reuse behaviour (Section 4.2).

Each page is either *sampling* — its reuse-distance distribution is
collected and its lines use the Default SLIP — or *stable* — the
distribution is left alone and the PTE-resident SLIP steers insertions.
On each TLB miss the state is re-drawn randomly: sampling pages become
stable with probability 1/Nsamp and stable pages become sampling with
probability 1/Nstab, so on average only Nsamp/(Nsamp+Nstab) of TLB
misses (6% with the paper's 16/256) need to fetch distribution data,
bounding metadata traffic while still tracking phase changes.
"""

from __future__ import annotations

import random
from enum import Enum


class PageState(Enum):
    SAMPLING = "sampling"
    STABLE = "stable"


class TimeBasedSampler:
    """The random sampling/stable state machine for pages."""

    def __init__(self, nsamp: int = 16, nstab: int = 256,
                 seed: int = 0) -> None:
        if nsamp < 1 or nstab < 1:
            raise ValueError("Nsamp and Nstab must be positive")
        self.nsamp = nsamp
        self.nstab = nstab
        self._rng = random.Random(seed)

    def initial_state(self) -> PageState:
        """Pages start sampling: their behaviour is unknown."""
        return PageState.SAMPLING

    def transition(self, state: PageState) -> PageState:
        """Re-draw a page's state on a TLB miss."""
        if state is PageState.SAMPLING:
            if self._rng.random() < 1.0 / self.nsamp:
                return PageState.STABLE
            return PageState.SAMPLING
        if self._rng.random() < 1.0 / self.nstab:
            return PageState.SAMPLING
        return PageState.STABLE

    def expected_sampling_fraction(self) -> float:
        """Steady-state fraction of TLB misses finding a sampling page."""
        return self.nsamp / (self.nsamp + self.nstab)
