"""Quantized reuse-distance distributions (Section 4.1).

Each rd-block (one 4 KB page in the evaluation) keeps, per SLIP-managed
cache level, K+1 low-precision counters for a level with K sublevels:
one counter per reuse-distance range bounded by the cumulative sublevel
capacities, plus a final bin for distances at or beyond the level's full
capacity (where misses are counted). With 4-bit counters and 4 bins the
distribution costs 16 bits per level — 32 bits per page for L2 + L3.

To avoid saturation, *all* counters are halved whenever one would
overflow, which also ages the statistics toward recent behaviour.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

#: Samples below which a distribution is considered cold; shared with
#: the EOU so its memoized argmin and ``is_warm`` agree on one number.
DEFAULT_WARM_SAMPLES = 4


class ReuseDistanceDistribution:
    """Low-precision binned reuse-distance counters for one level."""

    __slots__ = ("boundaries", "counts", "counter_max")

    def __init__(self, boundaries: Sequence[int], counter_bits: int = 4) -> None:
        """``boundaries`` are the cumulative sublevel capacities in lines.

        A level with K sublevels passes K boundaries, producing K+1 bins.
        """
        if not boundaries:
            raise ValueError("need at least one bin boundary")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be non-decreasing")
        if counter_bits < 1:
            raise ValueError("counter_bits must be >= 1")
        self.boundaries: Tuple[int, ...] = tuple(boundaries)
        self.counter_max = (1 << counter_bits) - 1
        self.counts: List[int] = [0] * (len(boundaries) + 1)

    @classmethod
    def fresh(cls, boundaries: Tuple[int, ...],
              counter_max: int, num_bins: int) -> "ReuseDistanceDistribution":
        """Positional hot constructor for pre-validated parameters.

        The SLIP runtime builds one distribution per (page, level) on
        first touch; re-validating the same boundary tuple and counter
        width every time is measurable on the sampling path. Callers
        pass values already checked by a prior ``__init__``.
        """
        self = cls.__new__(cls)
        self.boundaries = boundaries
        self.counter_max = counter_max
        self.counts = [0] * num_bins
        return self

    @property
    def num_bins(self) -> int:
        return len(self.counts)

    @property
    def storage_bits(self) -> int:
        """Hardware cost of this distribution."""
        bits_per_counter = self.counter_max.bit_length()
        return bits_per_counter * self.num_bins

    def bin_of(self, reuse_distance: int) -> int:
        """Bin index for a reuse distance measured in cache lines.

        The boundaries are non-decreasing, so "first index whose bound
        exceeds the distance" is exactly ``bisect_right``: the number of
        boundaries at or below the distance. A linear boundary scan per
        recorded sample is measurable on the sampling path.
        """
        return bisect_right(self.boundaries, reuse_distance)

    def record(self, reuse_distance: int) -> None:
        """Count one access with the given reuse distance.

        ``record_bin`` is inlined here and in :meth:`record_miss`: one
        of the two runs per sampled hit and per L2/L3 demand miss, and
        the extra frame is measurable on the sampling path.
        """
        counts = self.counts
        bin_idx = bisect_right(self.boundaries, reuse_distance)
        if counts[bin_idx] >= self.counter_max:
            self.counts = counts = [c >> 1 for c in counts]
        counts[bin_idx] += 1

    def record_miss(self) -> None:
        """Misses are assumed to have reuse distance beyond capacity."""
        counts = self.counts
        if counts[-1] >= self.counter_max:
            self.counts = counts = [c >> 1 for c in counts]
        counts[-1] += 1

    def record_bin(self, bin_idx: int) -> None:
        if self.counts[bin_idx] >= self.counter_max:
            self.counts = [c >> 1 for c in self.counts]
        self.counts[bin_idx] += 1

    def total(self) -> int:
        return sum(self.counts)

    def probabilities(self) -> Tuple[float, ...]:
        """Normalized bin probabilities; uniform if no data yet."""
        total = self.total()
        if total == 0:
            return tuple(1.0 / self.num_bins for _ in self.counts)
        return tuple(c / total for c in self.counts)

    def is_warm(self, min_samples: int = DEFAULT_WARM_SAMPLES) -> bool:
        """Whether enough samples exist to trust the distribution."""
        return self.total() >= min_samples

    def copy(self) -> "ReuseDistanceDistribution":
        clone = ReuseDistanceDistribution(
            self.boundaries, self.counter_max.bit_length()
        )
        clone.counts = list(self.counts)
        return clone

    def pack(self) -> int:
        """Pack counters into the hardware bit layout (low bin first)."""
        bits = self.counter_max.bit_length()
        packed = 0
        for idx, count in enumerate(self.counts):
            packed |= (count & self.counter_max) << (idx * bits)
        return packed

    @classmethod
    def unpack(cls, packed: int, boundaries: Sequence[int],
               counter_bits: int = 4) -> "ReuseDistanceDistribution":
        dist = cls(boundaries, counter_bits)
        mask = dist.counter_max
        dist.counts = [
            (packed >> (idx * counter_bits)) & mask
            for idx in range(dist.num_bins)
        ]
        return dist

    def __repr__(self) -> str:
        return (
            f"ReuseDistanceDistribution(bounds={self.boundaries}, "
            f"counts={self.counts})"
        )
