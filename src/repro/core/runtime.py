"""SLIP runtime state: page table, TLB interaction and EOU invocation.

This is the software-visible half of Figure 7. The runtime owns the
per-page metadata (PTE policy bits, sampling state, packed reuse
distributions), decides on each TLB miss which metadata lines must be
fetched through the hierarchy, re-draws the page state, and re-runs the
EOU when a page settles into the stable state. Placement controllers
query it for the SLIP of a page and feed reuse-distance samples back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mem.tlb import Tlb, distribution_line_address, pte_line_address
from ..sim.config import SystemConfig
from .distribution import ReuseDistanceDistribution
from .energy_model import LevelEnergyParams, SlipEnergyModel
from .eou import EnergyOptimizerUnit
from .policy import SlipSpace
from .sampling import PageState, TimeBasedSampler


class SlipPageEntry:
    """Per-page metadata: 6 b policy + state bit in the PTE, 32 b in DRAM.

    ``sampling_visits`` counts TLB misses observed while sampling (a
    2-bit hardware counter): a page may only stabilize after two such
    visits, so the profile always includes at least one *re*-visit —
    otherwise a single cold sweep of the page would lock in a bypassing
    policy before any of its reuse could be observed.
    """

    __slots__ = ("state", "policies", "distributions", "sampling_visits",
                 "period_samples")

    def __init__(self, state: PageState,
                 policies: Dict[str, int],
                 distributions: Dict[str, ReuseDistanceDistribution]) -> None:
        self.state = state
        self.policies = policies
        self.distributions = distributions
        self.sampling_visits = 0
        # Samples gathered in the current sampling period (6-bit
        # saturating counter); the bypass evidence floor reads this.
        self.period_samples = 0


@dataclass
class RuntimeStats:
    tlb_miss_fetches: int = 0
    distribution_fetches: int = 0
    policy_recomputations: int = 0
    state_transitions_to_stable: int = 0
    state_transitions_to_sampling: int = 0


#: Shared "nothing to fetch" result for the TLB-hit case — the common
#: outcome of every demand access. Callers only iterate it; never
#: mutate.
_NO_FETCHES: List[int] = []


class BaselineRuntime:
    """MMU runtime for non-SLIP systems: TLB plus plain PTE fetches."""

    slip_enabled = False

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.tlb = Tlb(config.tlb_entries)
        self.stats = RuntimeStats()

    def on_demand_access(self, page: int) -> List[int]:
        """Returns metadata line addresses to fetch (empty on TLB hit)."""
        if self.tlb.access(page):
            return _NO_FETCHES
        self.stats.tlb_miss_fetches += 1
        return [pte_line_address(page)]

    def profile_key(self, page: int, line_addr: int) -> int:
        """The key profiles/policies are stored under (page here)."""
        return page

    def on_reference(self, page: int, line_addr: int) -> List[int]:
        """Per-access metadata hook; baseline only consults the TLB.

        Mirrors :meth:`on_demand_access` (with the TLB hit probe
        inlined) rather than delegating to it: this runs once per
        simulated access and each frame shows up in profiles.
        """
        tlb = self.tlb
        pages = tlb._pages
        if page in pages:
            pages.move_to_end(page)
            tlb.stats.hits += 1
            return _NO_FETCHES
        if not tlb.access(page):
            self.stats.tlb_miss_fetches += 1
            return [pte_line_address(page)]
        return _NO_FETCHES  # pragma: no cover — access() saw a hit

    def extra_stall_cycles(self) -> int:
        return 0


class SlipRuntime(BaselineRuntime):
    """MMU runtime with SLIP page metadata and EOUs for L2 and L3."""

    slip_enabled = True

    def __init__(self, config: SystemConfig, allow_abp: bool = True,
                 seed: int = 0,
                 level_energy_overrides: Optional[
                     Dict[str, LevelEnergyParams]] = None,
                 always_sample: bool = False) -> None:
        """``always_sample=True`` disables time-based sampling: the
        distribution is fetched and the policy recomputed on *every* TLB
        miss, reproducing the high-metadata-traffic design that
        motivates Section 4.2 (27% extra L2 traffic on xalancbmk)."""
        super().__init__(config)
        self.allow_abp = allow_abp
        self.always_sample = always_sample
        self.sampler = TimeBasedSampler(
            config.slip.nsamp, config.slip.nstab, seed=seed
        )
        # Section 7 extension: rd-blocks smaller than a page. Profiles
        # and policies are then keyed by block and cached in a TLB-like
        # SLIP-cache; the paper's evaluation default (0) keys by page.
        block_lines = config.slip.rd_block_lines
        if block_lines:
            if block_lines & (block_lines - 1):
                raise ValueError("rd_block_lines must be a power of two")
            if block_lines > config.lines_per_page:
                raise ValueError("rd-blocks cannot exceed a page")
            self.block_shift: Optional[int] = block_lines.bit_length() - 1
            self.slip_cache: Optional[Tlb] = Tlb(
                config.slip.slip_cache_entries
            )
        else:
            self.block_shift = None
            self.slip_cache = None
        self.spaces: Dict[str, SlipSpace] = {}
        self.models: Dict[str, SlipEnergyModel] = {}
        self.eous: Dict[str, EnergyOptimizerUnit] = {}
        overrides = level_energy_overrides or {}
        for level_cfg, next_energy in (
            (config.l2, config.l3.average_access_energy_pj()),
            (config.l3, config.dram.energy_pj_per_line),
        ):
            space = SlipSpace(
                level_cfg.sublevel_ways,
                tuple(
                    level_cfg.sublevel_capacity_lines(i)
                    for i in range(level_cfg.num_sublevels)
                ),
            )
            params = overrides.get(level_cfg.name) or LevelEnergyParams(
                sublevel_capacity_lines=tuple(
                    level_cfg.sublevel_capacity_lines(i)
                    for i in range(level_cfg.num_sublevels)
                ),
                sublevel_energy_pj=level_cfg.sublevel_energy_pj,
                next_level_energy_pj=next_energy,
                include_insertion_energy=config.slip.include_insertion_energy,
            )
            model = SlipEnergyModel(space, params)
            self.spaces[level_cfg.name] = space
            self.models[level_cfg.name] = model
            self.eous[level_cfg.name] = EnergyOptimizerUnit(
                model,
                config.slip.eou_energy_pj,
                min_abp_samples=(
                    config.slip.l3_abp_min_samples
                    if level_cfg.name == "L3" else 0
                ),
            )
        self.pages: Dict[int, SlipPageEntry] = {}
        # Hot-path tables: one distribution per (page, level) is built
        # on first touch and every demand access queries the page's
        # policy, so the per-level constants are resolved once here
        # rather than per page / per access.
        bits = config.slip.bin_bits
        counter_max = (1 << bits) - 1
        self._dist_protos: Tuple[Tuple[str, Tuple[int, ...], int], ...] = \
            tuple(
                (name, self._boundaries(name),
                 len(self._boundaries(name)) + 1)
                for name in self.spaces
            )
        self._counter_max = counter_max
        self._default_ids: Dict[str, int] = {
            name: space.default_id for name, space in self.spaces.items()
        }

    # ------------------------------------------------------------------
    # Page metadata lifecycle
    # ------------------------------------------------------------------
    def _new_entry(self) -> SlipPageEntry:
        # ``ReuseDistanceDistribution.fresh`` unrolled: one entry is
        # built per first-touched page and the classmethod dispatch per
        # level is measurable on the sampling path.
        counter_max = self._counter_max
        cls = ReuseDistanceDistribution
        new = cls.__new__
        distributions = {}
        for name, boundaries, num_bins in self._dist_protos:
            dist = new(cls)
            dist.boundaries = boundaries
            dist.counter_max = counter_max
            dist.counts = [0] * num_bins
            distributions[name] = dist
        return SlipPageEntry(
            self.sampler.initial_state(), dict(self._default_ids),
            distributions,
        )

    def _boundaries(self, level_name: str) -> Tuple[int, ...]:
        caps = self.spaces[level_name].sublevel_capacity_lines
        out, total = [], 0
        for cap in caps:
            total += cap
            out.append(total)
        return tuple(out)

    def entry_for(self, page: int) -> SlipPageEntry:
        entry = self.pages.get(page)
        if entry is None:
            entry = self._new_entry()
            self.pages[page] = entry
        return entry

    # ------------------------------------------------------------------
    # TLB-miss path (Figure 7, steps 1-4)
    # ------------------------------------------------------------------
    def profile_key(self, page: int, line_addr: int) -> int:
        if self.block_shift is None:
            return page
        return line_addr >> self.block_shift

    def on_reference(self, page: int, line_addr: int) -> List[int]:
        """TLB handling plus (in rd-block mode) SLIP-cache handling.

        The page-grain path mirrors ``BaselineRuntime.on_reference``
        (TLB-hit probe inlined) rather than delegating to
        :meth:`on_demand_access`: this runs once per simulated access
        and the two call frames show up in profiles.
        """
        if self.block_shift is None:
            tlb = self.tlb
            pages = tlb._pages
            if page in pages:
                pages.move_to_end(page)
                tlb.stats.hits += 1
                return _NO_FETCHES
            if not tlb.access(page):
                self.stats.tlb_miss_fetches += 1
                return [pte_line_address(page)] \
                    + self._key_metadata_fetches(page)
            return _NO_FETCHES  # pragma: no cover — access() saw a hit
        fetches = []
        if not self.tlb.access(page):
            self.stats.tlb_miss_fetches += 1
            fetches.append(pte_line_address(page))
        key = line_addr >> self.block_shift
        assert self.slip_cache is not None
        if not self.slip_cache.access(key):
            fetches.extend(self._key_metadata_fetches(key))
        return fetches

    def on_demand_access(self, page: int) -> List[int]:
        if self.tlb.access(page):
            return _NO_FETCHES
        self.stats.tlb_miss_fetches += 1
        return [pte_line_address(page)] + self._key_metadata_fetches(page)

    def _key_metadata_fetches(self, page: int) -> List[int]:
        """Distribution fetch + state machine for one profile key."""
        fetches: List[int] = []
        entry = self.entry_for(page)
        if self.always_sample:
            # No time-based sampling: fetch the distribution and refresh
            # the policy on every TLB miss.
            fetches.append(distribution_line_address(page))
            self.stats.distribution_fetches += 1
            if self._is_warm(entry):
                self._recompute_policies(entry)
            entry.state = PageState.STABLE
            return fetches
        was_sampling = entry.state is PageState.SAMPLING
        if was_sampling:
            # The distribution is only loaded for sampling pages.
            fetches.append(distribution_line_address(page))
            self.stats.distribution_fetches += 1
            if entry.sampling_visits < 3:
                entry.sampling_visits += 1
        new_state = self.sampler.transition(entry.state)
        if was_sampling and new_state is PageState.STABLE:
            if entry.sampling_visits < 2 or not self._is_warm(entry):
                # Don't freeze a policy off an empty or single-visit
                # profile: keep sampling until a re-visit has had the
                # chance to record the page's reuse.
                new_state = PageState.SAMPLING
            else:
                self._recompute_policies(entry)
                self.stats.state_transitions_to_stable += 1
                entry.sampling_visits = 0
                entry.period_samples = 0
        elif not was_sampling and new_state is PageState.SAMPLING:
            self.stats.state_transitions_to_sampling += 1
            entry.sampling_visits = 0
            entry.period_samples = 0
        entry.state = new_state
        return fetches

    #: Samples a page must accumulate before its profile may freeze.
    #: With the paper's Nsamp=16 a page observes many separate visits
    #: while sampling; this floor keeps that property when simulations
    #: accelerate state transitions — a single 4-line cluster touch must
    #: not lock in a bypassing policy, while a full 64-access streaming
    #: sweep of the page (whose counters plateau at 8 after halving) is
    #: decisive evidence.
    MIN_SAMPLES_TO_STABILIZE = 8

    def _is_warm(self, entry: SlipPageEntry) -> bool:
        # A page whose lines always hit in L2 never produces L3 samples,
        # so one warm level is enough to trust the profile.
        return any(
            dist.is_warm(self.MIN_SAMPLES_TO_STABILIZE)
            for dist in entry.distributions.values()
        )

    def _recompute_policies(self, entry: SlipPageEntry) -> None:
        for name, eou in self.eous.items():
            entry.policies[name] = eou.optimize(
                entry.distributions[name],
                allow_abp=self.allow_abp,
                evidence_samples=entry.period_samples,
            )
        self.stats.policy_recomputations += 1

    # ------------------------------------------------------------------
    # Queries from the cache controllers
    # ------------------------------------------------------------------
    def policy_for(self, level_name: str, page: int) -> int:
        """SLIP id steering insertions of this page's lines at a level.

        Sampling pages use the Default SLIP so that their full reuse
        behaviour remains observable (Section 4.2).
        """
        entry = self.pages.get(page)
        if entry is None or entry.state is PageState.SAMPLING:
            return self._default_ids[level_name]
        return entry.policies[level_name]

    def is_sampling(self, page: int) -> bool:
        if self.always_sample:
            return self.pages.get(page) is not None
        entry = self.pages.get(page)
        return entry is not None and entry.state is PageState.SAMPLING

    def policy_and_sampling(self, level_name: str,
                            page: int) -> Tuple[int, bool]:
        """Fused ``(policy_for, is_sampling)`` in one page-table probe.

        Every SLIP fill needs both answers, and they live on the same
        page entry; two separate calls mean two dict probes plus two
        dispatches per miss. Results are identical to the two separate
        queries by construction.
        """
        entry = self.pages.get(page)
        if entry is None:
            return self._default_ids[level_name], False
        if entry.state is PageState.SAMPLING:
            return self._default_ids[level_name], True
        return (entry.policies[level_name],
                True if self.always_sample else False)

    # ------------------------------------------------------------------
    # Reuse-distance sample collection (Figure 7, step 5)
    # ------------------------------------------------------------------
    def _collecting(self, entry: Optional[SlipPageEntry]) -> bool:
        if entry is None:
            return False
        return self.always_sample or entry.state is PageState.SAMPLING

    def record_reuse(self, level_name: str, page: int,
                     reuse_distance: int) -> None:
        # _collecting() inlined: this runs once per sampled hit.
        entry = self.pages.get(page)
        if entry is not None and (
            self.always_sample or entry.state is PageState.SAMPLING
        ):
            entry.distributions[level_name].record(reuse_distance)
            if entry.period_samples < 63:
                entry.period_samples += 1

    def record_miss_sample(self, level_name: str, page: int) -> None:
        # _collecting() inlined: this runs once per L2/L3 demand miss.
        entry = self.pages.get(page)
        if entry is not None and (
            self.always_sample or entry.state is PageState.SAMPLING
        ):
            entry.distributions[level_name].record_miss()
            if entry.period_samples < 63:
                entry.period_samples += 1

    # ------------------------------------------------------------------
    # Cost roll-ups
    # ------------------------------------------------------------------
    def eou_energy_pj(self, level_name: str) -> float:
        return self.eous[level_name].stats.energy_pj

    def extra_stall_cycles(self) -> int:
        """TLB blocks one cycle whenever a page's SLIP is updated."""
        return sum(
            eou.stats.tlb_block_cycles for eou in self.eous.values()
        )
