"""SLIP placement controller (Sections 3.1 and 4.3, Figures 6 and 7).

Implements the SLIP state machine on top of a :class:`CacheLevel`:

* on a fill, the line's page SLIP selects the insertion chunk (or
  bypasses the level entirely under the All-Bypass Policy);
* the displaced victim is moved to the *next* chunk of its own SLIP,
  which can cascade — each cascade step strictly advances the moved
  line's chunk index, so cascades always terminate;
* on a hit, the line's timestamp yields a reuse-distance sample for its
  page's distribution when the page is in the sampling state.

The controller is orthogonal to replacement: victim selection inside a
chunk is delegated to the level's replacement policy.

Like the baseline placement, :meth:`SlipPlacement.fill` has two
implementations. The fused fast path handles the dominant cases — ABP
bypass, fill into an invalid way, and fill whose victim leaves the
level immediately (its SLIP has no next chunk) — in one frame, reusing
the victim ``Line`` in place and resolving the page's ``(slip_id,
sampling)`` pair with a single page-table probe. It is only legal when
``level._fast_fill`` holds (stock LRU, no SimCheck wrappers observing
the placement primitives — REPRO_CHECK_INVARIANTS clears the flag at
install), and is accounting-equivalent to the general path by
construction; the golden tests pin that down byte-for-byte. Fills that
trigger an actual cascade movement are rarer and keep using the
primitive-by-primitive machinery.
"""

from __future__ import annotations

from typing import Optional

from ..mem.cache import INVALID_LINE, CacheLevel, EvictedLine, Line
from ..mem.stats import REUSE_KEYS
from ..policies.base import FillOutcome, PlacementPolicy
from .policy import SlipSpace
from .runtime import SlipRuntime
from .sampling import PageState

_INF = float("inf")

#: Shared outcome for fused fills with nothing to report upward (same
#: contract as the baseline's shared instance: consumers only read).
_INSERTED = FillOutcome(True)


class SlipPlacement(PlacementPolicy):
    """SLIP insertion and movement for one cache level."""

    performs_movement = True

    def __init__(self, space: SlipSpace, runtime: Optional[SlipRuntime],
                 movement_queue_pj: float = 0.3) -> None:
        super().__init__()
        self.space = space
        self.runtime = runtime
        self.movement_queue_pj = movement_queue_pj
        # SlipSpace hot tables, bound as instance attributes so the
        # per-fill lookups skip one attribute hop each.
        self._num_chunks_by_id = space.num_chunks_by_id
        self._class_by_id = space.class_by_id
        self._chunk0_orders_by_id = space.chunk0_orders_by_id
        # on_hit inlines the page-table probe, which needs the concrete
        # SlipRuntime surface (``pages`` dict + ``always_sample``).
        # Duck-typed runtimes (the shared-L3 router) take the generic
        # query path instead.
        self._paged_runtime = (
            runtime if isinstance(runtime, SlipRuntime) else None
        )

    def attach(self, level: CacheLevel) -> None:
        super().attach(level)
        if level.cfg.num_sublevels != self.space.num_sublevels:
            raise ValueError("SlipSpace does not match level sublevels")
        self._level_name = level.cfg.name
        self._default_id = self.space.default_id
        # Hit-path clamp: a reference that hit cannot have a stack
        # distance at or beyond the level's capacity (see on_hit).
        self._max_hit_distance = level.cfg.lines - 1
        # Structurally constant level internals, bound once for the
        # fused fill (mutable per-fill state — stats, rotor, access
        # counter, valid_count — is still read through ``level``).
        self._sets = level.sets
        self._indexes = level._index
        self._num_sets = level.num_sets
        self._sublevel_by_way = level.sublevel_by_way
        self._track_meta = level.track_metadata_energy
        self._replacement = level.replacement
        # Timestamp quantisation constants (set once in CacheLevel's
        # constructor), bound here so the per-fill and per-hit
        # timestamp updates skip two attribute hops each.
        self._granule = level._granule
        self._ts_mask = level._ts_mask
        # Fused-fill page probe: the page table dict, the always-sample
        # flag and this level's default SLIP id are all stable for the
        # runtime's lifetime, so bind them once and skip the
        # policy_and_sampling dispatch on every fill.
        runtime = self._paged_runtime
        if runtime is not None:
            self._pages = runtime.pages
            self._always_sample = runtime.always_sample
            self._level_default_id = runtime._default_ids[self._level_name]

    # ------------------------------------------------------------------
    def _slip_for(self, page: int, is_metadata: bool) -> int:
        if is_metadata or self.runtime is None or page < 0:
            return self._default_id
        return self.runtime.policy_for(self._level_name, page)

    # slip-audit: twin=slip-fill role=fast
    def fill(self, line_addr: int, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        level = self.level
        assert level is not None
        if not level._fast_fill:
            return self._fill_general(line_addr, page=page, dirty=dirty,
                                      is_metadata=is_metadata)

        # ----- fused (slip_id, sampling) resolution: one probe -----
        runtime = self.runtime
        if is_metadata or runtime is None or page < 0:
            slip_id, sampling = self._default_id, False
        elif self._paged_runtime is not None:
            # policy_and_sampling inlined over the prebound page table
            # (identical decision sequence, one dict probe, no call).
            entry = self._pages.get(page)
            if entry is None:
                slip_id, sampling = self._level_default_id, False
            elif entry.state is PageState.SAMPLING:
                slip_id, sampling = self._level_default_id, True
            else:
                slip_id = entry.policies[self._level_name]
                sampling = self._always_sample
        else:
            slip_id, sampling = runtime.policy_and_sampling(
                self._level_name, page
            )

        orders = self._chunk0_orders_by_id[slip_id]
        if not orders:
            # All-Bypass Policy: the line never enters this level.
            stats = level.stats
            stats.bypasses += 1
            stats.insertions_by_class[self._class_by_id[slip_id]] += 1
            if dirty:
                stats.dirty_bypass_forwards += 1
                return FillOutcome(False, [line_addr])
            return FillOutcome(False)

        # ----- fused victim scan (same order as choose_victim) -----
        set_idx = line_addr % self._num_sets
        lines = self._sets[set_idx]
        index = self._indexes[set_idx]
        level._alloc_rotor = rotor = (level._alloc_rotor + 1) % 64
        order = orders[rotor % len(orders)]
        victim_way = -1
        best_lru = _INF
        for way in order:
            line = lines[way]
            if not line.valid:
                victim_way = way
                victim = line
                break
            lru = line.lru
            if lru < best_lru:
                victim_way, best_lru = way, lru
        else:
            victim = lines[victim_way]

        stats = level.stats
        outcome: FillOutcome
        cascade_victim: Optional[EvictedLine] = None
        if victim.valid:
            if victim.chunk_idx + 1 \
                    >= self._num_chunks_by_id[victim.policy_id]:
                # Victim leaves the level for good (its SLIP has no
                # next chunk — true for every single-chunk policy, the
                # dominant case). Inlined record_departure; stock LRU
                # has no eviction feedback hook.
                hits = victim.hits
                stats.reuse_histogram[REUSE_KEYS[hits] if hits <= 2
                                      else ">2"] += 1
                del index[victim.tag]
                if victim.dirty:
                    stats.writebacks_out += 1
                    stats.wb_out_events[
                        self._sublevel_by_way[victim_way]] += 1
                    outcome = FillOutcome(True, [victim.tag])
                else:
                    outcome = _INSERTED
            else:
                # The victim moves to its next chunk: snapshot it and
                # run the cascade machinery after the install, exactly
                # like the general path.
                cascade_victim = EvictedLine(victim, victim_way)
                del index[victim.tag]
                outcome = FillOutcome(True)
        else:
            level.valid_count += 1
            outcome = _INSERTED
            if victim is INVALID_LINE:
                # First fill of this way: materialize a real Line in
                # place of the shared invalid sentinel.
                victim = lines[victim_way] = Line()

        # ----- installation (inlined place_fill over the reused Line;
        # every slot the general path's reset() clears AND some consumer
        # reads is re-set. The RRIP/SHiP/PEA bookkeeping slots (rrpv,
        # signature, outcome, demoted) are deliberately left alone:
        # the fast path requires stock LRU, under which nothing ever
        # reads or writes them, so they keep their constructor defaults
        # — same contract as skipping clean-eviction enumeration) -----
        line = victim
        line.valid = True
        line.tag = line_addr
        index[line_addr] = victim_way
        line.dirty = dirty
        line.policy_id = slip_id
        line.chunk_idx = 0
        line.page = page
        line.sampling = sampling
        line.is_metadata = is_metadata
        line.ts = (level.access_counter // self._granule) & self._ts_mask
        line.hits = 0
        replacement = self._replacement
        replacement._clock += 1
        line.lru = replacement._clock
        stats.insertions += 1
        stats.insert_events[self._sublevel_by_way[victim_way]] += 1
        if self._track_meta:
            stats.metadata_events += 1
        stats.insertions_by_class[self._class_by_id[slip_id]] += 1
        if cascade_victim is not None:
            self._cascade(set_idx, cascade_victim, outcome)
        return outcome

    # slip-audit: twin=slip-fill role=ref
    def _fill_general(self, line_addr: int, *, page: int = -1,
                      dirty: bool = False,
                      is_metadata: bool = False) -> FillOutcome:
        """Primitive-by-primitive fill; SimCheck observes each step."""
        level = self.level
        assert level is not None
        slip_id = self._slip_for(page, is_metadata)
        slip_class = self.space.classify(slip_id)

        if self.space.num_chunks(slip_id) == 0:
            # All-Bypass Policy: the line never enters this level.
            level.record_bypass(slip_class, dirty=dirty)
            outcome = FillOutcome(inserted=False)
            if dirty:
                outcome.add_writeback(line_addr)
            return outcome

        outcome = FillOutcome(inserted=True)
        set_idx = level.set_index(line_addr)
        candidates = self.space.chunk_ways(slip_id, 0)
        way = level.choose_victim(set_idx, candidates)
        victim = level.extract(set_idx, way)
        sampling = (
            self.runtime is not None
            and not is_metadata
            and self.runtime.is_sampling(page)
        )
        level.place_fill(
            set_idx, way, line_addr, dirty=dirty, page=page,
            policy_id=slip_id, chunk_idx=0, sampling=sampling,
            is_metadata=is_metadata, timestamp=level.timestamp_now(),
        )
        level.stats.insertions_by_class[slip_class] += 1
        if victim is not None:
            self._cascade(set_idx, victim, outcome)
        return outcome

    # ------------------------------------------------------------------
    def _cascade(self, set_idx: int, victim: EvictedLine,
                 outcome: FillOutcome) -> None:
        """Move a displaced line per its own SLIP, cascading (step 7).

        Every iteration strictly advances the pending line's chunk index
        within its own SLIP, so the loop terminates: a line with M
        chunks can be re-victimized at most M-1 times before leaving the
        level. The guard is a backstop, not a policy.
        """
        level = self.level
        assert level is not None
        space = self.space
        num_chunks_by_id = self._num_chunks_by_id
        guard = level.cfg.ways * (space.num_sublevels + 1)
        pending: Optional[EvictedLine] = victim
        while pending is not None:
            guard -= 1
            next_chunk = pending.chunk_idx + 1
            if (
                guard <= 0
                or next_chunk >= num_chunks_by_id[pending.policy_id]
            ):
                self._evict_from_level(pending, outcome)
                return
            ways = space.chunk_ways_by_id[pending.policy_id][next_chunk]
            way = level.choose_victim(set_idx, ways)
            displaced = level.extract(set_idx, way)
            level.place_moved(
                set_idx, way, pending, new_chunk_idx=next_chunk,
                movement_queue_pj=self.movement_queue_pj,
            )
            pending = displaced

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int) -> None:
        """Sample the reuse distance for sampling pages; refresh TL.

        The page-table probe and the sampling-state test are inlined
        (one ``pages.get`` instead of ``is_sampling`` + ``record_reuse``
        probing separately). This fuses only runtime-side queries that
        SimCheck never wraps, so it needs no fast-path gate: checked
        and unchecked runs execute the identical sequence of state
        updates.
        """
        level = self.level
        assert level is not None
        line = level.sets[set_idx][way]
        page = line.page
        runtime = self._paged_runtime
        if runtime is not None:
            if page >= 0 and not line.is_metadata:
                entry = runtime.pages.get(page)
                if entry is not None and (
                    runtime.always_sample
                    or entry.state is PageState.SAMPLING
                ):
                    granule = self._granule
                    ts_mask = self._ts_mask
                    delta = (((level.access_counter // granule)
                              & ts_mask) - line.ts) & ts_mask
                    distance = delta * granule
                    # Symmetric to counting misses in the last bin
                    # (Section 4.1): a reference that HIT this level
                    # necessarily had a stack distance below the
                    # level's capacity, so a timestamp difference
                    # inflated past capacity (other pages' accesses
                    # aged the counter) is clamped into the largest hit
                    # bin. Without this, pages with genuine reuse can
                    # be measured as all-miss and wrongly bypassed.
                    if distance > self._max_hit_distance:
                        distance = self._max_hit_distance
                    entry.distributions[self._level_name].record(distance)
                    if entry.period_samples < 63:
                        entry.period_samples += 1
        elif (
            self.runtime is not None
            and page >= 0
            and not line.is_metadata
            and self.runtime.is_sampling(page)
        ):
            distance = level.reuse_distance(line.ts)
            if distance > self._max_hit_distance:
                distance = self._max_hit_distance
            self.runtime.record_reuse(self._level_name, page, distance)
        line.ts = (level.access_counter // self._granule) & self._ts_mask
