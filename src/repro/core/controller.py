"""SLIP placement controller (Sections 3.1 and 4.3, Figures 6 and 7).

Implements the SLIP state machine on top of a :class:`CacheLevel`:

* on a fill, the line's page SLIP selects the insertion chunk (or
  bypasses the level entirely under the All-Bypass Policy);
* the displaced victim is moved to the *next* chunk of its own SLIP,
  which can cascade — each cascade step strictly advances the moved
  line's chunk index, so cascades always terminate;
* on a hit, the line's timestamp yields a reuse-distance sample for its
  page's distribution when the page is in the sampling state.

The controller is orthogonal to replacement: victim selection inside a
chunk is delegated to the level's replacement policy.
"""

from __future__ import annotations

from typing import Optional

from ..mem.cache import CacheLevel, EvictedLine
from ..policies.base import FillOutcome, PlacementPolicy
from .policy import SlipSpace
from .runtime import SlipRuntime


class SlipPlacement(PlacementPolicy):
    """SLIP insertion and movement for one cache level."""

    performs_movement = True

    def __init__(self, space: SlipSpace, runtime: Optional[SlipRuntime],
                 movement_queue_pj: float = 0.3) -> None:
        super().__init__()
        self.space = space
        self.runtime = runtime
        self.movement_queue_pj = movement_queue_pj

    def attach(self, level: CacheLevel) -> None:
        super().attach(level)
        if level.cfg.num_sublevels != self.space.num_sublevels:
            raise ValueError("SlipSpace does not match level sublevels")

    # ------------------------------------------------------------------
    def _slip_for(self, page: int, is_metadata: bool) -> int:
        if is_metadata or self.runtime is None or page < 0:
            return self.space.default_id
        return self.runtime.policy_for(self.level.cfg.name, page)

    def fill(self, line_addr: int, page: int = -1, dirty: bool = False,
             is_metadata: bool = False) -> FillOutcome:
        level = self.level
        assert level is not None
        slip_id = self._slip_for(page, is_metadata)
        slip_class = self.space.classify(slip_id)

        if self.space.num_chunks(slip_id) == 0:
            # All-Bypass Policy: the line never enters this level.
            level.record_bypass(slip_class, dirty=dirty)
            outcome = FillOutcome(inserted=False)
            if dirty:
                outcome.add_writeback(line_addr)
            return outcome

        outcome = FillOutcome(inserted=True)
        set_idx = level.set_index(line_addr)
        candidates = self.space.chunk_ways(slip_id, 0)
        way = level.choose_victim(set_idx, candidates)
        victim = level.extract(set_idx, way)
        sampling = (
            self.runtime is not None
            and not is_metadata
            and self.runtime.is_sampling(page)
        )
        level.place_fill(
            set_idx, way, line_addr, dirty=dirty, page=page,
            policy_id=slip_id, chunk_idx=0, sampling=sampling,
            is_metadata=is_metadata, timestamp=level.timestamp_now(),
        )
        level.stats.insertions_by_class[slip_class] += 1
        if victim is not None:
            self._cascade(set_idx, victim, outcome)
        return outcome

    # ------------------------------------------------------------------
    def _cascade(self, set_idx: int, victim: EvictedLine,
                 outcome: FillOutcome) -> None:
        """Move a displaced line per its own SLIP, cascading (step 7).

        Every iteration strictly advances the pending line's chunk index
        within its own SLIP, so the loop terminates: a line with M
        chunks can be re-victimized at most M-1 times before leaving the
        level. The guard is a backstop, not a policy.
        """
        level = self.level
        assert level is not None
        guard = level.cfg.ways * (self.space.num_sublevels + 1)
        pending: Optional[EvictedLine] = victim
        while pending is not None:
            guard -= 1
            next_chunk = pending.chunk_idx + 1
            if (
                guard <= 0
                or next_chunk >= self.space.num_chunks(pending.policy_id)
            ):
                self._evict_from_level(pending, outcome)
                return
            ways = self.space.chunk_ways(pending.policy_id, next_chunk)
            way = level.choose_victim(set_idx, ways)
            displaced = level.extract(set_idx, way)
            level.place_moved(
                set_idx, way, pending, new_chunk_idx=next_chunk,
                movement_queue_pj=self.movement_queue_pj,
            )
            pending = displaced

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int) -> None:
        """Sample the reuse distance for sampling pages; refresh TL."""
        level = self.level
        assert level is not None
        line = level.sets[set_idx][way]
        if (
            self.runtime is not None
            and line.page >= 0
            and not line.is_metadata
            and self.runtime.is_sampling(line.page)
        ):
            distance = level.reuse_distance(line.ts)
            # Symmetric to counting misses in the last bin (Section
            # 4.1): a reference that HIT this level necessarily had a
            # stack distance below the level's capacity, so a timestamp
            # difference inflated past capacity (other pages' accesses
            # aged the counter) is clamped into the largest hit bin.
            # Without this, pages with genuine reuse can be measured as
            # all-miss and wrongly bypassed.
            distance = min(distance, level.cfg.lines - 1)
            self.runtime.record_reuse(level.cfg.name, line.page, distance)
        line.ts = level.timestamp_now()
