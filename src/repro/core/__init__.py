"""SLIP core: policies, distributions, energy model, EOU, controller."""

from .controller import SlipPlacement
from .distribution import ReuseDistanceDistribution
from .energy_model import LevelEnergyParams, SlipEnergyModel, slip_coefficients
from .eou import EnergyEvaluationUnit, EnergyOptimizerUnit
from .policy import Slip, SlipSpace, abp_slip, default_slip, enumerate_slips
from .runtime import BaselineRuntime, SlipPageEntry, SlipRuntime
from .sampling import PageState, TimeBasedSampler

__all__ = [
    "BaselineRuntime",
    "EnergyEvaluationUnit",
    "EnergyOptimizerUnit",
    "LevelEnergyParams",
    "PageState",
    "ReuseDistanceDistribution",
    "Slip",
    "SlipEnergyModel",
    "SlipPageEntry",
    "SlipPlacement",
    "SlipRuntime",
    "SlipSpace",
    "TimeBasedSampler",
    "abp_slip",
    "default_slip",
    "enumerate_slips",
    "slip_coefficients",
]
