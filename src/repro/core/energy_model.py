"""The SLIP analytical energy model (Section 3.2, Equations 1-5).

For a line with reuse-distance distribution P and a SLIP with chunks
G0..G(M-1), the expected energy per access is::

    E = sum_m  E_m * P(CC_{m-1} <= d < CC_m)          (access,   Eq. 3)
      + sum_m (E_m + E_{m+1}) * P(d > CC_m)           (movement, Eq. 2)
      + E_NL * P(d > CC_{M-1})                        (miss,     Eq. 4)
      [ + E_0 * P(d > CC_{M-1}) ]                     (insertion, optional)

where E_m is the capacity-weighted mean access energy of chunk m, CC_m
the cumulative capacity through chunk m, and E_NL the mean access energy
of the next level. Because the distribution is binned at cumulative
*sublevel* capacities and chunks are consecutive sublevel groups, every
term is a linear combination of bin probabilities (Eq. 5): this module
produces the coefficient vector alpha[j] for every SLIP j, in both float
and the fixed-point form burned into the hardware EEUs.

The optional insertion term (write into chunk 0 on each miss) is not in
the paper's Equation 1 but is required for the optimizer to see the
insertion energy that the All-Bypass Policy saves; it is on by default
and controlled by ``include_insertion_energy``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .policy import Slip, SlipSpace


def exact_dot(counts: Sequence[float], values: Sequence[float]) -> float:
    """Order-independent dot product via ``math.fsum``.

    The one blessed way to turn (event count, energy table) pairs into
    picojoules: exactly rounded, so materialized energies cannot drift
    with accumulation order. Shared by the EEU coefficient evaluation
    and the deferred LevelStats materialization.
    """
    return math.fsum(c * v for c, v in zip(counts, values))


@dataclass(frozen=True)
class LevelEnergyParams:
    """Hardware constants feeding the analytical model for one level."""

    sublevel_capacity_lines: Tuple[int, ...]
    sublevel_energy_pj: Tuple[float, ...]
    next_level_energy_pj: float
    include_insertion_energy: bool = True

    def __post_init__(self) -> None:
        if len(self.sublevel_capacity_lines) != len(self.sublevel_energy_pj):
            raise ValueError("sublevel spec lengths differ")

    @property
    def num_sublevels(self) -> int:
        return len(self.sublevel_energy_pj)

    @property
    def num_bins(self) -> int:
        return self.num_sublevels + 1

    def chunk_energy_pj(self, chunk: Sequence[int]) -> float:
        """Capacity-weighted mean access energy of a chunk's sublevels."""
        # Integral line counts; exact in any order.
        capacity = sum(  # slip-lint: disable=SLIP005
            self.sublevel_capacity_lines[s] for s in chunk
        )
        weighted = math.fsum(
            self.sublevel_capacity_lines[s] * self.sublevel_energy_pj[s]
            for s in chunk
        )
        return weighted / capacity


def slip_coefficients(slip: Slip, params: LevelEnergyParams) -> Tuple[float, ...]:
    """The alpha vector for one SLIP: energy per access = alpha . p.

    ``p`` is the binned reuse-distance distribution; bin i < K covers
    distances within cumulative sublevel capacity i, bin K covers
    distances at or beyond full capacity (misses are counted there).
    """
    num_bins = params.num_bins
    alpha = [0.0] * num_bins

    if slip.is_abp:
        for i in range(num_bins):
            alpha[i] += params.next_level_energy_pj
        return tuple(alpha)

    chunk_energies = [params.chunk_energy_pj(c) for c in slip.chunks]

    # Access energy (Eq. 3): chunk m serves the bins of its sublevels.
    for m, chunk in enumerate(slip.chunks):
        for sublevel in chunk:
            alpha[sublevel] += chunk_energies[m]

    # Movement energy (Eq. 2): a move m -> m+1 happens whenever the reuse
    # distance exceeds the cumulative capacity through chunk m, i.e. for
    # every bin past the last sublevel of chunk m.
    for m in range(slip.num_chunks - 1):
        last_sublevel = slip.chunks[m][-1]
        cost = chunk_energies[m] + chunk_energies[m + 1]
        for i in range(last_sublevel + 1, num_bins):
            alpha[i] += cost

    # Miss energy (Eq. 4): distances beyond the SLIP's total capacity.
    last_sublevel = slip.chunks[-1][-1]
    for i in range(last_sublevel + 1, num_bins):
        alpha[i] += params.next_level_energy_pj
        if params.include_insertion_energy:
            alpha[i] += chunk_energies[0]

    return tuple(alpha)


class SlipEnergyModel:
    """Coefficient tables for every SLIP of a level (Eq. 5)."""

    def __init__(self, space: SlipSpace, params: LevelEnergyParams) -> None:
        if space.num_sublevels != params.num_sublevels:
            raise ValueError("SlipSpace and params disagree on sublevels")
        self.space = space
        self.params = params
        self.alphas: Tuple[Tuple[float, ...], ...] = tuple(
            slip_coefficients(slip, params) for slip in space.slips
        )

    @property
    def num_bins(self) -> int:
        return self.params.num_bins

    def energy_of(self, slip_id: int,
                  probabilities: Sequence[float]) -> float:
        """Expected energy per access of one SLIP for a distribution."""
        return exact_dot(self.alphas[slip_id], probabilities)

    def best_slip(self, probabilities: Sequence[float],
                  allow_abp: bool = True) -> int:
        """Argmin-energy SLIP id (float reference implementation)."""
        best_id, best_energy = None, float("inf")
        for slip_id in range(len(self.space)):
            if not allow_abp and slip_id == self.space.abp_id:
                continue
            energy = self.energy_of(slip_id, probabilities)
            if energy < best_energy:
                best_id, best_energy = slip_id, energy
        assert best_id is not None
        return best_id

    def quantized_alphas(self, coefficient_bits: int = 16) -> List[List[int]]:
        """Fixed-point coefficient tables as burned into the EEUs.

        Coefficients share one power-of-two scale chosen so the largest
        fits an unsigned ``coefficient_bits``-wide value; the relative
        ordering of the dot products — all the optimizer needs — is
        preserved to within quantization error.
        """
        flat_max = max(max(alpha) for alpha in self.alphas)
        if flat_max <= 0:
            raise ValueError("degenerate coefficient table")
        scale = ((1 << coefficient_bits) - 1) / flat_max
        # Snap to a power of two so hardware scaling is a shift.
        power = 1
        while power * 2 <= scale:
            power *= 2
        return [
            [int(round(a * power)) for a in alpha] for alpha in self.alphas
        ]
