#!/usr/bin/env bash
# One-shot pre-merge gate for this repo. Runs the tier-1 test suite,
# the slip-lint static checks, and a determinism smoke (fixed-seed
# byte-identity of the CLI across serial and parallel runs).
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the full pytest run; lint + determinism smoke only.
#
# Exit code: 0 only if every stage passes. Run from anywhere; the
# script cd's to the repo root.

set -u
cd "$(dirname "$0")/.."
export PYTHONPATH=src

fast=0
if [ "${1:-}" = "--fast" ]; then
    fast=1
elif [ -n "${1:-}" ]; then
    echo "usage: scripts/check.sh [--fast]" >&2
    exit 2
fi

fail=0
stage() {
    echo "==> $1"
    shift
    if "$@"; then
        echo "    OK"
    else
        echo "    FAIL: $*" >&2
        fail=1
    fi
}

if [ "$fast" -eq 0 ]; then
    stage "tier-1 tests (pytest)" python -m pytest -q tests/
fi

stage "slip-lint (static checks)" python -m repro.analysis.lint src/

# SLIP fast-path regression gate: re-time the slip_abp drive and fail
# if it lands >20% above the mean recorded in BENCH_throughput.json.
stage "throughput gate (slip_abp)" python scripts/throughput_gate.py

# Determinism smoke: same figure, same seed, serial vs parallel must
# emit byte-identical results once timing lines ([...]) are stripped.
det_smoke() {
    local out1 out4
    out1="$(python -m repro.experiments.runner fig01 --length 2000 --jobs 1 \
        | grep -v '^\[')" || return 1
    out4="$(python -m repro.experiments.runner fig01 --length 2000 --jobs 4 \
        | grep -v '^\[')" || return 1
    [ "$out1" = "$out4" ]
}
stage "determinism smoke (serial == parallel)" det_smoke

if [ "$fail" -ne 0 ]; then
    echo "check.sh: FAILED" >&2
    exit 1
fi
echo "check.sh: all stages passed"
