#!/usr/bin/env bash
# One-shot pre-merge gate for this repo. Runs the tier-1 test suite,
# the slip-lint and slip-audit static checks (plus ruff when it is
# installed), and a determinism smoke (fixed-seed byte-identity of the
# CLI across serial and parallel runs).
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the full pytest run; lint + determinism smoke only.
#
# Exit code: 0 only if every stage passes. Run from anywhere; the
# script cd's to the repo root.

set -u
cd "$(dirname "$0")/.."
export PYTHONPATH=src

fast=0
if [ "${1:-}" = "--fast" ]; then
    fast=1
elif [ -n "${1:-}" ]; then
    echo "usage: scripts/check.sh [--fast]" >&2
    exit 2
fi

fail=0
stage() {
    echo "==> $1"
    shift
    if "$@"; then
        echo "    OK"
    else
        echo "    FAIL: $*" >&2
        fail=1
    fi
}

if [ "$fast" -eq 0 ]; then
    stage "tier-1 tests (pytest)" python -m pytest -q tests/
fi

stage "slip-lint (static checks)" python -m repro.analysis.lint src/

stage "slip-audit (twin-path + taint)" python -m repro.analysis.audit src/

# Generic python lint, only when the tool exists in the environment
# (the CI image does not ship ruff; a missing linter is a skip, not a
# failure).
if command -v ruff >/dev/null 2>&1; then
    stage "ruff (generic python lint)" ruff check src/ tests/ scripts/
else
    echo "==> ruff (generic python lint)"
    echo "    SKIP: ruff not installed"
fi

# Throughput regression gates: re-time the slip_abp drive, the serial
# (filtered-replay) sweep, the warm slip/slip_abp replay cells, the
# cold front-end captures and the composed direct runs; fail if any
# lands >20% above the mean recorded in BENCH_throughput.json.
stage "throughput gate (slip_abp + sweep + replay + capture + direct)" \
    python scripts/throughput_gate.py

# Filtered-replay smoke: one capture-through cell plus one replayed
# SLIP cell must be byte-identical to their scalar runs. The reference
# side pins REPRO_DIRECT_PIPELINE=0 so run_trace really is the scalar
# golden walk, not the composed kernel pipeline it now defaults to.
filtered_smoke() {
    python - <<'EOF'
import json
import os
from repro.sim.filtered import run_trace_filtered
from repro.sim.single_core import run_trace
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import MemoryCaptureStore

trace = make_trace("soplex", 4000)
store = MemoryCaptureStore()
for policy in ("baseline", "slip_abp"):
    os.environ["REPRO_DIRECT_PIPELINE"] = "0"
    scalar = json.dumps(run_trace(trace, policy).to_json(),
                        sort_keys=True)
    del os.environ["REPRO_DIRECT_PIPELINE"]
    filtered = json.dumps(
        run_trace_filtered(trace, policy, store=store).to_json(),
        sort_keys=True)
    assert scalar == filtered, f"{policy}: filtered != scalar"
    composed = json.dumps(run_trace(trace, policy).to_json(),
                          sort_keys=True)
    assert composed == scalar, f"{policy}: direct pipeline != scalar"
assert len(store._entries) == 1, "capture was not shared"
EOF
}
stage "filtered-replay smoke (filtered == direct == scalar)" filtered_smoke

# Replay-plan smoke: plans on (the default) and plans off must replay
# byte-identically for a baseline-kind and a slip-kind cell, through
# both kernels, from one shared capture.
plan_smoke() {
    python - <<'EOF'
import json
import os
from repro.sim.filtered import run_trace_filtered
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import MemoryCaptureStore

def canon(result):
    return json.dumps(result.to_json(), sort_keys=True)

trace = make_trace("soplex", 4000)
store = MemoryCaptureStore()
for policy in ("baseline", "slip_abp"):
    run_trace_filtered(trace, policy, store=store)  # capture-through
    os.environ["REPRO_REPLAY_PLAN"] = "0"
    unplanned = canon(run_trace_filtered(trace, policy, store=store))
    os.environ["REPRO_REPLAY_PLAN"] = "1"
    planned = canon(run_trace_filtered(trace, policy, store=store))
    assert planned == unplanned, f"{policy}: planned != unplanned"
del os.environ["REPRO_REPLAY_PLAN"]
EOF
}
stage "replay-plan smoke (planned == unplanned)" plan_smoke

# Vector-replay smoke: every eligible policy kind replayed through the
# batched numpy kernel must serialize byte-identically to the scalar
# replay of the same capture.
vector_smoke() {
    python - <<'EOF'
import json
import os
from repro.sim.filtered import run_trace_filtered
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import MemoryCaptureStore

def canon(result):
    return json.dumps(result.to_json(), sort_keys=True)

trace = make_trace("soplex", 4000)
store = MemoryCaptureStore()
for policy in ("baseline", "nurapid", "lru_pea"):
    os.environ["REPRO_VECTOR_REPLAY"] = "0"
    run_trace_filtered(trace, policy, store=store)  # capture-through
    scalar = canon(run_trace_filtered(trace, policy, store=store))
    os.environ["REPRO_VECTOR_REPLAY"] = "1"
    vector = canon(run_trace_filtered(trace, policy, store=store))
    assert vector == scalar, f"{policy}: vector != scalar"
del os.environ["REPRO_VECTOR_REPLAY"]
EOF
}
stage "vector-replay smoke (vector == scalar)" vector_smoke

# SLIP vector-replay smoke: both slip-runtime kinds replayed through
# the phase-split kernel must serialize byte-identically to the scalar
# replay of the same capture, and the kernel must actually run (no
# silent decline to the scalar walk).
slip_vector_smoke() {
    python - <<'EOF'
import json
import os
from repro.sim.build import build_hierarchy
from repro.sim.config import default_system
from repro.sim.filtered import run_trace_filtered
from repro.sim.vector_replay_slip import slip_eligible
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import MemoryCaptureStore

def canon(result):
    return json.dumps(result.to_json(), sort_keys=True)

trace = make_trace("soplex", 4000)
store = MemoryCaptureStore()
for policy in ("slip", "slip_abp"):
    assert slip_eligible(build_hierarchy(default_system(), policy)), \
        f"{policy}: kernel declines the default hierarchy"
    os.environ["REPRO_VECTOR_REPLAY"] = "0"
    run_trace_filtered(trace, policy, store=store)  # capture-through
    scalar = canon(run_trace_filtered(trace, policy, store=store))
    os.environ["REPRO_VECTOR_REPLAY"] = "1"
    vector = canon(run_trace_filtered(trace, policy, store=store))
    assert vector == scalar, f"{policy}: slip vector != scalar"
del os.environ["REPRO_VECTOR_REPLAY"]
EOF
}
stage "slip vector-replay smoke (vector == scalar)" slip_vector_smoke

# Front-end capture smoke: the batched TLB+L1 kernel must produce a
# byte-identical capture to the scalar walk (arrays, frozen stats and
# boundaries), must not decline the default hierarchy, and a cold cell
# fed by the kernel must serialize identically to the scalar cold path.
frontend_smoke() {
    python - <<'EOF'
import json
import os
import numpy as np
from repro.sim.build import build_hierarchy
from repro.sim.config import default_system
from repro.sim.filtered import capture_front_end, run_trace_filtered
from repro.sim.vector_frontend import frontend_eligible
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import _ARRAY_NAMES, MemoryCaptureStore

config = default_system()
trace = make_trace("soplex", 4000)
assert frontend_eligible(build_hierarchy(config, "baseline")), \
    "kernel declines the default hierarchy"
os.environ["REPRO_VECTOR_FRONTEND"] = "0"
scalar = capture_front_end(trace, config)
os.environ["REPRO_VECTOR_FRONTEND"] = "1"
vector = capture_front_end(trace, config)
assert (vector.n, vector.warmup, vector.event_boundary) == \
    (scalar.n, scalar.warmup, scalar.event_boundary), "boundaries"
for name in _ARRAY_NAMES:
    assert np.array_equal(getattr(vector, name), getattr(scalar, name)), name
assert json.dumps(vector.frozen, sort_keys=True) == \
    json.dumps(scalar.frozen, sort_keys=True), "frozen stats"

def cold_cell():
    result = run_trace_filtered(trace, "baseline",
                                store=MemoryCaptureStore())
    return json.dumps(result.to_json(), sort_keys=True)

os.environ["REPRO_VECTOR_FRONTEND"] = "0"
want = cold_cell()
os.environ["REPRO_VECTOR_FRONTEND"] = "1"
assert cold_cell() == want, "cold kernel cell != scalar cold cell"
del os.environ["REPRO_VECTOR_FRONTEND"]
EOF
}
stage "vector-frontend smoke (kernel == scalar capture)" frontend_smoke

# Determinism smoke: same figure, same seed, serial vs parallel must
# emit byte-identical results once timing lines ([...]) are stripped.
det_smoke() {
    local out1 out4
    out1="$(python -m repro.experiments.runner fig01 --length 2000 --jobs 1 \
        | grep -v '^\[')" || return 1
    out4="$(python -m repro.experiments.runner fig01 --length 2000 --jobs 4 \
        | grep -v '^\[')" || return 1
    [ "$out1" = "$out4" ]
}
stage "determinism smoke (serial == parallel)" det_smoke

if [ "$fail" -ne 0 ]; then
    echo "check.sh: FAILED" >&2
    exit 1
fi
echo "check.sh: all stages passed"
