#!/usr/bin/env python
"""Throughput regression gate for the SLIP fast path.

Re-times two benchmarks from the throughput microbenchmark module and
compares each against the mean recorded in ``BENCH_throughput.json``
at the repo root:

* the ``slip_abp`` drive — the per-access fast path; a reintroduced
  per-access allocation or a de-fused placement kernel shows up here
  long before any paper figure moves;
* the serial sweep (``sweep(jobs=1)`` over the 2x3 benchmark/policy
  grid) — the filtered-replay path; a broken capture store or a replay
  falling back to direct simulation shows up here;
* warm slip and slip_abp replay cells — the phase-split SLIP kernel
  specifically; a decline regression (kernel silently falling back to
  the scalar replay) roughly doubles these without moving the
  baseline cells;
* cold front-end captures of both bench traces — the batched
  vector_frontend kernel; a decline regression here multiplies the
  cost every cold sweep cell pays before its first replay;
* composed direct runs (``run_trace`` -> ``try_run_direct``) of the
  soplex baseline and slip_abp cells — the end-to-end kernel pipeline
  behind every store-less run; a decline regression here converges on
  the scalar drive's cost (several times slower).

Fails (exit 1) when either measurement exceeds its recorded mean by
more than the tolerance (default 20%).

The measurement is best-of-N (default 3): on a shared machine the
*minimum* is the statistic least polluted by co-tenant noise, and a
genuine slowdown raises the minimum just the same.

Usage::

    python scripts/throughput_gate.py
    python scripts/throughput_gate.py --tolerance 0.2 --repeats 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_throughput.json")
BENCH_NAME = "test_throughput_slip_abp"
SWEEP_BENCH_NAME = "test_sweep_throughput_serial"
REPLAY_CELLS = (("soplex", "slip"), ("soplex", "slip_abp"))
CAPTURE_CELLS = ("soplex", "lbm")
DIRECT_CELLS = (("soplex", "baseline"), ("soplex", "slip_abp"))


def replay_bench_name(bench: str, policy: str) -> str:
    return f"test_replay_cell[{bench}-{policy}]"


def capture_bench_name(bench: str) -> str:
    return f"test_capture_cell[{bench}]"


def direct_bench_name(bench: str, policy: str) -> str:
    return f"test_direct_cell[{bench}-{policy}]"


def recorded_mean_s(path: str, name: str) -> float:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for bench in payload["benchmarks"]:
        if bench["name"] == name:
            return float(bench["stats"]["mean"])
    raise KeyError(f"{name} not found in {path}")


def _import_bench():
    # Called once per gate; make the path setup idempotent so repeated
    # calls don't keep prepending duplicate entries to sys.path.
    for entry in (os.path.join(REPO_ROOT, "src"),
                  os.path.join(REPO_ROOT, "benchmarks")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    import bench_simulator_throughput

    return bench_simulator_throughput


def measure_best_s(repeats: int) -> float:
    bench = _import_bench()
    best = float("inf")
    bench.drive("slip_abp")  # warmup: one-time import/allocator costs
    for _ in range(repeats):
        started = time.perf_counter()
        accesses = bench.drive("slip_abp")
        elapsed = time.perf_counter() - started
        if accesses != bench.N:
            raise AssertionError(
                f"drive returned {accesses}, want {bench.N}")
        best = min(best, elapsed)
    return best


def measure_best_sweep_s(repeats: int) -> float:
    bench = _import_bench()
    expected = bench.N * len(bench.SWEEP_GRID)
    best = float("inf")
    bench.sweep(1)  # warmup round also fills the capture store
    for _ in range(repeats):
        started = time.perf_counter()
        accesses = bench.sweep(1)
        elapsed = time.perf_counter() - started
        if accesses != expected:
            raise AssertionError(
                f"sweep returned {accesses}, want {expected}")
        best = min(best, elapsed)
    return best


def make_measure_replay_s(cell_bench: str, policy: str):
    def measure(repeats: int) -> float:
        bench = _import_bench()
        replay = bench.make_replay_cell(cell_bench, policy)
        best = float("inf")
        replay()  # warmup: first kernel call pays code-table builds
        for _ in range(repeats):
            started = time.perf_counter()
            accesses = replay()
            elapsed = time.perf_counter() - started
            if accesses != bench.MEASURED:
                raise AssertionError(
                    f"replay returned {accesses}, want {bench.MEASURED}")
            best = min(best, elapsed)
        return best

    return measure


def make_measure_direct_s(cell_bench: str, policy: str):
    def measure(repeats: int) -> float:
        bench = _import_bench()
        direct = bench.make_direct_cell(cell_bench, policy)
        best = float("inf")
        direct()  # warmup: first call builds the cell's ReplayPlan
        for _ in range(repeats):
            started = time.perf_counter()
            accesses = direct()
            elapsed = time.perf_counter() - started
            if accesses != bench.MEASURED:
                raise AssertionError(
                    f"direct run returned {accesses}, "
                    f"want {bench.MEASURED}")
            best = min(best, elapsed)
        return best

    return measure


def make_measure_capture_s(cell_bench: str):
    def measure(repeats: int) -> float:
        bench = _import_bench()
        capture = bench.make_capture_cell(cell_bench)
        best = float("inf")
        capture()  # warmup: first call pays trace synthesis costs
        for _ in range(repeats):
            started = time.perf_counter()
            n = capture()
            elapsed = time.perf_counter() - started
            if n != bench.N:
                raise AssertionError(
                    f"capture covered {n} accesses, want {bench.N}")
            best = min(best, elapsed)
        return best

    return measure


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fraction above the recorded mean "
                             "(default 0.20)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs; the best is compared "
                             "(default 3)")
    parser.add_argument("--bench-json", default=BENCH_JSON,
                        help="recorded benchmark file "
                             "(default: repo-root BENCH_throughput.json)")
    args = parser.parse_args(argv)

    gates = (
        ("slip_abp", BENCH_NAME, measure_best_s),
        ("sweep-serial", SWEEP_BENCH_NAME, measure_best_sweep_s),
    ) + tuple(
        (f"replay-{b}-{p}", replay_bench_name(b, p),
         make_measure_replay_s(b, p))
        for b, p in REPLAY_CELLS
    ) + tuple(
        (f"capture-{b}", capture_bench_name(b),
         make_measure_capture_s(b))
        for b in CAPTURE_CELLS
    ) + tuple(
        (f"direct-{b}-{p}", direct_bench_name(b, p),
         make_measure_direct_s(b, p))
        for b, p in DIRECT_CELLS
    )
    failed = False
    for label, name, measure in gates:
        try:
            recorded = recorded_mean_s(args.bench_json, name)
        except (OSError, KeyError, ValueError) as exc:
            print(f"throughput-gate: cannot read recorded mean: {exc}",
                  file=sys.stderr)
            return 2
        measured = measure(args.repeats)
        limit = recorded * (1.0 + args.tolerance)
        verdict = "OK" if measured <= limit else "FAIL"
        failed = failed or measured > limit
        print(f"throughput-gate: {label} best-of-{args.repeats} "
              f"{measured * 1000:.1f} ms vs recorded mean "
              f"{recorded * 1000:.1f} ms "
              f"(limit {limit * 1000:.1f} ms): {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
