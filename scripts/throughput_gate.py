#!/usr/bin/env python
"""Throughput regression gate for the SLIP fast path.

Re-times the ``slip_abp`` drive from the throughput microbenchmark and
compares it against the mean recorded in ``BENCH_throughput.json`` at
the repo root. Fails (exit 1) when the measured time exceeds the
recorded mean by more than the tolerance (default 20%), which is how a
reintroduced per-access allocation or a de-fused placement kernel shows
up long before any paper figure moves.

The measurement is best-of-N (default 3): on a shared machine the
*minimum* is the statistic least polluted by co-tenant noise, and a
genuine slowdown raises the minimum just the same.

Usage::

    python scripts/throughput_gate.py
    python scripts/throughput_gate.py --tolerance 0.2 --repeats 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_throughput.json")
BENCH_NAME = "test_throughput_slip_abp"


def recorded_mean_s(path: str) -> float:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for bench in payload["benchmarks"]:
        if bench["name"] == BENCH_NAME:
            return float(bench["stats"]["mean"])
    raise KeyError(f"{BENCH_NAME} not found in {path}")


def measure_best_s(repeats: int) -> float:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    from bench_simulator_throughput import N, drive

    best = float("inf")
    drive("slip_abp")  # warmup: one-time import and allocator costs
    for _ in range(repeats):
        started = time.perf_counter()
        accesses = drive("slip_abp")
        elapsed = time.perf_counter() - started
        if accesses != N:
            raise AssertionError(f"drive returned {accesses}, want {N}")
        best = min(best, elapsed)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fraction above the recorded mean "
                             "(default 0.20)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs; the best is compared "
                             "(default 3)")
    parser.add_argument("--bench-json", default=BENCH_JSON,
                        help="recorded benchmark file "
                             "(default: repo-root BENCH_throughput.json)")
    args = parser.parse_args(argv)

    try:
        recorded = recorded_mean_s(args.bench_json)
    except (OSError, KeyError, ValueError) as exc:
        print(f"throughput-gate: cannot read recorded mean: {exc}",
              file=sys.stderr)
        return 2

    measured = measure_best_s(args.repeats)
    limit = recorded * (1.0 + args.tolerance)
    verdict = "OK" if measured <= limit else "FAIL"
    print(f"throughput-gate: slip_abp best-of-{args.repeats} "
          f"{measured * 1000:.1f} ms vs recorded mean "
          f"{recorded * 1000:.1f} ms "
          f"(limit {limit * 1000:.1f} ms): {verdict}")
    return 0 if measured <= limit else 1


if __name__ == "__main__":
    raise SystemExit(main())
