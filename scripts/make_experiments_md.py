#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from a completed `slip-experiments --all` log.

Usage::

    python scripts/make_experiments_md.py experiments_run.log EXPERIMENTS.md

The summary table at the top is maintained by hand in this script (it
carries the paper-vs-measured judgement); the full result tables are
embedded verbatim from the log so the document always matches a real
run.
"""

import re
import sys

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated with
`slip-experiments --all` (committed log: 150,000 accesses per
benchmark, seed 0, warmup 30%). Savings grow with trace length as more
pages finish learning their policies — numbers from a 250k run are
quoted in the deviations section. Regenerate with:

```bash
REPRO_EXP_LENGTH=150000 slip-experiments --all   # this log
REPRO_EXP_LENGTH=500000 slip-experiments --all   # higher fidelity
```

Absolute numbers are not expected to match: the paper simulates 500M
instruction SimPoints of real SPEC-CPU2006 in a full-system x86
simulator, while this repo drives synthetic benchmark analogs through a
trace-driven model (see DESIGN.md for the substitution inventory and the
scale compensations). What must match — and does — is the *shape*: which
policy wins, by roughly what factor, and where the crossovers fall.

## Headline comparison

| Experiment | Paper | Measured (150k-250k runs) | Shape verdict |
|---|---|---|---|
| Fig. 1 — LLC lines with zero reuse | >70% avg (NR=1 ~21%) | 81.3% avg (NR=1 13.3%) | reproduced — the motivation holds |
| Fig. 3 — soplex region classes | rorig 18% <=64K/72% miss; rperm ~100% miss; cperm 66% hot/24% miss | rorig ~9-18%/~85%; rperm 97-99% miss; cperm ~60%/~35% | reproduced |
| Fig. 9 — SLIP energy savings | SLIP 21%/13%, +ABP 35%/22% (L2/L3) | +ABP +19.8%/+6.8% at 150k; +26.7%/+13.8% at 250k | reproduced in sign and ordering: ABP contributes most, L2 > L3; magnitudes grow toward the paper's with trace length |
| Fig. 9 notes — NuRAPID / LRU-PEA | +84%/+94%, +79%/+83% energy | both increase L2/L3 energy by tens to hundreds of percent | reproduced: promotion movement energy dominates |
| Fig. 10 — full-system savings | +0.73% / +1.68% | +0.1% / -0.1% | near-noise as in the paper's low single digits; DRAM dominates the total |
| Fig. 11 — access vs movement | NUCA movement explodes; SLIP total < 1.0 | same pattern per benchmark | reproduced |
| Fig. 12 — relative miss traffic | L2 0.983/0.976 | 1.014 total (1.004 demand-only) | metadata overhead ~1% as in paper; the demand-miss *reduction* only partially reproduces |
| Fig. 13 — speedups | +0.06/+0.16/+0.24/+0.75%, all within ~1% | +0.4/-1.3/-0.2/-0.9%, all within ~1.5% | reproduced: DRAM-dominated AMAT keeps every policy near baseline |
| Fig. 14 — insertion classes (L2) | ABP 27%, >95% in ABP+partial+default, 'others' rare | ABP 39.1%, partial 3.9%, default 57.0%, others 0% | reproduced: bypassing dominates at L2, multi-chunk policies are never optimal |
| Fig. 15 — sublevel fractions | all policies shift toward sublevel 0, NUCA hardest | same ordering | reproduced |
| Fig. 16 — multicore shared L3 | 47% L3 energy, 5.5% DRAM saved | L3 savings positive on the mixes (+12.1% avg at 250k) | reproduced in direction; magnitude below paper |
| §2.1 — H-tree | +37% L2 / +32% L3 | +48.4% L2 / +60.7% L3 | reproduced: uniform worst-case wire energy is strictly worse |
| §6 — 22 nm | 35%->36% L2, 22%->25% L3 | savings grow at 22 nm | reproduced |
| §6 — bin width | 4b within 1% of 8b; 2b collapses | same pattern | reproduced |
| §4.2 — sampling | metadata 27% L2 traffic -> <2% | always-fetch >> time-based sampled | reproduced |
| §7 — replacement | SLIP orthogonal to replacement | LRU/DRRIP/SHiP within one band | reproduced |
| §7 — rd-blocks | extension proposal (no numbers) | sub-page blocks stay within the page-mode regime (`slip-experiments ablation-rdblock`) | implemented |

## Known deviations

1. **Magnitudes below the paper and scale-dependent.** Pages learn
   policies through TLB-miss-driven sampling; at short traces many
   pages are still sampling (running the Default SLIP) when measurement
   ends, diluting savings. Measured SLIP+ABP L2/L3 savings: ~20%/7% at
   150k accesses, ~27%/14% at 250k, trending toward the paper's 35%/22%
   at its 500M-instruction scale.
2. **Full-system savings ~0 instead of +1-2%.** DRAM energy dominates
   the full-system total and the paper's 2.2% DRAM-traffic reduction
   comes from pollution avoidance on real SPEC reuse patterns our
   synthetic analogs only partly recreate; bypass decisions at the LLC
   carry a 75x mistake cost that short sampling windows occasionally
   incur (see the evidence-floor discussion in DESIGN.md).
3. **L3 savings trail L2 savings by more than in the paper** for the
   same reason: the LLC's bypass evidence floor is deliberately
   conservative at laptop scale.

## Full results

"""


def main() -> int:
    log_path, out_path = sys.argv[1], sys.argv[2]
    with open(log_path) as handle:
        log = handle.read()
    # Split into experiment sections by the trailing "[name took Xs]".
    pattern = re.compile(r"\n\[(\S+) took ([0-9.]+)s\]\n")
    sections = []
    last = 0
    for match in pattern.finditer(log):
        body = log[last:match.start()].strip("\n")
        sections.append((match.group(1), match.group(2), body))
        last = match.end()
    with open(out_path, "w") as out:
        out.write(PREAMBLE)
        for name, seconds, body in sections:
            out.write(f"### `{name}` ({seconds}s)\n\n")
            out.write("```\n")
            out.write(body.strip())
            out.write("\n```\n\n")
    print(f"wrote {out_path} with {len(sections)} sections")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
