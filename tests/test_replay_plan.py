"""ReplayPlan precompute and the composed direct pipeline.

Three contracts:

* plans are invisible in results — ``REPRO_REPLAY_PLAN`` on/off (and
  memory vs. disk store, and jobs=1 vs. jobs=2) must all produce
  byte-identical ``RunResult.to_json()`` for every policy;
* plan sidecars recover — a corrupt/truncated array quarantines only
  the plan directory, and the rebuilt plan replays byte-identically;
* the composed direct pipeline (``run_trace`` -> ``try_run_direct``)
  equals the scalar walk, and every documented decline falls back.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.core.energy_model import LevelEnergyParams
from repro.experiments.parallel import RunRequest, run_jobs
from repro.sim.build import build_hierarchy
from repro.sim.filtered import (
    capture_front_end,
    front_end_fingerprint,
    run_trace_filtered,
    try_run_direct,
)
from repro.sim.replay_plan import (
    PLAN_ARRAY_NAMES,
    build_plan,
    derive_plan_arrays,
    ensure_plan_verified,
    plan_geometry,
    plan_geometry_key,
)
from repro.sim.single_core import run_trace
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import (
    DiskCaptureStore,
    MemoryCaptureStore,
    fingerprint_key,
)

ALL_POLICIES = ("baseline", "nurapid", "lru_pea", "slip", "slip_abp")
LENGTH = 2_500


def canonical(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def plan_dirs(root) -> list:
    found = []
    for dirpath, dirnames, _ in os.walk(root):
        found.extend(os.path.join(dirpath, d) for d in dirnames
                     if d.startswith("plan-") and ".tmp-" not in d)
    return found


# ----------------------------------------------------------------------
# Plan on/off byte-identity
# ----------------------------------------------------------------------
class TestPlanByteIdentity:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("store_kind", ("memory", "disk"))
    def test_plan_on_off_identical(self, policy, store_kind, tmp_path,
                                   monkeypatch, tiny_system):
        trace = make_trace("soplex", LENGTH)

        def run_pair(flag: str) -> str:
            monkeypatch.setenv("REPRO_REPLAY_PLAN", flag)
            store = (MemoryCaptureStore() if store_kind == "memory"
                     else DiskCaptureStore(str(tmp_path / f"s{flag}")))
            first = run_trace_filtered(trace, policy,
                                       config=tiny_system, store=store)
            # Second run replays the stored capture — the plan path.
            second = run_trace_filtered(trace, policy,
                                        config=tiny_system, store=store)
            assert canonical(first) == canonical(second)
            return canonical(second)

        assert run_pair("1") == run_pair("0")

    def test_plan_persisted_once_per_geometry(self, tmp_path,
                                              tiny_system):
        trace = make_trace("lbm", LENGTH)
        store = DiskCaptureStore(str(tmp_path))
        for policy in ALL_POLICIES:
            run_trace_filtered(trace, policy, config=tiny_system,
                               store=store)
        # One capture entry, one plan sidecar shared by all policies.
        assert len(plan_dirs(tmp_path)) == 1
        names = sorted(os.path.splitext(f)[0]
                       for f in os.listdir(plan_dirs(tmp_path)[0])
                       if f.endswith(".npy"))
        assert names == sorted(PLAN_ARRAY_NAMES)

    @pytest.mark.multiproc
    def test_plan_jobs_parity(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path))
        grid = [
            RunRequest("soplex", policy, length=2_000)
            for policy in ALL_POLICIES
        ]
        serial = run_jobs(grid, jobs=1)
        parallel = run_jobs(grid, jobs=2)
        for ours, theirs in zip(serial.results, parallel.results):
            assert ours.result == theirs.result, ours.request.label()
        monkeypatch.setenv("REPRO_REPLAY_PLAN", "0")
        unplanned = run_jobs(grid, jobs=1)
        for ours, theirs in zip(serial.results, unplanned.results):
            assert ours.result == theirs.result, ours.request.label()


# ----------------------------------------------------------------------
# Sidecar corruption recovery
# ----------------------------------------------------------------------
class TestSidecarRecovery:
    def _corrupt_and_rerun(self, tmp_path, tiny_system, mangle):
        trace = make_trace("lbm", LENGTH)
        store = DiskCaptureStore(str(tmp_path))
        run_trace_filtered(trace, "slip", config=tiny_system,
                           store=store)
        reference = canonical(run_trace_filtered(
            trace, "slip", config=tiny_system, store=store))
        (plan_dir,) = plan_dirs(tmp_path)
        mangle(plan_dir)
        # A fresh store handle drops the in-memory plan memo, so the
        # next replay must go through the damaged sidecar.
        fresh = DiskCaptureStore(str(tmp_path))
        rebuilt = canonical(run_trace_filtered(
            trace, "slip", config=tiny_system, store=fresh))
        assert rebuilt == reference
        # The quarantined sidecar was re-persisted, complete.
        (plan_dir,) = plan_dirs(tmp_path)
        names = sorted(os.path.splitext(f)[0]
                       for f in os.listdir(plan_dir)
                       if f.endswith(".npy"))
        assert names == sorted(PLAN_ARRAY_NAMES)

    def test_truncated_array_quarantined(self, tmp_path, tiny_system):
        def mangle(plan_dir):
            victim = os.path.join(plan_dir, "miss_addrs.npy")
            with open(victim, "r+b") as handle:
                handle.truncate(16)

        self._corrupt_and_rerun(tmp_path, tiny_system, mangle)

    def test_missing_array_quarantined(self, tmp_path, tiny_system):
        def mangle(plan_dir):
            os.unlink(os.path.join(plan_dir, "l3_addr2.npy"))

        self._corrupt_and_rerun(tmp_path, tiny_system, mangle)

    def test_corrupt_values_fail_conservation(self, tmp_path,
                                              tiny_system):
        # Structurally valid but wrong values: caught by the always-on
        # replay-plan-conservation re-derivation, then quarantined.
        def mangle(plan_dir):
            victim = os.path.join(plan_dir, "l1_order.npy")
            data = np.load(victim)
            data[: data.shape[0] // 2] = data[: data.shape[0] // 2][::-1]
            np.save(victim, data)

        self._corrupt_and_rerun(tmp_path, tiny_system, mangle)


# ----------------------------------------------------------------------
# Conservation invariant
# ----------------------------------------------------------------------
class TestPlanDerivation:
    def test_plan_arrays_rederive_exactly(self, tiny_system):
        trace = make_trace("soplex", LENGTH)
        capture = capture_front_end(trace, tiny_system)
        geometry = plan_geometry(tiny_system)
        plan = ensure_plan_verified(
            build_plan(capture, trace, geometry), capture, trace)
        assert plan.verified
        rederived = derive_plan_arrays(capture, trace, geometry)
        for name in PLAN_ARRAY_NAMES:
            np.testing.assert_array_equal(
                np.asarray(getattr(plan, name)), rederived[name])

    def test_geometry_key_tracks_back_end(self, tiny_system):
        base = plan_geometry_key(plan_geometry(tiny_system))
        grown = dataclasses.replace(
            tiny_system,
            l2=dataclasses.replace(
                tiny_system.l2,
                size_bytes=tiny_system.l2.size_bytes * 2,
            ),
        )
        assert plan_geometry_key(plan_geometry(grown)) != base


# ----------------------------------------------------------------------
# Composed direct pipeline
# ----------------------------------------------------------------------
class TestDirectPipeline:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_direct_matches_scalar(self, policy, monkeypatch,
                                   tiny_system):
        trace = make_trace("soplex", LENGTH)
        composed = run_trace(trace, policy, config=tiny_system, seed=3)
        monkeypatch.setenv("REPRO_DIRECT_PIPELINE", "0")
        scalar = run_trace(trace, policy, config=tiny_system, seed=3)
        assert canonical(composed) == canonical(scalar)

    def test_direct_runs_leave_the_store_alone(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path))
        trace = make_trace("soplex", LENGTH)
        run_trace(trace, "slip_abp")
        assert os.listdir(tmp_path) == []

    def test_direct_plan_cache_reuse_identical(self, tiny_system):
        trace = make_trace("lbm", LENGTH)
        first = run_trace(trace, "slip", config=tiny_system)
        # Second call hits the in-process direct-plan LRU.
        second = run_trace(trace, "slip", config=tiny_system)
        assert canonical(first) == canonical(second)

    def test_scalar_replacement_still_identical(self, monkeypatch,
                                                tiny_system):
        # Frontend-ineligible shape: the pipeline declines and the
        # scalar walk must serve it — identically to pipeline-off.
        trace = make_trace("soplex", LENGTH)
        composed = run_trace(trace, "baseline", config=tiny_system,
                             replacement="random")
        monkeypatch.setenv("REPRO_DIRECT_PIPELINE", "0")
        scalar = run_trace(trace, "baseline", config=tiny_system,
                           replacement="random")
        assert canonical(composed) == canonical(scalar)


class TestDirectDeclines:
    def _declines(self, tiny_system, policy="slip", config=None,
                  **kwargs):
        config = config or tiny_system
        trace = make_trace("soplex", 1_200)
        hierarchy = build_hierarchy(
            config, policy,
            replacement=kwargs.pop("replacement", "lru"),
        )
        result = try_run_direct(hierarchy, trace, policy, config,
                                **kwargs)
        return result, hierarchy

    def test_env_off_declines(self, monkeypatch, tiny_system):
        monkeypatch.setenv("REPRO_DIRECT_PIPELINE", "0")
        result, _ = self._declines(tiny_system)
        assert result is None

    def test_filtered_off_declines(self, monkeypatch, tiny_system):
        monkeypatch.setenv("REPRO_FILTERED", "0")
        result, _ = self._declines(tiny_system)
        assert result is None

    def test_simcheck_declines(self, monkeypatch, tiny_system):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        result, _ = self._declines(tiny_system)
        assert result is None

    def test_energy_overrides_decline(self, tiny_system):
        l3 = tiny_system.l3
        overrides = {
            "L3": LevelEnergyParams(
                sublevel_capacity_lines=tuple(
                    l3.sublevel_capacity_lines(i)
                    for i in range(l3.num_sublevels)
                ),
                sublevel_energy_pj=tuple(
                    e * 0.5 for e in l3.sublevel_energy_pj
                ),
                next_level_energy_pj=tiny_system.dram.energy_pj_per_line,
            )
        }
        result, _ = self._declines(tiny_system,
                                   level_energy_overrides=overrides)
        assert result is None

    def test_rd_block_slip_declines(self, tiny_system):
        config = tiny_system.with_slip(rd_block_lines=4)
        result, _ = self._declines(tiny_system, config=config)
        assert result is None

    def test_replay_ineligible_records_reason(self, tiny_system):
        # L1 is always stock LRU, so a replacement ablation passes the
        # front-end kernel; the *replay* kernel declines and the run is
        # served by the scalar replay walk — still a full result.
        result, hierarchy = self._declines(tiny_system,
                                           policy="baseline",
                                           replacement="random")
        assert result is not None
        assert hierarchy.kernel_declines.frontend is None
        assert hierarchy.kernel_declines.replay == \
            "replacement:RandomReplacement/RandomReplacement"

    def test_frontend_env_off_records_reason(self, monkeypatch,
                                             tiny_system):
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "0")
        result, hierarchy = self._declines(tiny_system)
        assert result is None
        assert hierarchy.kernel_declines.frontend == \
            "env:REPRO_VECTOR_FRONTEND"

    def test_accepted_run_clears_the_record(self, tiny_system):
        result, hierarchy = self._declines(tiny_system)
        assert result is not None
        assert hierarchy.kernel_declines.frontend is None
        assert hierarchy.kernel_declines.replay is None


# ----------------------------------------------------------------------
# Plan keying sanity against the front-end fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_and_geometry_compose(tiny_system):
    trace = make_trace("soplex", LENGTH)
    fp = front_end_fingerprint(trace, tiny_system, 0, 0.25)
    key = fingerprint_key(fp)
    geom = plan_geometry_key(plan_geometry(tiny_system))
    assert key and geom and key != geom
