"""Tests for baseline, NuRAPID and LRU-PEA placement policies."""

import pytest

from repro.mem.cache import CacheLevel
from repro.mem.replacement import LruReplacement
from repro.policies.baseline import BaselinePlacement
from repro.policies.lru_pea import LruPeaPlacement, PeaLruReplacement
from repro.policies.nurapid import NurapidPlacement


def make_level(cfg, replacement=None):
    return CacheLevel(cfg, replacement or LruReplacement())


def attach(policy, level):
    policy.attach(level)
    return policy


class TestBaselinePlacement:
    def test_inserts_somewhere(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(BaselinePlacement(), level)
        outcome = policy.fill(0)
        assert outcome.inserted
        _, way = level.probe(0)
        assert way is not None

    def test_no_movement_ever(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(BaselinePlacement(), level)
        for addr in range(3 * level.cfg.lines):
            policy.fill(addr)
        assert level.stats.movements == 0

    def test_dirty_victim_produces_writeback(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(BaselinePlacement(), level)
        sets = level.cfg.sets
        policy.fill(0, dirty=True)
        outcome = None
        for i in range(1, level.cfg.ways + 1):
            outcome = policy.fill(i * sets)
        assert 0 in outcome.writebacks

    def test_clean_victim_no_writeback(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(BaselinePlacement(), level)
        sets = level.cfg.sets
        policy.fill(0, dirty=False)
        for i in range(1, level.cfg.ways + 1):
            outcome = policy.fill(i * sets)
        assert not outcome.writebacks

    def test_counts_default_insertions(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(BaselinePlacement(), level)
        policy.fill(0)
        assert level.stats.insertions_by_class["default"] == 1


class TestNurapidPlacement:
    def test_inserts_into_nearest_dgroup(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(NurapidPlacement(), level)
        policy.fill(0)
        _, way = level.probe(0)
        assert level.cfg.sublevel_of_way(way) == 0

    def test_displaced_line_demoted_one_group(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(NurapidPlacement(), level)
        sets = level.cfg.sets
        policy.fill(0)
        # Fill sublevel 0 of set 0 (1 way in the tiny config).
        policy.fill(sets)
        _, way = level.probe(0)
        assert way is not None  # still resident, demoted
        assert level.cfg.sublevel_of_way(way) == 1
        assert level.stats.movements >= 1

    def test_cascade_falls_off_level(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(NurapidPlacement(), level)
        sets = level.cfg.sets
        # tiny L2 has sublevels (1,1,2): five same-set fills overflow.
        outcomes = [policy.fill(i * sets, dirty=True) for i in range(5)]
        assert any(o.writebacks for o in outcomes)

    def test_promotion_on_hit_swaps_to_sublevel0(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(NurapidPlacement(), level)
        sets = level.cfg.sets
        policy.fill(0)
        policy.fill(sets)  # demotes addr 0 to sublevel 1
        set_idx, way = level.probe(0)
        assert level.cfg.sublevel_of_way(way) == 1
        level.record_hit(set_idx, way, False)
        policy.on_hit(set_idx, way)
        _, new_way = level.probe(0)
        assert level.cfg.sublevel_of_way(new_way) == 0
        # The displaced line swapped into the old slot.
        _, other_way = level.probe(sets)
        assert other_way == way

    def test_hit_in_sublevel0_no_movement(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(NurapidPlacement(), level)
        policy.fill(0)
        set_idx, way = level.probe(0)
        moves_before = level.stats.movements
        policy.on_hit(set_idx, way)
        assert level.stats.movements == moves_before

    def test_promotion_charges_movement_energy(self, tiny_system):
        level = make_level(tiny_system.l2)
        policy = attach(NurapidPlacement(), level)
        sets = level.cfg.sets
        policy.fill(0)
        policy.fill(sets)
        set_idx, way = level.probe(0)
        energy_before = level.stats.materialize().energy.movement_pj
        policy.on_hit(set_idx, way)
        assert level.stats.materialize().energy.movement_pj > energy_before


class TestLruPeaPlacement:
    def make(self, tiny_system, seed=0):
        level = make_level(tiny_system.l2, PeaLruReplacement())
        return level, attach(LruPeaPlacement(seed=seed), level)

    def test_requires_pea_replacement(self, tiny_system):
        level = make_level(tiny_system.l2, LruReplacement())
        with pytest.raises(TypeError):
            LruPeaPlacement().attach(level)

    def test_random_sublevel_insertion_covers_all(self, tiny_system):
        level, policy = self.make(tiny_system)
        sublevels = set()
        for addr in range(0, 64 * level.cfg.sets, level.cfg.sets):
            policy.fill(addr)
            _, way = level.probe(addr)
            if way is not None:
                sublevels.add(level.cfg.sublevel_of_way(way))
        assert sublevels == {0, 1, 2}

    def test_promotion_moves_one_sublevel_nearer(self, tiny_system):
        level, policy = self.make(tiny_system)
        sets = level.cfg.sets
        # Place a set-0 line directly in sublevel 2 and hit it.
        level.place_fill(0, 3, 10 * sets)  # way 3 is sublevel 2
        level.record_hit(0, 3, False)
        policy.on_hit(0, 3)
        _, way = level.probe(10 * sets)
        assert level.cfg.sublevel_of_way(way) == 1

    def test_displaced_line_marked_demoted(self, tiny_system):
        level, policy = self.make(tiny_system)
        sets = level.cfg.sets
        level.place_fill(0, 1, 7 * sets)    # sublevel 1
        level.place_fill(0, 2, 14 * sets)   # sublevel 2
        policy.on_hit(0, 2)                 # promote into sublevel 1
        _, displaced_way = level.probe(7 * sets)
        assert level.sets[0][displaced_way].demoted

    def test_no_promotion_from_sublevel0(self, tiny_system):
        level, policy = self.make(tiny_system)
        level.place_fill(0, 0, 7)
        moves = level.stats.movements
        policy.on_hit(0, 0)
        assert level.stats.movements == moves
