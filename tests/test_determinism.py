"""Determinism smoke tests: identical runs must serialize identically.

These are the cheapest possible guards against the bug class PR 1 fixed
by hand (silent accounting drift): any nondeterminism — an unseeded
RNG, unordered iteration feeding a decision, cross-process divergence —
shows up as a byte diff in the canonical result serialization.
"""

import pytest

from repro.sim.single_core import run_benchmark, run_policy_sweep

LENGTH = 6000


@pytest.mark.parametrize("policy", ["baseline", "slip_abp"])
def test_same_run_twice_is_byte_identical(policy):
    first = run_benchmark("soplex", policy, length=LENGTH, seed=3)
    second = run_benchmark("soplex", policy, length=LENGTH, seed=3)
    assert first.to_json() == second.to_json()


def test_different_seeds_actually_differ():
    # Guards the guard: if to_json() ignored the measurements, the
    # identity test above would pass vacuously.
    a = run_benchmark("soplex", "baseline", length=LENGTH, seed=3)
    b = run_benchmark("soplex", "baseline", length=LENGTH, seed=4)
    assert a.to_json() != b.to_json()


@pytest.mark.multiproc
def test_parallel_sweep_matches_serial_byte_for_byte():
    serial = run_policy_sweep(
        "soplex", ["baseline", "slip_abp"], length=LENGTH, jobs=1
    )
    parallel = run_policy_sweep(
        "soplex", ["baseline", "slip_abp"], length=LENGTH, jobs=2
    )
    for policy in ("baseline", "slip_abp"):
        assert serial[policy].to_json() == parallel[policy].to_json()
