"""Tests for the Section 7 rd-block extension (blocks below page size)."""

import dataclasses

import pytest

from repro.core.runtime import SlipRuntime
from repro.sim.build import build_hierarchy
from repro.sim.single_core import run_trace
from repro.workloads.benchmarks import make_trace


def block_system(tiny_system, lines=16):
    return tiny_system.with_slip(rd_block_lines=lines)


class TestRdBlockRuntime:
    def test_default_is_page_granularity(self, tiny_system):
        runtime = SlipRuntime(tiny_system)
        assert runtime.block_shift is None
        assert runtime.profile_key(page=5, line_addr=5 * 64 + 3) == 5

    def test_block_key_derivation(self, tiny_system):
        runtime = SlipRuntime(block_system(tiny_system, 16))
        assert runtime.block_shift == 4
        assert runtime.profile_key(page=0, line_addr=17) == 1
        assert runtime.profile_key(page=0, line_addr=15) == 0

    def test_blocks_partition_pages(self, tiny_system):
        runtime = SlipRuntime(block_system(tiny_system, 16))
        # A 64-line page holds four 16-line blocks.
        keys = {
            runtime.profile_key(0, line) for line in range(64)
        }
        assert len(keys) == 4

    def test_non_power_of_two_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            SlipRuntime(block_system(tiny_system, 12))

    def test_blocks_larger_than_page_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            SlipRuntime(block_system(tiny_system, 128))

    def test_slip_cache_fetches_block_metadata(self, tiny_system):
        runtime = SlipRuntime(block_system(tiny_system, 16))
        fetches = runtime.on_reference(page=0, line_addr=0)
        assert len(fetches) == 2  # PTE + block distribution
        # Same block, page now in TLB and block in SLIP-cache.
        assert runtime.on_reference(page=0, line_addr=1) == []
        # Different block of the same page: only block metadata.
        fetches = runtime.on_reference(page=0, line_addr=17)
        assert len(fetches) == 1

    def test_per_block_profiles_independent(self, tiny_system):
        runtime = SlipRuntime(block_system(tiny_system, 16))
        runtime.on_reference(0, 0)
        runtime.on_reference(0, 17)
        runtime.record_miss_sample("L2", 0)
        assert runtime.pages[0].distributions["L2"].total() == 1
        assert runtime.pages[1].distributions["L2"].total() == 0


class TestRdBlockSimulation:
    def test_hierarchy_runs_with_blocks(self, tiny_system):
        hierarchy = build_hierarchy(block_system(tiny_system, 16),
                                    "slip_abp")
        trace = make_trace("soplex", 5000)
        for addr, wr in zip(trace.addresses.tolist(),
                            trace.is_write.tolist()):
            hierarchy.access(addr, wr)
        assert hierarchy.counters.demand_accesses == len(trace)

    def test_block_mode_produces_comparable_results(self):
        """Finer rd-blocks must not break the energy story."""
        from repro.sim.config import default_system

        trace = make_trace("soplex", 60_000)
        page_cfg = default_system()
        block_cfg = page_cfg.with_slip(rd_block_lines=16)
        base = run_trace(trace, "baseline", config=page_cfg)
        by_page = run_trace(trace, "slip_abp", config=page_cfg)
        by_block = run_trace(trace, "slip_abp", config=block_cfg)
        page_savings = by_page.energy_savings_over(base, "L2")
        block_savings = by_block.energy_savings_over(base, "L2")
        # Block granularity may win or lose a little (more metadata,
        # sharper profiles) but stays in the same regime.
        assert abs(block_savings - page_savings) < 0.25
