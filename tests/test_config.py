"""Tests for the system configuration (Tables 1 and 2)."""

import dataclasses

import pytest

from repro.sim.config import (
    CacheLevelConfig,
    DramConfig,
    SlipParams,
    default_l2,
    default_l3,
    default_system,
)


class TestTable1Parameters:
    """The default system must match Table 1 of the paper."""

    def test_l1_size_and_ways(self):
        cfg = default_system().l1
        assert cfg.size_bytes == 32 * 1024
        assert cfg.ways == 8
        assert cfg.latency_cycles == 4

    def test_l2_size_ways_latency(self):
        cfg = default_system().l2
        assert cfg.size_bytes == 256 * 1024
        assert cfg.ways == 16
        assert cfg.latency_cycles == 7

    def test_l3_size_ways_latency(self):
        cfg = default_system().l3
        assert cfg.size_bytes == 2 * 1024 * 1024
        assert cfg.ways == 16
        assert cfg.latency_cycles == 20

    def test_dram_latency(self):
        assert default_system().dram.latency_cycles == 100

    def test_l2_sublevel_sizes(self):
        cfg = default_system().l2
        sizes = [
            cfg.sublevel_capacity_lines(i) * cfg.line_size
            for i in range(cfg.num_sublevels)
        ]
        assert sizes == [64 * 1024, 64 * 1024, 128 * 1024]

    def test_l3_sublevel_sizes(self):
        cfg = default_system().l3
        sizes = [
            cfg.sublevel_capacity_lines(i) * cfg.line_size
            for i in range(cfg.num_sublevels)
        ]
        assert sizes == [512 * 1024, 512 * 1024, 1024 * 1024]

    def test_l2_sublevel_latencies(self):
        assert default_system().l2.sublevel_latency == (4, 6, 8)

    def test_l3_sublevel_latencies(self):
        assert default_system().l3.sublevel_latency == (15, 19, 23)

    def test_slip_metadata_parameters(self):
        slip = default_system().slip
        assert slip.num_bins == 4
        assert slip.bin_bits == 4
        assert slip.timestamp_bits == 6
        assert slip.nsamp == 16
        assert slip.nstab == 256

    def test_core_frequency(self):
        assert default_system().core.frequency_ghz == 2.4


class TestTable2Parameters:
    """Energy values must match Table 2."""

    def test_l2_energies(self):
        cfg = default_system().l2
        assert cfg.access_energy_pj == 39.0
        assert cfg.sublevel_energy_pj == (21.0, 33.0, 50.0)
        assert cfg.metadata_energy_pj == 1.0

    def test_l3_energies(self):
        cfg = default_system().l3
        assert cfg.access_energy_pj == 136.0
        assert cfg.sublevel_energy_pj == (67.0, 113.0, 176.0)
        assert cfg.metadata_energy_pj == 2.5

    def test_dram_energy_per_line(self):
        dram = default_system().dram
        assert dram.energy_pj_per_bit == 20.0
        assert dram.energy_pj_per_line == 20.0 * 64 * 8

    def test_eou_energy(self):
        assert default_system().slip.eou_energy_pj == 1.27

    def test_movement_queue_energy(self):
        assert default_system().slip.movement_queue_lookup_pj == 0.3


class TestCacheLevelConfig:
    def test_sets_computed(self):
        assert default_l2().sets == 256
        assert default_l3().sets == 2048

    def test_lines_computed(self):
        assert default_l2().lines == 4096
        assert default_l3().lines == 32768

    def test_sublevel_of_way_boundaries(self):
        cfg = default_l2()
        assert cfg.sublevel_of_way(0) == 0
        assert cfg.sublevel_of_way(3) == 0
        assert cfg.sublevel_of_way(4) == 1
        assert cfg.sublevel_of_way(7) == 1
        assert cfg.sublevel_of_way(8) == 2
        assert cfg.sublevel_of_way(15) == 2

    def test_sublevel_of_way_out_of_range(self):
        with pytest.raises(IndexError):
            default_l2().sublevel_of_way(16)

    def test_ways_of_sublevel(self):
        cfg = default_l2()
        assert list(cfg.ways_of_sublevel(0)) == [0, 1, 2, 3]
        assert list(cfg.ways_of_sublevel(1)) == [4, 5, 6, 7]
        assert list(cfg.ways_of_sublevel(2)) == list(range(8, 16))

    def test_cumulative_capacity(self):
        assert default_l2().cumulative_capacity_lines() == (1024, 2048, 4096)
        assert default_l3().cumulative_capacity_lines() == (
            8192, 16384, 32768,
        )

    def test_read_energy_by_way(self):
        cfg = default_l2()
        assert cfg.read_energy_pj(0) == 21.0
        assert cfg.read_energy_pj(5) == 33.0
        assert cfg.read_energy_pj(12) == 50.0

    def test_write_energy_equals_read(self):
        cfg = default_l2()
        for way in range(cfg.ways):
            assert cfg.write_energy_pj(way) == cfg.read_energy_pj(way)

    def test_latency_by_way(self):
        cfg = default_l3()
        assert cfg.latency_of_way(0) == 15
        assert cfg.latency_of_way(6) == 19
        assert cfg.latency_of_way(15) == 23

    def test_average_access_energy_capacity_weighted(self):
        cfg = default_l2()
        expected = (4 * 21 + 4 * 33 + 8 * 50) / 16
        assert cfg.average_access_energy_pj() == pytest.approx(expected)

    def test_average_close_to_baseline(self):
        # Table 2's 39 pJ baseline is the way-mean of the sublevels.
        assert default_l2().average_access_energy_pj() == pytest.approx(
            39.0, rel=0.02
        )
        assert default_l3().average_access_energy_pj() == pytest.approx(
            136.0, rel=0.03
        )

    def test_uniform_level_has_single_sublevel(self):
        cfg = default_system().l1
        assert cfg.num_sublevels == 1
        assert cfg.sublevel_of_way(7) == 0
        assert cfg.read_energy_pj(3) == cfg.access_energy_pj

    def test_invalid_sublevel_sum_rejected(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(
                name="bad", size_bytes=4096, ways=4, latency_cycles=1,
                access_energy_pj=1.0, sublevel_ways=(1, 1),
                sublevel_energy_pj=(1.0, 2.0), sublevel_latency=(1, 2),
            )

    def test_mismatched_sublevel_spec_rejected(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(
                name="bad", size_bytes=4096, ways=4, latency_cycles=1,
                access_energy_pj=1.0, sublevel_ways=(2, 2),
                sublevel_energy_pj=(1.0,), sublevel_latency=(1, 2),
            )

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(
                name="bad", size_bytes=1000, ways=4, latency_cycles=1,
                access_energy_pj=1.0,
            )


class TestSlipParams:
    def test_bin_max(self):
        assert SlipParams(bin_bits=4).bin_max == 15
        assert SlipParams(bin_bits=2).bin_max == 3

    def test_with_slip_override(self):
        system = default_system().with_slip(bin_bits=6)
        assert system.slip.bin_bits == 6
        # Everything else untouched.
        assert system.slip.nsamp == 16
        assert system.l2.ways == 16

    def test_lines_per_page(self):
        assert default_system().lines_per_page == 64


class TestDramConfig:
    def test_energy_scales_with_line_size(self):
        small = DramConfig(energy_pj_per_bit=1.0, line_size=32)
        assert small.energy_pj_per_line == 32 * 8

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            default_system().dram.latency_cycles = 1
