"""Golden accounting-equivalence tests for the hot-path rewrite.

The fused access/fill fast paths (per-way tables, deferred event-count
energy, inlined L1/L2/L3 legs) must be *byte-identical* in their
published accounting to the pre-refactor primitive-by-primitive code.
These tests pin that down: each snapshot under
``tests/data/golden_accounting/`` is the exact ``RunResult.to_json()``
produced by the pre-refactor tree for the same (benchmark, policy,
length, seed) cell, and the current tree must reproduce it to the byte.

If a deliberate accounting change ever invalidates these, regenerate
the snapshots with the loop below and call the change out in the PR:

    from repro.sim.single_core import run_benchmark
    run_benchmark(bench, policy, length=20_000, seed=0).to_json() + "\n"
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.single_core import run_benchmark

GOLDEN_DIR = pathlib.Path(__file__).parent / "data" / "golden_accounting"

CELLS = [
    ("soplex", "baseline"),
    ("soplex", "slip"),
    ("soplex", "slip_abp"),
    ("lbm", "baseline"),
    ("lbm", "slip"),
    ("lbm", "slip_abp"),
]


@pytest.mark.parametrize("bench,policy", CELLS)
def test_golden_run_result_bytes(bench: str, policy: str) -> None:
    expected = (GOLDEN_DIR / f"{bench}_{policy}.json").read_text()
    result = run_benchmark(bench, policy, length=20_000, seed=0)
    actual = result.to_json() + "\n"
    if actual != expected:
        # Pinpoint the first divergence rather than dumping two ~10 KB
        # JSON blobs at each other.
        idx = next(
            (i for i, (a, b) in enumerate(zip(actual, expected)) if a != b),
            min(len(actual), len(expected)),
        )
        lo, hi = max(0, idx - 60), idx + 60
        pytest.fail(
            f"{bench}/{policy} diverges from golden snapshot at byte "
            f"{idx}:\n  golden:  ...{expected[lo:hi]!r}...\n"
            f"  current: ...{actual[lo:hi]!r}..."
        )


def test_golden_snapshots_exist() -> None:
    """The parametrized cells must cover every checked-in snapshot."""
    snapshots = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert snapshots == {f"{b}_{p}" for b, p in CELLS}
