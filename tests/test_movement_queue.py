"""Tests for the movement queue (Section 4.3)."""

import pytest

from repro.mem.movement_queue import MovementQueue, MovementQueueFullError


class TestMovementQueue:
    def test_enqueue_and_complete(self):
        queue = MovementQueue(4)
        queue.enqueue(100, destination_way=3)
        assert len(queue) == 1
        assert queue.complete(100) == 3
        assert len(queue) == 0

    def test_probe_finds_inflight_line(self):
        queue = MovementQueue(4)
        queue.enqueue(100, 1)
        assert queue.probe(100)
        assert not queue.probe(200)

    def test_invalidation_drops_line(self):
        queue = MovementQueue(4)
        queue.enqueue(100, 1)
        assert queue.invalidate(100)
        assert not queue.probe(100)

    def test_invalidate_absent_returns_false(self):
        assert not MovementQueue(4).invalidate(5)

    def test_overflow_raises(self):
        queue = MovementQueue(2)
        queue.enqueue(1, 0)
        queue.enqueue(2, 0)
        with pytest.raises(MovementQueueFullError):
            queue.enqueue(3, 0)

    def test_sixteen_entries_default(self):
        assert MovementQueue().entries == 16

    def test_lookup_energy_charged(self):
        queue = MovementQueue(4, lookup_pj=0.3)
        queue.enqueue(1, 0)
        queue.complete(1)
        assert queue.stats.energy_pj == pytest.approx(0.3)

    def test_peak_occupancy_tracked(self):
        queue = MovementQueue(4)
        queue.enqueue(1, 0)
        queue.enqueue(2, 0)
        queue.complete(1)
        queue.enqueue(3, 0)
        assert queue.stats.peak_occupancy == 2

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MovementQueue(0)
