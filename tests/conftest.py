"""Shared fixtures: scaled-down systems so tests run in milliseconds."""

import pytest

from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramConfig,
    SlipParams,
    SystemConfig,
)

# Integration-style modules run with the SimCheck runtime invariant
# checkers enabled, so every full-length simulation in the suite doubles
# as a conservation/consistency audit of the hierarchy it builds.
SIMCHECK_MODULES = ("test_integration.py", "test_multicore.py")


@pytest.fixture(autouse=True, scope="module")
def _simcheck_for_integration(request):
    """Enable REPRO_CHECK_INVARIANTS for the integration test modules.

    Module-scoped on purpose: test_integration builds its hierarchies in
    a module-scoped fixture, and a function-scoped env patch would be
    applied too late to be seen by that setup.
    """
    if request.node.name not in SIMCHECK_MODULES:
        yield
        return
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CHECK_INVARIANTS", "1")
    try:
        yield
    finally:
        mp.undo()


def tiny_l1() -> CacheLevelConfig:
    return CacheLevelConfig(
        name="L1",
        size_bytes=1024,          # 16 lines: 8 sets x 2 ways
        ways=2,
        latency_cycles=1,
        access_energy_pj=1.0,
    )


def tiny_l2() -> CacheLevelConfig:
    return CacheLevelConfig(
        name="L2",
        size_bytes=4096,          # 64 lines: 16 sets x 4 ways
        ways=4,
        latency_cycles=3,
        access_energy_pj=10.0,
        metadata_energy_pj=0.5,
        sublevel_ways=(1, 1, 2),
        sublevel_energy_pj=(6.0, 9.0, 13.0),
        sublevel_latency=(2, 3, 4),
    )


def tiny_l3() -> CacheLevelConfig:
    return CacheLevelConfig(
        name="L3",
        size_bytes=16384,         # 256 lines: 32 sets x 8 ways
        ways=8,
        latency_cycles=8,
        access_energy_pj=40.0,
        metadata_energy_pj=1.0,
        sublevel_ways=(2, 2, 4),
        sublevel_energy_pj=(20.0, 35.0, 55.0),
        sublevel_latency=(6, 8, 10),
    )


@pytest.fixture
def tiny_system() -> SystemConfig:
    return SystemConfig(
        l1=tiny_l1(),
        l2=tiny_l2(),
        l3=tiny_l3(),
        dram=DramConfig(latency_cycles=50, energy_pj_per_bit=2.0),
        slip=SlipParams(),
        core=CoreConfig(),
        tlb_entries=8,
    )


@pytest.fixture
def paper_system():
    from repro.sim.config import default_system

    return default_system()
