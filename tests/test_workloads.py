"""Tests for trace generators and benchmark analogs."""

import numpy as np
import pytest

from repro.workloads.benchmarks import (
    BENCHMARKS,
    FIG1_BENCHMARKS,
    SPEC_ORDER,
    make_trace,
)
from repro.workloads.generators import (
    BimodalLoopRegion,
    HotColdRegion,
    LoopRegion,
    RandomRegion,
    RegionMix,
    StreamRegion,
)
from repro.workloads.mixes import (
    CORE_ADDRESS_STRIDE,
    MULTICORE_MIXES,
    make_mix_traces,
    mix_name,
)
from repro.workloads.trace import Trace, concatenate


def rng(seed=0):
    return np.random.default_rng(seed)


class TestLoopRegion:
    def test_cyclic_footprint(self):
        region = LoopRegion("l", 10, 1.0)
        out = region.generate(25, rng())
        assert out.max() < 10
        assert list(out[:10]) == list(out[10:20])

    def test_position_persists_across_calls(self):
        region = LoopRegion("l", 10, 1.0)
        first = region.generate(7, rng())
        second = region.generate(3, rng())
        assert second[0] == (first[-1] + 1) % 10

    def test_stride(self):
        region = LoopRegion("l", 100, 1.0, stride=3)
        out = region.generate(5, rng())
        assert list(out) == [0, 3, 6, 9, 12]

    def test_burst_covers_passes(self):
        region = LoopRegion("l", 1000, 1.0)
        assert region.preferred_burst() >= 2 * 1000

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LoopRegion("l", 0, 1.0)
        with pytest.raises(ValueError):
            LoopRegion("l", 10, -1.0)


class TestStreamRegion:
    def test_monotone_until_wrap(self):
        region = StreamRegion("s", 1.0, span=100)
        out = region.generate(150, rng())
        assert list(out[:100]) == list(range(100))
        assert list(out[100:110]) == list(range(10))

    def test_span_exceeds_llc(self):
        assert StreamRegion("s", 1.0).span_lines() > 32768


class TestRandomRegion:
    def test_bounds(self):
        region = RandomRegion("r", 500, 1.0)
        out = region.generate(1000, rng())
        assert out.min() >= 0
        assert out.max() < 500

    def test_clustering(self):
        region = RandomRegion("r", 10_000, 1.0, cluster_lines=4)
        out = region.generate(400, rng())
        deltas = np.diff(out)
        # Three of every four steps are +1 within a cluster.
        assert (deltas == 1).mean() > 0.5

    def test_cluster_must_be_positive(self):
        with pytest.raises(ValueError):
            RandomRegion("r", 100, 1.0, cluster_lines=0)


class TestHotColdRegion:
    def test_hot_lines_absorb_majority(self):
        region = HotColdRegion("h", 10_000, 1.0, hot_fraction=0.05,
                               hot_probability=0.8)
        out = region.generate(20_000, rng())
        values, counts = np.unique(out, return_counts=True)
        top = counts[np.argsort(counts)][-region.hot_lines:].sum()
        assert top / counts.sum() > 0.5

    def test_hot_lines_striped_across_footprint(self):
        """Hot anchors must be spread, not packed in a prefix."""
        region = HotColdRegion("h", 10_000, 1.0, hot_fraction=0.05,
                               hot_probability=0.99)
        out = region.generate(5_000, rng())
        assert out.max() > 5_000  # hot touches reach the far half

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HotColdRegion("h", 100, 1.0, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotColdRegion("h", 100, 1.0, hot_probability=1.5)


class TestBimodalLoopRegion:
    def test_offsets_within_span(self):
        region = BimodalLoopRegion("b", 50, 1000, 0.3, 1.0)
        out = region.generate(5000, rng())
        assert out.max() < 1000

    def test_short_windows_rescanned(self):
        region = BimodalLoopRegion("b", 50, 100_000, 0.9, 1.0)
        out = region.generate(2000, rng())
        # Second scans duplicate the window: many repeated values.
        assert np.unique(out).size < out.size

    def test_short_must_be_below_long(self):
        with pytest.raises(ValueError):
            BimodalLoopRegion("b", 100, 100, 0.5, 1.0)

    def test_share_must_be_probability(self):
        with pytest.raises(ValueError):
            BimodalLoopRegion("b", 10, 100, 1.5, 1.0)

    def test_pending_preserved_across_calls(self):
        region = BimodalLoopRegion("b", 50, 1000, 0.9, 1.0)
        a = region.generate(30, rng(1))
        b = region.generate(200, rng(1))
        assert a.size == 30 and b.size == 200


class TestRegionMix:
    def test_regions_in_disjoint_address_ranges(self):
        mix = RegionMix([
            LoopRegion("a", 100, 1.0),
            LoopRegion("b", 100, 1.0),
        ])
        addrs, _ = mix.generate(2000, rng())
        base_b = mix.placements[1].base_line
        in_a = addrs < base_b
        assert in_a.any() and (~in_a).any()
        assert addrs[in_a].max() < 100
        assert addrs[~in_a].min() >= base_b

    def test_access_shares_follow_weights(self):
        mix = RegionMix([
            StreamRegion("a", 3.0),
            StreamRegion("b", 1.0),
        ])
        addrs, _ = mix.generate(40_000, rng())
        base_b = mix.placements[1].base_line
        share_a = (addrs < base_b).mean()
        assert share_a == pytest.approx(0.75, abs=0.1)

    def test_write_fractions_respected(self):
        mix = RegionMix([StreamRegion("a", 1.0, write_fraction=0.5)])
        _, writes = mix.generate(10_000, rng())
        assert writes.mean() == pytest.approx(0.5, abs=0.05)

    def test_bursty_schedule(self):
        mix = RegionMix([
            StreamRegion("a", 1.0),
            StreamRegion("b", 1.0),
        ])
        schedule = mix._burst_schedule(10_000, rng())
        switches = (np.diff(schedule) != 0).sum()
        # Far fewer switches than a per-access coin flip (~5000).
        assert switches < 500

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            RegionMix([])


class TestTrace:
    def test_length_and_iteration(self):
        trace = make_trace("lbm", 500)
        assert len(trace) == 500
        pairs = list(trace)
        assert len(pairs) == 500
        assert isinstance(pairs[0][0], int)

    def test_deterministic_per_seed(self):
        a = make_trace("soplex", 1000, seed=3)
        b = make_trace("soplex", 1000, seed=3)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)

    def test_different_seeds_differ(self):
        a = make_trace("soplex", 1000, seed=1)
        b = make_trace("soplex", 1000, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_footprint_helpers(self):
        trace = make_trace("lbm", 2000)
        assert 0 < trace.footprint_pages() <= trace.footprint_lines()

    def test_with_offset(self):
        trace = make_trace("lbm", 100)
        shifted = trace.with_offset(1000)
        assert np.array_equal(shifted.addresses, trace.addresses + 1000)

    def test_sliced(self):
        trace = make_trace("lbm", 100)
        part = trace.sliced(10, 20)
        assert len(part) == 10
        assert np.array_equal(part.addresses, trace.addresses[10:20])

    def test_concatenate(self):
        a = make_trace("lbm", 50)
        b = make_trace("lbm", 50, seed=1)
        joined = concatenate("x", (a, b), 3.0)
        assert len(joined) == 100

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace("x", np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))

    def test_instruction_count(self):
        trace = make_trace("lbm", 100)
        assert trace.instruction_count == pytest.approx(
            100 * trace.instructions_per_access
        )


class TestBenchmarkCatalog:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARKS) == 14
        assert set(SPEC_ORDER) == set(BENCHMARKS)

    def test_fig1_subset(self):
        assert set(FIG1_BENCHMARKS) <= set(BENCHMARKS)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_benchmark_generates(self, name):
        trace = make_trace(name, 2000)
        assert len(trace) >= 2000
        assert trace.addresses.min() >= 0

    def test_mcf_has_two_phases(self):
        assert len(BENCHMARKS["mcf"].phases) == 2

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            make_trace("nonexistent", 100)

    def test_instructions_per_access_positive(self):
        for spec in BENCHMARKS.values():
            assert spec.instructions_per_access > 1.0


class TestMixes:
    def test_eight_mixes(self):
        assert len(MULTICORE_MIXES) == 8

    def test_mix_names(self):
        assert mix_name(("a", "b")) == "a+b"

    def test_mix_traces_disjoint_address_spaces(self):
        traces = make_mix_traces(("soplex", "mcf"), 1000)
        assert traces[0].addresses.max() < CORE_ADDRESS_STRIDE
        assert traces[1].addresses.min() >= CORE_ADDRESS_STRIDE

    def test_all_mix_members_exist(self):
        for a, b in MULTICORE_MIXES:
            assert a in BENCHMARKS and b in BENCHMARKS
