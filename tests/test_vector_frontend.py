"""Batched front-end capture kernel: byte-identity, declines, store knob.

Mirror of the replay-kernel suites for the capture side: every capture
the kernel (:mod:`repro.sim.vector_frontend`) accepts must be
byte-identical to the scalar ``capture_front_end`` walk — arrays,
boundaries and frozen statistics — and every cell fed from it must
serialize byte-for-byte like the scalar cold path, across all five
policies, both capture stores, both worker modes and randomized
trace/geometry space. Everything the kernel cannot represent must
decline with a recorded reason and fall back to the scalar walk with
identical bytes. Also covers the ``REPRO_CAPTURE_MEM_ENTRIES``
capacity knob of the in-process store.
"""

import json
import random

import numpy as np
import pytest

from repro.core.energy_model import LevelEnergyParams
from repro.experiments.parallel import RunRequest, run_jobs
from repro.mem.replacement import RandomReplacement
from repro.sim.build import build_hierarchy
from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramConfig,
    SlipParams,
    SystemConfig,
)
from repro.sim.filtered import capture_front_end, run_trace_filtered
from repro.sim.single_core import run_trace
from repro.sim.vector_frontend import (
    capture_front_end_vector,
    frontend_eligible,
)
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import (
    _ARRAY_NAMES,
    CAPTURE_MEM_ENTRIES_ENV,
    DiskCaptureStore,
    MemoryCaptureStore,
    default_store,
)
from repro.workloads.trace import Trace

POLICIES = ("baseline", "nurapid", "lru_pea", "slip", "slip_abp")
LENGTH = 2_500


def canonical(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def capture_pair(trace, config, monkeypatch, warmup_fraction=0.25):
    """(scalar capture, kernel capture) of the same front end."""
    monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "0")
    scalar = capture_front_end(trace, config, warmup_fraction)
    monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "1")
    vector = capture_front_end(trace, config, warmup_fraction)
    return scalar, vector


def assert_captures_equal(vector, scalar):
    assert (vector.n, vector.warmup, vector.event_boundary) == \
        (scalar.n, scalar.warmup, scalar.event_boundary)
    for name in _ARRAY_NAMES:
        v, s = getattr(vector, name), getattr(scalar, name)
        assert v.dtype == s.dtype, name
        assert np.array_equal(v, s), name
    assert json.dumps(vector.frozen, sort_keys=True) == \
        json.dumps(scalar.frozen, sort_keys=True)


def synthetic_trace(rng, length) -> Trace:
    """A high-churn random trace: evictions, dirty victims, TLB misses."""
    span = rng.choice((64, 256, 2_048))
    addresses = np.asarray([rng.randrange(span) for _ in range(length)],
                           dtype=np.int64)
    is_write = np.asarray([rng.random() < 0.4 for _ in range(length)],
                          dtype=bool)
    return Trace(name=f"synthetic-{span}", addresses=addresses,
                 is_write=is_write)


# ----------------------------------------------------------------------
# Byte-identical captures and cold cells
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("bench", ("soplex", "lbm"))
    def test_capture_matches_scalar(self, bench, tiny_system,
                                    monkeypatch):
        trace = make_trace(bench, LENGTH)
        scalar, vector = capture_pair(trace, tiny_system, monkeypatch)
        assert_captures_equal(vector, scalar)

    def test_capture_matches_scalar_paper_geometry(self, paper_system,
                                                   monkeypatch):
        assert frontend_eligible(
            build_hierarchy(paper_system, "baseline"))
        trace = make_trace("soplex", LENGTH)
        scalar, vector = capture_pair(trace, paper_system, monkeypatch)
        assert_captures_equal(vector, scalar)

    @pytest.mark.parametrize("warmup_fraction", (0.0, 0.25, 0.6, 1.0))
    def test_warmup_boundary_edges(self, warmup_fraction, tiny_system,
                                   monkeypatch):
        """Array state crosses the reset; tallies split exactly."""
        trace = make_trace("lbm", 1_100)
        scalar, vector = capture_pair(trace, tiny_system, monkeypatch,
                                      warmup_fraction=warmup_fraction)
        assert_captures_equal(vector, scalar)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("store_kind", ("memory", "disk"))
    def test_cold_cell_matches_scalar(self, policy, store_kind,
                                      tiny_system, tmp_path,
                                      monkeypatch):
        """A cold cell fed by the kernel serializes identically."""
        trace = make_trace("soplex", LENGTH)

        def cold_cell(env: str) -> str:
            monkeypatch.setenv("REPRO_VECTOR_FRONTEND", env)
            store = (MemoryCaptureStore() if store_kind == "memory"
                     else DiskCaptureStore(str(tmp_path / env)))
            return canonical(run_trace_filtered(
                trace, policy, config=tiny_system, store=store))

        assert cold_cell("1") == cold_cell("0")

    @pytest.mark.parametrize("policy", ("baseline", "slip_abp"))
    def test_cold_cell_matches_direct(self, policy, tiny_system,
                                      monkeypatch):
        """Transitivity check straight to the unfiltered simulator."""
        trace = make_trace("lbm", LENGTH)
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "1")
        cold = run_trace_filtered(trace, policy, config=tiny_system,
                                  store=MemoryCaptureStore())
        assert canonical(cold) == canonical(
            run_trace(trace, policy, config=tiny_system))

    def test_capture_through_store_is_kernel_capture(self, tiny_system,
                                                     monkeypatch):
        """The cold baseline path stores the kernel's capture bytes."""
        trace = make_trace("soplex", 1_400)
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "1")
        store = MemoryCaptureStore()
        run_trace_filtered(trace, "baseline", config=tiny_system,
                           store=store)
        (stored,) = store._entries.values()
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "0")
        scalar = capture_front_end(trace, tiny_system)
        assert_captures_equal(stored, scalar)


# ----------------------------------------------------------------------
# Worker parity: jobs=1 vs jobs=2, each over a fresh disk store
# ----------------------------------------------------------------------
@pytest.mark.multiproc
def test_jobs_parity_vector_vs_scalar(tmp_path, monkeypatch):
    grid = [RunRequest("soplex", policy, length=2_000)
            for policy in ("baseline", "slip_abp")]
    reports = {}
    for label, env, jobs in (("scalar", "0", 1), ("serial", "1", 1),
                             ("parallel", "1", 2)):
        # A fresh store per mode keeps every run cold, so the capture
        # itself (not just the replay) comes from the mode under test.
        monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path / label))
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", env)
        reports[label] = run_jobs(grid, jobs=jobs)
    for base, ours, theirs in zip(reports["scalar"].results,
                                  reports["serial"].results,
                                  reports["parallel"].results):
        assert ours.result == base.result, base.request.label()
        assert theirs.result == base.result, base.request.label()


# ----------------------------------------------------------------------
# Randomized trace/geometry property test (hypothesis-style)
# ----------------------------------------------------------------------
def _random_frontend_system(rng) -> SystemConfig:
    """Vary exactly what the front end observes: L1 shape, TLB size."""
    ways = rng.choice((1, 2, 4, 8))
    sets = rng.choice((2, 4, 8, 16))
    l1 = CacheLevelConfig(
        name="L1",
        size_bytes=sets * ways * 64,
        ways=ways,
        latency_cycles=rng.randint(1, 4),
        access_energy_pj=rng.choice((1.0, 2.5)),
    )
    # Partitioned L2/L3 (the slip runtime requires sublevels); only
    # the L1/TLB shape above matters to the front-end kernel.
    l2 = CacheLevelConfig(name="L2", size_bytes=4096, ways=4,
                          latency_cycles=3, access_energy_pj=10.0,
                          sublevel_ways=(1, 1, 2),
                          sublevel_energy_pj=(6.0, 9.0, 13.0),
                          sublevel_latency=(2, 3, 4))
    l3 = CacheLevelConfig(name="L3", size_bytes=16384, ways=8,
                          latency_cycles=8, access_energy_pj=40.0,
                          sublevel_ways=(2, 2, 4),
                          sublevel_energy_pj=(20.0, 35.0, 55.0),
                          sublevel_latency=(6, 8, 10))
    return SystemConfig(
        l1=l1, l2=l2, l3=l3,
        dram=DramConfig(latency_cycles=50, energy_pj_per_bit=2.0),
        slip=SlipParams(), core=CoreConfig(),
        tlb_entries=rng.choice((2, 4, 8, 64)),
    )


@pytest.mark.parametrize("case_seed", range(8))
def test_random_geometry_property(case_seed, monkeypatch):
    rng = random.Random(9_000 + case_seed)
    config = _random_frontend_system(rng)
    length = rng.randint(900, 2_200)
    if rng.random() < 0.5:
        trace = synthetic_trace(rng, length)
    else:
        trace = make_trace(rng.choice(("soplex", "lbm", "mcf")),
                           length, seed=rng.randint(0, 99))
    scalar, vector = capture_pair(trace, config, monkeypatch)
    assert_captures_equal(vector, scalar)
    policy = POLICIES[case_seed % len(POLICIES)]
    monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "1")
    cold = run_trace_filtered(trace, policy, config=config,
                              store=MemoryCaptureStore())
    assert canonical(cold) == canonical(
        run_trace(trace, policy, config=config))


# ----------------------------------------------------------------------
# Decline matrix: every ineligible shape records why it fell back
# ----------------------------------------------------------------------
class TestDecline:
    def test_default_hierarchy_is_eligible(self, tiny_system):
        assert frontend_eligible(build_hierarchy(tiny_system,
                                                 "baseline"))

    def test_simcheck_declines(self, tiny_system, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert not frontend_eligible(hierarchy)
        assert hierarchy.vector_frontend_decline == "simcheck"

    def test_rd_block_mode_declines(self, tiny_system):
        config = tiny_system.with_slip(rd_block_lines=8)
        hierarchy = build_hierarchy(config, "slip")
        assert not frontend_eligible(hierarchy)
        assert hierarchy.vector_frontend_decline == "rd-block"

    def test_non_lru_l1_replacement_declines(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline")
        hierarchy.l1.replacement = RandomReplacement()
        assert not frontend_eligible(hierarchy)
        assert (hierarchy.vector_frontend_decline
                == "l1-replacement:RandomReplacement")

    def test_partitioned_l1_declines_and_falls_back(self, tiny_system,
                                                    monkeypatch):
        """Non-uniform L1: decline, and the scalar walk still serves."""
        l1 = CacheLevelConfig(
            name="L1", size_bytes=1024, ways=2, latency_cycles=1,
            access_energy_pj=1.0, sublevel_ways=(1, 1),
            sublevel_energy_pj=(0.8, 1.4), sublevel_latency=(1, 2),
        )
        config = SystemConfig(
            l1=l1, l2=tiny_system.l2, l3=tiny_system.l3,
            dram=tiny_system.dram, slip=tiny_system.slip,
            core=tiny_system.core, tlb_entries=tiny_system.tlb_entries,
        )
        hierarchy = build_hierarchy(config, "baseline")
        assert not frontend_eligible(hierarchy)
        assert hierarchy.vector_frontend_decline == "l1-geometry"
        trace = make_trace("soplex", 1_200)
        scalar, fallback = capture_pair(trace, config, monkeypatch)
        assert_captures_equal(fallback, scalar)

    def test_env_flag_declines(self, tiny_system, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "0")
        trace = make_trace("soplex", 1_200)
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert capture_front_end_vector(hierarchy, trace,
                                        tiny_system) is None
        assert (hierarchy.vector_frontend_decline
                == "env:REPRO_VECTOR_FRONTEND")

    def test_successful_capture_clears_decline(self, tiny_system,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "1")
        trace = make_trace("soplex", 1_200)
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert capture_front_end_vector(hierarchy, trace,
                                        tiny_system) is not None
        assert hierarchy.vector_frontend_decline is None

    def test_debug_flag_echoes_reason_to_stderr(self, tiny_system,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "0")
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND_DEBUG", "1")
        hierarchy = build_hierarchy(tiny_system, "baseline")
        trace = make_trace("soplex", 800)
        assert capture_front_end_vector(hierarchy, trace,
                                        tiny_system) is None
        captured = capsys.readouterr()
        assert ("vector-frontend: decline (env:REPRO_VECTOR_FRONTEND)"
                in captured.err)
        assert captured.out == ""  # stdout stays deterministic

    def test_energy_overrides_still_bypass_filtered(self, tiny_system,
                                                    monkeypatch):
        """Overrides bypass capture entirely; the kernel never runs."""
        monkeypatch.setenv("REPRO_VECTOR_FRONTEND", "1")
        l1 = tiny_system.l1
        overrides = {
            "L1": LevelEnergyParams(
                sublevel_capacity_lines=(
                    l1.size_bytes // l1.line_size,),
                sublevel_energy_pj=(l1.access_energy_pj * 0.5,),
                next_level_energy_pj=10.0,
            )
        }
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        filtered = run_trace_filtered(
            trace, "baseline", config=tiny_system, store=store,
            level_energy_overrides=overrides,
        )
        assert not store._entries
        assert filtered == run_trace(trace, "baseline",
                                     config=tiny_system,
                                     level_energy_overrides=overrides)


# ----------------------------------------------------------------------
# REPRO_CAPTURE_MEM_ENTRIES: in-process store capacity knob
# ----------------------------------------------------------------------
class TestMemEntriesKnob:
    def test_default_capacity(self, monkeypatch):
        monkeypatch.delenv(CAPTURE_MEM_ENTRIES_ENV, raising=False)
        assert MemoryCaptureStore().max_entries == 16

    def test_env_sets_capacity_and_evicts_lru(self, monkeypatch):
        monkeypatch.setenv(CAPTURE_MEM_ENTRIES_ENV, "3")
        store = MemoryCaptureStore()
        assert store.max_entries == 3
        for key in ("a", "b", "c", "d"):
            store.put(key, object())
        assert list(store._entries) == ["b", "c", "d"]

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(CAPTURE_MEM_ENTRIES_ENV, "3")
        assert MemoryCaptureStore(max_entries=5).max_entries == 5

    @pytest.mark.parametrize("raw", ("frontend-bogus", "-2"))
    def test_bad_value_clamps_with_one_warning(self, raw, monkeypatch,
                                               capsys):
        monkeypatch.setenv(CAPTURE_MEM_ENTRIES_ENV, raw)
        assert MemoryCaptureStore().max_entries == 16
        assert MemoryCaptureStore().max_entries == 16
        err = capsys.readouterr().err
        message = (f"repro: ignoring {CAPTURE_MEM_ENTRIES_ENV}="
                   f"{raw!r} (need an integer >= 1); using the "
                   f"16-entry default")
        assert err.count(message) == 1  # warned once per value

    def test_default_store_retracks_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAPTURE_DIR", raising=False)
        monkeypatch.setenv(CAPTURE_MEM_ENTRIES_ENV, "2")
        store = default_store()
        store.clear()
        try:
            assert store.max_entries == 2
            store.put("x", object())
            store.put("y", object())
            monkeypatch.setenv(CAPTURE_MEM_ENTRIES_ENV, "1")
            again = default_store()
            assert again is store       # same process-wide singleton
            assert again.max_entries == 1
            assert list(store._entries) == ["y"]  # shrink trims now
        finally:
            store.clear()
