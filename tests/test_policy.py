"""Tests for SLIP representation and enumeration (Section 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import (
    Slip,
    SlipSpace,
    abp_slip,
    default_slip,
    enumerate_slips,
)


class TestSlipValidation:
    def test_valid_single_chunk(self):
        slip = Slip(((0, 1, 2),))
        assert slip.num_chunks == 1

    def test_valid_multi_chunk(self):
        slip = Slip(((0,), (1, 2)))
        assert slip.num_chunks == 2
        assert slip.num_sublevels_used == 3

    def test_abp_is_empty(self):
        assert abp_slip().is_abp
        assert abp_slip().num_chunks == 0

    def test_skipping_sublevels_rejected(self):
        # {[1]} skips sublevel 0 — excluded per footnote 1.
        with pytest.raises(ValueError):
            Slip(((1,),))

    def test_gap_between_chunks_rejected(self):
        with pytest.raises(ValueError):
            Slip(((0,), (2,)))

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError):
            Slip(((1, 0),))

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            Slip(((0,), ()))

    def test_str_formats_paper_notation(self):
        assert str(Slip(((0, 1), (2,)))) == "{[0,1], [2]}"
        assert str(abp_slip()) == "{}"


class TestEnumeration:
    @pytest.mark.parametrize("sublevels,expected", [(1, 2), (2, 4), (3, 8),
                                                    (4, 16), (5, 32)])
    def test_count_is_2_to_the_s(self, sublevels, expected):
        assert len(enumerate_slips(sublevels)) == expected

    def test_three_sublevel_enumeration_matches_paper(self):
        # Section 3.1 lists all 8 SLIPs of a 3-way (3-sublevel) cache.
        slips = {str(s) for s in enumerate_slips(3)}
        assert slips == {
            "{}", "{[0]}", "{[0,1]}", "{[0], [1]}", "{[0,1,2]}",
            "{[0,1], [2]}", "{[0], [1,2]}", "{[0], [1], [2]}",
        }

    def test_all_unique(self):
        slips = enumerate_slips(4)
        assert len(set(slips)) == len(slips)

    def test_contains_default_and_abp(self):
        slips = enumerate_slips(3)
        assert default_slip(3) in slips
        assert abp_slip() in slips

    def test_representable_in_s_bits(self):
        # 2**S policies fit exactly in S bits.
        for s in range(1, 6):
            assert len(enumerate_slips(s)) == 1 << s


class TestClassification:
    def test_abp_class(self):
        assert abp_slip().classify(3) == "abp"

    def test_default_class(self):
        assert default_slip(3).classify(3) == "default"

    def test_partial_bypass_class(self):
        assert Slip(((0,),)).classify(3) == "partial_bypass"
        assert Slip(((0,), (1,))).classify(3) == "partial_bypass"

    def test_other_class(self):
        assert Slip(((0,), (1, 2))).classify(3) == "other"
        assert Slip(((0,), (1,), (2,))).classify(3) == "other"

    def test_chunk_of_sublevel(self):
        slip = Slip(((0,), (1, 2)))
        assert slip.chunk_of_sublevel(0) == 0
        assert slip.chunk_of_sublevel(1) == 1
        assert slip.chunk_of_sublevel(2) == 1

    def test_chunk_of_bypassed_sublevel(self):
        assert Slip(((0,),)).chunk_of_sublevel(2) == -1


class TestSlipSpace:
    @pytest.fixture
    def space(self):
        return SlipSpace((4, 4, 8), (1024, 1024, 2048))

    def test_size(self, space):
        assert len(space) == 8

    def test_id_roundtrip(self, space):
        for slip_id in range(len(space)):
            assert space.id_of(space.slip_of(slip_id)) == slip_id

    def test_default_and_abp_ids(self, space):
        assert space.slip_of(space.default_id) == default_slip(3)
        assert space.slip_of(space.abp_id) == abp_slip()

    def test_chunk_ways_default(self, space):
        assert space.chunk_ways(space.default_id, 0) == tuple(range(16))

    def test_chunk_ways_split(self, space):
        slip_id = space.id_of(Slip(((0,), (1, 2))))
        assert space.chunk_ways(slip_id, 0) == (0, 1, 2, 3)
        assert space.chunk_ways(slip_id, 1) == tuple(range(4, 16))

    def test_num_chunks(self, space):
        assert space.num_chunks(space.abp_id) == 0
        assert space.num_chunks(space.default_id) == 1

    def test_cumulative_chunk_capacity(self, space):
        slip_id = space.id_of(Slip(((0,), (1, 2))))
        assert space.cumulative_chunk_capacity(slip_id) == (1024, 4096)

    def test_cumulative_capacity_partial(self, space):
        slip_id = space.id_of(Slip(((0, 1),)))
        assert space.cumulative_chunk_capacity(slip_id) == (2048,)

    def test_classify_cached(self, space):
        assert space.classify(space.abp_id) == "abp"
        assert space.classify(space.default_id) == "default"

    def test_mismatched_spec_rejected(self):
        with pytest.raises(ValueError):
            SlipSpace((4, 4), (1024,))


@given(st.integers(min_value=1, max_value=7))
def test_enumeration_property_count(sublevels):
    assert len(enumerate_slips(sublevels)) == 2 ** sublevels


@given(st.integers(min_value=1, max_value=6))
def test_enumeration_property_classes_partition(sublevels):
    """Every SLIP falls in exactly one of the four Figure 14 classes."""
    counts = {"abp": 0, "partial_bypass": 0, "default": 0, "other": 0}
    for slip in enumerate_slips(sublevels):
        counts[slip.classify(sublevels)] += 1
    assert counts["abp"] == 1
    assert counts["default"] == 1
    assert sum(counts.values()) == 2 ** sublevels
    # Partial bypasses: policies over a strict prefix = 2**(S-1) - 1.
    assert counts["partial_bypass"] == 2 ** (sublevels - 1) - 1
