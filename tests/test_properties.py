"""Property-based tests on core invariants.

The anchor test checks the cache substrate against an independent
reference model: a plain dict-based LRU set-associative cache must agree
with CacheLevel + BaselinePlacement on every hit and miss of a random
trace.
"""

from collections import OrderedDict
from typing import Dict

from hypothesis import given, settings, strategies as st

from repro.mem.cache import CacheLevel
from repro.mem.replacement import LruReplacement
from repro.policies.baseline import BaselinePlacement
from repro.sim.config import CacheLevelConfig


class ReferenceLru:
    """Independent model: per-set OrderedDict LRU."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets: Dict[int, OrderedDict] = {
            s: OrderedDict() for s in range(sets)
        }
        self.num_sets = sets
        self.ways = ways

    def access(self, addr: int) -> bool:
        s = addr % self.num_sets
        line_set = self.sets[s]
        if addr in line_set:
            line_set.move_to_end(addr)
            return True
        line_set[addr] = None
        if len(line_set) > self.ways:
            line_set.popitem(last=False)
        return False


def small_level():
    cfg = CacheLevelConfig(
        name="T", size_bytes=2048, ways=4, latency_cycles=1,
        access_energy_pj=1.0,
    )  # 8 sets x 4 ways
    level = CacheLevel(cfg, LruReplacement())
    policy = BaselinePlacement()
    policy.attach(level)
    return level, policy


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=400))
def test_cache_agrees_with_reference_lru(addresses):
    level, policy = small_level()
    reference = ReferenceLru(level.cfg.sets, level.cfg.ways)
    for addr in addresses:
        set_idx, way = level.probe(addr)
        hit = way is not None
        assert hit == reference.access(addr), addr
        if hit:
            level.record_hit(set_idx, way, False)
        else:
            level.record_miss()
            policy.fill(addr)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=300))
def test_index_consistency_under_churn(addresses):
    """The O(1) probe index never diverges from the array state."""
    level, policy = small_level()
    for addr in addresses:
        set_idx, way = level.probe(addr)
        if way is None:
            policy.fill(addr)
    for set_idx, line_set in enumerate(level.sets):
        index = level._index[set_idx]
        valid = {line.tag: w for w, line in enumerate(line_set)
                 if line.valid}
        assert index == valid


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1,
                max_size=300))
def test_occupancy_never_exceeds_capacity(addresses):
    level, policy = small_level()
    for addr in addresses:
        _, way = level.probe(addr)
        if way is None:
            policy.fill(addr)
    assert level.occupancy() <= 1.0
    assert len(level.resident_lines()) <= level.cfg.lines


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=250))
def test_energy_monotone_nondecreasing(addresses):
    """Every access strictly increases total charged energy."""
    level, policy = small_level()
    last = 0.0
    for addr in addresses:
        set_idx, way = level.probe(addr)
        if way is None:
            level.record_miss()
            policy.fill(addr)
        else:
            level.record_hit(set_idx, way, False)
        total = level.stats.materialize().energy.total_pj
        assert total > last
        last = total


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=150), min_size=5,
             max_size=200),
    st.integers(min_value=0, max_value=10_000),
)
def test_hits_plus_misses_equals_accesses(addresses, salt):
    level, policy = small_level()
    for addr in addresses:
        set_idx, way = level.probe(addr + salt)
        if way is None:
            level.record_miss()
            policy.fill(addr + salt)
        else:
            level.record_hit(set_idx, way, False)
    stats = level.stats
    assert stats.hits + stats.misses == len(addresses)
