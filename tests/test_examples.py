"""The example scripts must run end-to-end (at reduced scale)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, *args: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *args])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", "20000")
    assert "slip_abp" in out
    assert "L2 saved" in out


def test_design_your_own_policy(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "design_your_own_policy.py")
    # The Section 2 walkthrough: rperm should bypass, rorig go nearest.
    assert "EOU choice" in out
    assert "{}" in out


def test_topology_explorer(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "topology_explorer.py")
    assert "H-tree" in out
    assert "22nm" in out


def test_multiprogrammed_llc(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "multiprogrammed_llc.py",
                      "soplex", "mcf", "10000")
    assert "L3 energy savings" in out


def test_multiprogrammed_llc_rejects_unknown(monkeypatch, capsys):
    with pytest.raises(SystemExit):
        run_example(monkeypatch, capsys, "multiprogrammed_llc.py",
                    "nonsense", "mcf", "1000")


def test_phase_adaptation(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "phase_adaptation.py", "24000")
    assert "policy recomputations" in out
