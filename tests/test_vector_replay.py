"""Vectorized back-end replay: byte-identity, bypasses, store fixes.

The batched kernel (:mod:`repro.sim.vector_replay`) must be
*observationally absent*: every baseline-runtime-kind cell it replays
serializes byte-for-byte like the scalar replay (which PR 5 pinned to
the direct simulator), and everything it cannot represent falls back
to the scalar path. The equivalence suite here runs all three eligible
policies against both capture stores and both worker modes, plus a
hypothesis-style randomized sweep over trace/geometry space.
"""

import json
import os
import random

import pytest

from repro.experiments.parallel import RunRequest, run_jobs
from repro.sim.build import build_hierarchy
from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramConfig,
    SlipParams,
    SystemConfig,
)
from repro.sim.filtered import (
    front_end_fingerprint,
    run_trace_filtered,
)
from repro.sim.single_core import run_trace
from repro.sim.vector_replay import (
    eligible_kind,
    replay_capture_vector,
    vector_enabled,
)
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import (
    DiskCaptureStore,
    MemoryCaptureStore,
    fingerprint_key,
)

BASELINE_KIND = ("baseline", "nurapid", "lru_pea")
LENGTH = 2_500


def canonical(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def replay_pair(trace, policy, config, store, monkeypatch, **kwargs):
    """(scalar replay, vector replay) of the same warmed capture."""
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "0")
    # First run is capture-through (direct); the next two replay.
    run_trace_filtered(trace, policy, config=config, store=store,
                       **kwargs)
    scalar = run_trace_filtered(trace, policy, config=config,
                                store=store, **kwargs)
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
    vector = run_trace_filtered(trace, policy, config=config,
                                store=store, **kwargs)
    return scalar, vector


# ----------------------------------------------------------------------
# Byte-identical equivalence: policies x stores
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("policy", BASELINE_KIND)
    @pytest.mark.parametrize("store_kind", ("memory", "disk"))
    def test_vector_matches_scalar(self, policy, store_kind, tiny_system,
                                   tmp_path, monkeypatch):
        trace = make_trace("soplex", LENGTH)
        store = (MemoryCaptureStore() if store_kind == "memory"
                 else DiskCaptureStore(str(tmp_path)))
        scalar, vector = replay_pair(trace, policy, tiny_system, store,
                                     monkeypatch)
        assert canonical(vector) == canonical(scalar)

    @pytest.mark.parametrize("policy", BASELINE_KIND)
    def test_vector_matches_direct(self, policy, tiny_system,
                                   monkeypatch):
        """Transitivity check straight to the unfiltered simulator."""
        trace = make_trace("lbm", LENGTH)
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
        store = MemoryCaptureStore()
        run_trace_filtered(trace, policy, config=tiny_system,
                           store=store)
        vector = run_trace_filtered(trace, policy, config=tiny_system,
                                    store=store)
        assert canonical(vector) == canonical(
            run_trace(trace, policy, config=tiny_system))

    @pytest.mark.parametrize("policy", BASELINE_KIND)
    def test_vector_matches_scalar_nonzero_seed(self, policy,
                                                tiny_system,
                                                monkeypatch):
        """Seeded RNG coupling (lru_pea) and seeded traces line up."""
        trace = make_trace("soplex", LENGTH, seed=3)
        scalar, vector = replay_pair(trace, policy, tiny_system,
                                     MemoryCaptureStore(), monkeypatch,
                                     seed=5)
        assert canonical(vector) == canonical(scalar)


# ----------------------------------------------------------------------
# Worker parity: jobs=1 vs jobs=2 over the shared disk store
# ----------------------------------------------------------------------
@pytest.mark.multiproc
def test_jobs_parity_vector_vs_scalar(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path))
    grid = [RunRequest("soplex", policy, length=2_000)
            for policy in BASELINE_KIND]
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "0")
    run_jobs(grid, jobs=1)  # populate the store (capture-through)
    scalar = run_jobs(grid, jobs=1)
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
    serial = run_jobs(grid, jobs=1)
    parallel = run_jobs(grid, jobs=2)
    for base, ours, theirs in zip(scalar.results, serial.results,
                                  parallel.results):
        assert ours.result == base.result, base.request.label()
        assert theirs.result == base.result, base.request.label()


# ----------------------------------------------------------------------
# Randomized trace/geometry property test (hypothesis-style)
# ----------------------------------------------------------------------
def _random_level(rng, name, base_sets, base_lat, base_pj):
    ways = rng.choice((2, 4, 8))
    sets = rng.choice((base_sets, base_sets * 2))
    nsub = rng.randint(1, min(3, ways))
    # Random composition of `ways` into `nsub` positive parts.
    cuts = sorted(rng.sample(range(1, ways), nsub - 1)) if nsub > 1 else []
    bounds = [0] + cuts + [ways]
    parts = tuple(b - a for a, b in zip(bounds, bounds[1:]))
    if nsub == 1 and rng.random() < 0.5:
        parts = ()  # exercise the uniform-level path too
    return CacheLevelConfig(
        name=name,
        size_bytes=sets * ways * 64,
        ways=ways,
        latency_cycles=base_lat,
        access_energy_pj=base_pj,
        sublevel_ways=parts,
        sublevel_energy_pj=tuple(
            base_pj * (0.5 + 0.25 * i) for i in range(len(parts))),
        sublevel_latency=tuple(
            base_lat + i for i in range(len(parts))),
    )


def _random_system(rng) -> SystemConfig:
    l1 = CacheLevelConfig(name="L1", size_bytes=1024, ways=2,
                          latency_cycles=1, access_energy_pj=1.0)
    return SystemConfig(
        l1=l1,
        l2=_random_level(rng, "L2", base_sets=8, base_lat=3,
                         base_pj=10.0),
        l3=_random_level(rng, "L3", base_sets=32, base_lat=8,
                         base_pj=40.0),
        dram=DramConfig(latency_cycles=50, energy_pj_per_bit=2.0),
        slip=SlipParams(),
        core=CoreConfig(),
        tlb_entries=8,
    )


@pytest.mark.parametrize("case_seed", range(6))
def test_random_geometry_property(case_seed, monkeypatch):
    rng = random.Random(1_000 + case_seed)
    config = _random_system(rng)
    trace = make_trace(rng.choice(("soplex", "lbm", "mcf")),
                       rng.randint(900, 2_200),
                       seed=rng.randint(0, 99))
    policy = BASELINE_KIND[case_seed % len(BASELINE_KIND)]
    scalar, vector = replay_pair(trace, policy, config,
                                 MemoryCaptureStore(), monkeypatch,
                                 seed=rng.randint(0, 9))
    assert canonical(vector) == canonical(scalar)


# ----------------------------------------------------------------------
# Bypass matrix
# ----------------------------------------------------------------------
class TestBypass:
    def test_env_flag_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "0")
        assert not vector_enabled()
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "off")
        assert not vector_enabled()
        monkeypatch.delenv("REPRO_VECTOR_REPLAY")
        assert vector_enabled()

    @pytest.mark.parametrize("policy,kind", (
        ("baseline", "baseline"),
        ("nurapid", "nurapid"),
        ("lru_pea", "lru_pea"),
    ))
    def test_eligible_kinds(self, policy, kind, tiny_system):
        assert eligible_kind(
            build_hierarchy(tiny_system, policy)) == kind

    @pytest.mark.parametrize("policy", ("slip", "slip_abp"))
    def test_slip_kinds_bypass(self, policy, tiny_system):
        assert eligible_kind(
            build_hierarchy(tiny_system, policy)) is None

    @pytest.mark.parametrize("replacement", ("random", "drrip", "ship"))
    def test_non_lru_replacements_bypass(self, replacement, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline",
                                    replacement=replacement)
        assert eligible_kind(hierarchy) is None

    def test_replay_declines_ineligible_hierarchy(self, tiny_system,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
        store = MemoryCaptureStore()
        trace = make_trace("soplex", 1_200)
        run_trace_filtered(trace, "baseline", config=tiny_system,
                           store=store)
        key = fingerprint_key(
            front_end_fingerprint(trace, tiny_system, 0, 0.25))
        capture = store.get(key)
        assert capture is not None
        hierarchy = build_hierarchy(tiny_system, "slip")
        assert replay_capture_vector(hierarchy, capture) is False

    def test_non_lru_cells_still_replay_correctly(self, tiny_system,
                                                  monkeypatch):
        """A bypassed cell silently takes the scalar path, same bytes."""
        trace = make_trace("soplex", 1_500)
        scalar, vector = replay_pair(
            trace, "baseline", tiny_system, MemoryCaptureStore(),
            monkeypatch, replacement="random")
        assert canonical(vector) == canonical(scalar)
