"""SLIP phase-split replay kernel: byte-identity, declines, debugging.

Mirror of :mod:`test_vector_replay` for the slip-runtime kinds: every
slip/slip_abp cell the kernel (:mod:`repro.sim.vector_replay_slip`)
accepts must serialize byte-for-byte like the scalar ``_replay_slip``
walk of the same capture, across both capture stores, both worker
modes, randomized trace/geometry space, and the ``l3_abp_min_samples``
ablation. Everything it cannot represent must decline with a recorded
reason and fall back to the scalar path with identical bytes.
"""

import json
import os
import random

import pytest

from repro.experiments.parallel import RunRequest, run_jobs
from repro.sim.build import build_hierarchy
from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramConfig,
    SlipParams,
    SystemConfig,
)
from repro.sim.filtered import (
    front_end_fingerprint,
    run_trace_filtered,
)
from repro.sim.single_core import run_trace
from repro.sim.vector_replay_slip import (
    replay_capture_vector_slip,
    slip_eligible,
)
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import (
    DiskCaptureStore,
    MemoryCaptureStore,
    fingerprint_key,
)

SLIP_KIND = ("slip", "slip_abp")
LENGTH = 2_500


def canonical(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def replay_pair(trace, policy, config, store, monkeypatch, **kwargs):
    """(scalar replay, vector replay) of the same warmed capture."""
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "0")
    # First run is capture-through (direct); the next two replay.
    run_trace_filtered(trace, policy, config=config, store=store,
                       **kwargs)
    scalar = run_trace_filtered(trace, policy, config=config,
                                store=store, **kwargs)
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
    vector = run_trace_filtered(trace, policy, config=config,
                                store=store, **kwargs)
    return scalar, vector


def slip_capture(trace, config, store):
    """The policy-invariant capture the slip kernel replays."""
    key = fingerprint_key(
        front_end_fingerprint(trace, config, 0, 0.25))
    capture = store.get(key)
    assert capture is not None
    return capture


# ----------------------------------------------------------------------
# Byte-identical equivalence: ABP on/off x stores
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("policy", SLIP_KIND)
    @pytest.mark.parametrize("store_kind", ("memory", "disk"))
    def test_vector_matches_scalar(self, policy, store_kind, tiny_system,
                                   tmp_path, monkeypatch):
        trace = make_trace("soplex", LENGTH)
        store = (MemoryCaptureStore() if store_kind == "memory"
                 else DiskCaptureStore(str(tmp_path)))
        scalar, vector = replay_pair(trace, policy, tiny_system, store,
                                     monkeypatch)
        assert canonical(vector) == canonical(scalar)

    @pytest.mark.parametrize("policy", SLIP_KIND)
    def test_vector_matches_direct(self, policy, tiny_system,
                                   monkeypatch):
        """Transitivity check straight to the unfiltered simulator."""
        trace = make_trace("lbm", LENGTH)
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
        store = MemoryCaptureStore()
        run_trace_filtered(trace, policy, config=tiny_system,
                           store=store)
        vector = run_trace_filtered(trace, policy, config=tiny_system,
                                    store=store)
        assert canonical(vector) == canonical(
            run_trace(trace, policy, config=tiny_system))

    @pytest.mark.parametrize("policy", SLIP_KIND)
    def test_vector_matches_scalar_nonzero_seed(self, policy,
                                                tiny_system,
                                                monkeypatch):
        """Sampler RNG and seeded traces line up event for event."""
        trace = make_trace("soplex", LENGTH, seed=3)
        scalar, vector = replay_pair(trace, policy, tiny_system,
                                     MemoryCaptureStore(), monkeypatch,
                                     seed=5)
        assert canonical(vector) == canonical(scalar)

    @pytest.mark.parametrize("min_samples", (0, 10_000))
    def test_abp_min_samples_gate(self, min_samples, tiny_system,
                                  monkeypatch):
        """The EOU's ABP evidence floor steers fills identically.

        0 lets the all-bypass policy win from the first sample; a huge
        floor suppresses it entirely — both sides of the gate must
        replay byte-identically through the kernel.
        """
        config = SystemConfig(
            l1=tiny_system.l1, l2=tiny_system.l2, l3=tiny_system.l3,
            dram=tiny_system.dram,
            slip=SlipParams(l3_abp_min_samples=min_samples),
            core=tiny_system.core,
            tlb_entries=tiny_system.tlb_entries,
        )
        trace = make_trace("soplex", LENGTH)
        scalar, vector = replay_pair(trace, "slip_abp", config,
                                     MemoryCaptureStore(), monkeypatch)
        assert canonical(vector) == canonical(scalar)


# ----------------------------------------------------------------------
# Worker parity: jobs=1 vs jobs=2 over the shared disk store
# ----------------------------------------------------------------------
@pytest.mark.multiproc
def test_jobs_parity_vector_vs_scalar(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path))
    grid = [RunRequest("soplex", policy, length=2_000)
            for policy in SLIP_KIND]
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "0")
    run_jobs(grid, jobs=1)  # populate the store (capture-through)
    scalar = run_jobs(grid, jobs=1)
    monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
    serial = run_jobs(grid, jobs=1)
    parallel = run_jobs(grid, jobs=2)
    for base, ours, theirs in zip(scalar.results, serial.results,
                                  parallel.results):
        assert ours.result == base.result, base.request.label()
        assert theirs.result == base.result, base.request.label()


# ----------------------------------------------------------------------
# Randomized trace/geometry property test (hypothesis-style)
# ----------------------------------------------------------------------
def _random_level(rng, name, base_sets, base_lat, base_pj):
    ways = rng.choice((2, 4, 8))
    sets = rng.choice((base_sets, base_sets * 2))
    nsub = rng.randint(1, min(3, ways))
    # Random composition of `ways` into `nsub` positive parts.
    cuts = sorted(rng.sample(range(1, ways), nsub - 1)) if nsub > 1 else []
    bounds = [0] + cuts + [ways]
    parts = tuple(b - a for a, b in zip(bounds, bounds[1:]))
    if nsub == 1 and rng.random() < 0.5:
        parts = ()  # exercise the uniform-level path too
    return CacheLevelConfig(
        name=name,
        size_bytes=sets * ways * 64,
        ways=ways,
        latency_cycles=base_lat,
        access_energy_pj=base_pj,
        sublevel_ways=parts,
        sublevel_energy_pj=tuple(
            base_pj * (0.5 + 0.25 * i) for i in range(len(parts))),
        sublevel_latency=tuple(
            base_lat + i for i in range(len(parts))),
    )


def _random_system(rng) -> SystemConfig:
    l1 = CacheLevelConfig(name="L1", size_bytes=1024, ways=2,
                          latency_cycles=1, access_energy_pj=1.0)
    return SystemConfig(
        l1=l1,
        l2=_random_level(rng, "L2", base_sets=8, base_lat=3,
                         base_pj=10.0),
        l3=_random_level(rng, "L3", base_sets=32, base_lat=8,
                         base_pj=40.0),
        dram=DramConfig(latency_cycles=50, energy_pj_per_bit=2.0),
        slip=SlipParams(),
        core=CoreConfig(),
        tlb_entries=8,
    )


@pytest.mark.parametrize("case_seed", range(6))
def test_random_geometry_property(case_seed, monkeypatch):
    rng = random.Random(7_000 + case_seed)
    config = _random_system(rng)
    trace = make_trace(rng.choice(("soplex", "lbm", "mcf")),
                       rng.randint(900, 2_200),
                       seed=rng.randint(0, 99))
    policy = SLIP_KIND[case_seed % len(SLIP_KIND)]
    scalar, vector = replay_pair(trace, policy, config,
                                 MemoryCaptureStore(), monkeypatch,
                                 seed=rng.randint(0, 9))
    assert canonical(vector) == canonical(scalar)


# ----------------------------------------------------------------------
# Decline matrix: every ineligible shape records why it fell back
# ----------------------------------------------------------------------
class TestDecline:
    @pytest.mark.parametrize("policy", SLIP_KIND)
    def test_default_hierarchy_is_eligible(self, policy, tiny_system):
        hierarchy = build_hierarchy(tiny_system, policy)
        assert slip_eligible(hierarchy)

    def test_non_slip_kind_declines(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert not slip_eligible(hierarchy)
        assert hierarchy.vector_replay_decline == "kind:not-slip"

    def test_simcheck_declines(self, tiny_system, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        hierarchy = build_hierarchy(tiny_system, "slip")
        assert not slip_eligible(hierarchy)
        assert hierarchy.vector_replay_decline == "simcheck"

    def test_rd_block_mode_declines(self, tiny_system):
        config = SystemConfig(
            l1=tiny_system.l1, l2=tiny_system.l2, l3=tiny_system.l3,
            dram=tiny_system.dram,
            slip=SlipParams(rd_block_lines=8),
            core=tiny_system.core,
            tlb_entries=tiny_system.tlb_entries,
        )
        hierarchy = build_hierarchy(config, "slip")
        assert not slip_eligible(hierarchy)
        assert hierarchy.vector_replay_decline == "rd-block"

    def test_non_lru_replacement_declines(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "slip",
                                    replacement="random")
        assert not slip_eligible(hierarchy)
        assert (hierarchy.vector_replay_decline
                == "replacement:L2:RandomReplacement")

    def test_env_flag_declines(self, tiny_system, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "0")
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        run_trace_filtered(trace, "slip", config=tiny_system,
                           store=store)
        capture = slip_capture(trace, tiny_system, store)
        hierarchy = build_hierarchy(tiny_system, "slip")
        assert replay_capture_vector_slip(hierarchy, trace,
                                          capture) is False
        assert (hierarchy.vector_replay_decline
                == "env:REPRO_VECTOR_REPLAY")

    def test_successful_replay_clears_decline(self, tiny_system,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_REPLAY", "1")
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        run_trace_filtered(trace, "slip", config=tiny_system,
                           store=store)
        capture = slip_capture(trace, tiny_system, store)
        hierarchy = build_hierarchy(tiny_system, "slip")
        assert replay_capture_vector_slip(hierarchy, trace,
                                          capture) is True
        assert hierarchy.vector_replay_decline is None

    def test_debug_flag_echoes_reason_to_stderr(self, tiny_system,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VECTOR_REPLAY_DEBUG", "1")
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert not slip_eligible(hierarchy)
        captured = capsys.readouterr()
        assert "vector-replay: decline (kind:not-slip)" in captured.err
        assert captured.out == ""  # stdout stays deterministic

    @pytest.mark.parametrize("policy", SLIP_KIND)
    def test_declined_cells_still_replay_correctly(self, policy,
                                                   tiny_system,
                                                   monkeypatch):
        """A bypassed cell silently takes the scalar path, same bytes."""
        trace = make_trace("soplex", 1_500)
        scalar, vector = replay_pair(
            trace, policy, tiny_system, MemoryCaptureStore(),
            monkeypatch, replacement="random")
        assert canonical(vector) == canonical(scalar)


# ----------------------------------------------------------------------
# adopt_counts contract: exactly one insertion source
# ----------------------------------------------------------------------
def test_adopt_counts_requires_one_insertion_source(tiny_system):
    hierarchy = build_hierarchy(tiny_system, "slip")
    stats = hierarchy.l2.stats
    nsub = hierarchy.l2.cfg.num_sublevels
    kwargs = dict(
        demand_hits=0, demand_misses=0, metadata_hits=0,
        metadata_misses=0, hits_by_sublevel=[0] * nsub,
        insert_events=[0] * nsub, move_read_events=[0] * nsub,
        move_write_events=[0] * nsub, wb_in_events=[0] * nsub,
        wb_out_events=[0] * nsub, reuse_histogram={},
    )
    with pytest.raises(ValueError, match="exactly one"):
        stats.adopt_counts(default_insertions=1,
                           insertions_by_class={"default": 1}, **kwargs)
    with pytest.raises(ValueError, match="exactly one"):
        stats.adopt_counts(**kwargs)
