"""Parallel engine: serial/parallel equivalence, trace cache, CLI wiring.

The engine's contract is that worker count changes wall-clock only:
the same request grid must produce byte-identical results at ``jobs=1``
and ``jobs=N``. These tests run real (tiny) simulations across real
worker processes, so they also exercise request/result pickling.
"""

import numpy as np
import pytest

from repro.experiments.common import ExperimentSettings, SweepCache
from repro.experiments.parallel import (
    JOBS_ENV,
    MixRequest,
    RunRequest,
    derive_seed,
    execute_request,
    resolve_jobs,
    run_jobs,
    run_policy_grid,
)
from repro.experiments.runner import main, settings_from_args
from repro.sim.single_core import run_benchmark_suite, run_policy_sweep
from repro.workloads.benchmarks import (
    clear_trace_cache,
    make_trace,
    trace_cache_info,
)

LENGTH = 3_000
GRID_BENCHMARKS = ("soplex", "lbm")
GRID_POLICIES = ("baseline", "slip_abp")


def small_grid():
    return [
        RunRequest(benchmark, policy, length=LENGTH)
        for benchmark in GRID_BENCHMARKS
        for policy in GRID_POLICIES
    ]


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "6")
        assert resolve_jobs() == 6

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "6")
        assert resolve_jobs(3) == 3

    def test_floor_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "soplex", 1) == derive_seed(0, "soplex", 1)

    def test_varies_by_component(self):
        seeds = {derive_seed(0, b, "baseline") for b in GRID_BENCHMARKS}
        assert len(seeds) == len(GRID_BENCHMARKS)


class TestTraceCache:
    def test_same_object_across_calls(self):
        first = make_trace("soplex", LENGTH, 0)
        second = make_trace("soplex", LENGTH, 0)
        assert first is second

    def test_equal_arrays_after_clear(self):
        first = make_trace("lbm", LENGTH, 0)
        addresses = first.addresses.copy()
        is_write = first.is_write.copy()
        clear_trace_cache()
        second = make_trace("lbm", LENGTH, 0)
        assert np.array_equal(second.addresses, addresses)
        assert np.array_equal(second.is_write, is_write)

    def test_cache_counts_hits(self):
        clear_trace_cache()
        make_trace("soplex", LENGTH, 0)
        before = trace_cache_info().hits
        make_trace("soplex", LENGTH, 0)
        assert trace_cache_info().hits == before + 1

    def test_cached_arrays_read_only(self):
        trace = make_trace("soplex", LENGTH, 0)
        with pytest.raises(ValueError):
            trace.addresses[0] = 123

    def test_distinct_keys_distinct_traces(self):
        assert make_trace("soplex", LENGTH, 0) is not make_trace(
            "soplex", LENGTH, 1
        )

    def test_unknown_benchmark_still_raises(self):
        with pytest.raises(KeyError):
            make_trace("not-a-benchmark", LENGTH, 0)


class TestExecuteRequest:
    def test_job_result_fields(self):
        job = execute_request(RunRequest("soplex", "baseline",
                                         length=LENGTH))
        assert job.accesses == LENGTH
        assert job.result.policy == "baseline"
        assert job.result.benchmark == "soplex"
        assert job.wall_seconds > 0
        assert job.accesses_per_sec > 0


class TestSerialParallelEquivalence:
    def test_jobs1_vs_jobs4_identical_results(self):
        grid = small_grid()
        serial = run_jobs(grid, jobs=1)
        parallel = run_jobs(grid, jobs=4)
        assert len(parallel.results) == len(grid)
        for ours, theirs in zip(serial.results, parallel.results):
            assert ours.request == theirs.request
            # RunResult is a tree of eq-dataclasses; byte-identical
            # accounting means full equality, floats included.
            assert ours.result == theirs.result, ours.request.label()

    def test_parallel_uses_multiple_processes(self):
        report = run_jobs(small_grid(), jobs=4)
        assert len(report.worker_pids()) > 1

    def test_mix_requests_equivalent(self):
        requests = [
            MixRequest(("soplex", "lbm"), policy, length_per_core=2_000)
            for policy in GRID_POLICIES
        ]
        serial = run_jobs(requests, jobs=1)
        parallel = run_jobs(requests, jobs=2)
        for ours, theirs in zip(serial.results, parallel.results):
            assert ours.result == theirs.result

    def test_grid_helper_indexes_all_cells(self):
        results, report = run_policy_grid(
            GRID_BENCHMARKS, GRID_POLICIES, LENGTH, jobs=2
        )
        assert set(results) == {
            (b, p) for b in GRID_BENCHMARKS for p in GRID_POLICIES
        }
        assert len(report.results) == 4

    def test_sweep_helpers_match_each_other(self):
        swept = run_policy_sweep("soplex", GRID_POLICIES, length=LENGTH,
                                 jobs=2)
        suite = run_benchmark_suite(("soplex",), GRID_POLICIES,
                                    length=LENGTH, jobs=1)
        for policy in GRID_POLICIES:
            assert swept[policy] == suite[("soplex", policy)]


class TestSweepReport:
    def test_accounting(self):
        report = run_jobs(small_grid(), jobs=1)
        assert report.total_accesses == LENGTH * len(small_grid())
        assert report.busy_seconds == pytest.approx(
            sum(r.wall_seconds for r in report.results)
        )
        assert report.speedup > 0

    def test_lines_have_per_job_and_aggregate(self):
        report = run_jobs(small_grid(), jobs=1)
        lines = report.lines()
        assert len(lines) == len(small_grid()) + 1
        assert "acc/s" in lines[0]
        assert "speedup" in lines[-1]
        assert len(report.lines(per_job=False)) == 1


class TestSweepCachePrefetch:
    SETTINGS = ExperimentSettings(length=LENGTH, seed=0,
                                  benchmarks=GRID_BENCHMARKS)

    def test_prefetch_matches_lazy_results(self):
        lazy = SweepCache(self.SETTINGS)
        eager = SweepCache(self.SETTINGS)
        cells = [(b, p) for b in GRID_BENCHMARKS for p in GRID_POLICIES]
        report = eager.prefetch(cells, jobs=2)
        assert report is not None
        for benchmark, policy in cells:
            assert eager.result(benchmark, policy) == lazy.result(
                benchmark, policy
            )

    def test_prefetch_skips_cached_cells(self):
        cache = SweepCache(self.SETTINGS)
        cells = [("soplex", "baseline")]
        assert cache.prefetch(cells, jobs=1) is not None
        assert cache.prefetch(cells, jobs=1) is None


class TestRunnerCliJobs:
    def test_settings_from_args_honours_zero(self):
        import argparse

        args = argparse.Namespace(length=0, seed=0, jobs=None)
        settings = settings_from_args(args)
        assert settings.length == 0
        assert settings.seed == 0

    def test_settings_from_args_defaults(self):
        import argparse

        args = argparse.Namespace(length=None, seed=None, jobs=3)
        settings = settings_from_args(args)
        assert settings.length == ExperimentSettings().length
        assert settings.jobs == 3

    def test_cli_jobs_flag_prints_sweep_report(self, capsys):
        assert main(["fig01", "--length", str(LENGTH), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "[sweep]" in out
        assert "speedup" in out

    def test_cli_tables_identical_across_jobs(self):
        # Fresh interpreters (no shared in-process sweep cache), so the
        # jobs=1 and jobs=4 tables are computed independently and must
        # come out byte-identical once timing lines are stripped.
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(JOBS_ENV, None)

        def tables(jobs):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.experiments.runner",
                 "fig01", "--length", str(LENGTH), "--jobs", str(jobs)],
                capture_output=True, text=True, env=env, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            # Timing lines ([job ...], [sweep ...], [fig01 took ...])
            # legitimately differ; everything else must not.
            return [line for line in proc.stdout.splitlines()
                    if not line.startswith("[")]

        assert tables(1) == tables(4)
