"""Tests for the timing model and the stats containers."""

import pytest

from repro.mem.stats import DramStats, EnergyBreakdown, LevelStats
from repro.sim.build import build_hierarchy
from repro.sim.config import CoreConfig
from repro.sim.timing import TimingResult, execution_time


class TestEnergyBreakdown:
    def test_total_sums_components(self):
        e = EnergyBreakdown(read_pj=1, insertion_pj=2, movement_pj=3,
                            writeback_pj=4, metadata_pj=5,
                            movement_queue_pj=6, eou_pj=7)
        assert e.total_pj == 28

    def test_figure11_grouping(self):
        e = EnergyBreakdown(read_pj=10, insertion_pj=1, movement_pj=2,
                            writeback_pj=3)
        assert e.access_pj == 10
        assert e.move_total_pj == 6

    def test_merged_with(self):
        a = EnergyBreakdown(read_pj=1, movement_pj=2)
        b = EnergyBreakdown(read_pj=10, eou_pj=5)
        merged = a.merged_with(b)
        assert merged.read_pj == 11
        assert merged.movement_pj == 2
        assert merged.eou_pj == 5
        # Originals untouched.
        assert a.read_pj == 1 and b.read_pj == 10


class TestLevelStats:
    def test_defaults(self):
        stats = LevelStats("L2", num_sublevels=3)
        assert stats.hits_by_sublevel == [0, 0, 0]
        assert stats.accesses == 0
        assert stats.hit_rate() == 0.0

    def test_hit_rate(self):
        stats = LevelStats("L2", num_sublevels=3)
        stats.demand_hits = 3
        stats.demand_misses = 1
        assert stats.hit_rate() == 0.75

    def test_reuse_histogram_buckets(self):
        stats = LevelStats("L2")
        for hits in (0, 1, 2, 3, 10):
            stats.record_reuse_count(hits)
        assert stats.reuse_histogram == {"0": 1, "1": 1, "2": 1, ">2": 2}

    def test_sublevel_fractions_normalized(self):
        stats = LevelStats("L2", num_sublevels=3)
        stats.hits_by_sublevel = [1, 1, 2]
        stats.demand_hits = 4
        assert stats.sublevel_access_fractions() == [0.25, 0.25, 0.5]

    def test_sublevel_fractions_empty(self):
        stats = LevelStats("L2", num_sublevels=3)
        assert stats.sublevel_access_fractions() == [0.0, 0.0, 0.0]

    def test_insertion_class_keys_preseeded(self):
        stats = LevelStats("L2")
        assert set(stats.insertions_by_class) == {
            "abp", "partial_bypass", "default", "other",
        }


class TestDramStats:
    def test_accesses(self):
        stats = DramStats(reads=3, writes=2)
        assert stats.accesses == 5


class TestTimingModel:
    def test_ipc(self):
        t = TimingResult(instructions=100, exec_cycles=50,
                         stall_cycles=0, amat_cycles=1)
        assert t.ipc == 2.0

    def test_speedup_sign(self):
        fast = TimingResult(100, 50, 0, 1)
        slow = TimingResult(100, 100, 0, 1)
        assert fast.speedup_over(slow) == pytest.approx(1.0)   # 2x faster
        assert slow.speedup_over(fast) == pytest.approx(-0.5)

    def test_speedup_over_self_zero(self):
        t = TimingResult(100, 50, 0, 1)
        assert t.speedup_over(t) == 0.0

    def test_execution_time_components(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline")
        for addr in range(100):
            hierarchy.access(addr)
        core = CoreConfig(base_cpi=1.0, stall_exposure=0.5)
        timing = execution_time(hierarchy, instructions=300, core=core)
        assert timing.exec_cycles > 300  # base work plus stalls
        assert timing.stall_cycles > 0
        assert timing.amat_cycles > tiny_system.l1.latency_cycles

    def test_l1_hits_produce_no_stall(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline")
        hierarchy.access(0)
        hierarchy.reset_stats()
        for _ in range(50):
            hierarchy.access(0)  # all L1 hits
        core = CoreConfig(base_cpi=1.0, stall_exposure=0.5)
        timing = execution_time(hierarchy, instructions=150, core=core)
        assert timing.stall_cycles == 0
        assert timing.exec_cycles == pytest.approx(150.0)

    def test_more_memory_stalls_slow_execution(self, tiny_system):
        fast = build_hierarchy(tiny_system, "baseline")
        slow = build_hierarchy(tiny_system, "baseline")
        fast.access(0)
        for _ in range(20):
            fast.access(0)              # L1 hits
        for addr in range(0, 4096, 16):
            slow.access(addr)           # misses everywhere
        core = CoreConfig()
        t_fast = execution_time(fast, 100, core)
        t_slow = execution_time(slow, 100, core)
        assert t_slow.exec_cycles > t_fast.exec_cycles
