"""Tests for the SLIP placement controller (Sections 3.1, 4.3)."""

import pytest

from repro.core.controller import SlipPlacement
from repro.core.policy import Slip, SlipSpace
from repro.core.runtime import SlipRuntime
from repro.core.sampling import PageState
from repro.mem.cache import CacheLevel
from repro.mem.replacement import LruReplacement


@pytest.fixture
def space(tiny_system):
    cfg = tiny_system.l2
    return SlipSpace(
        cfg.sublevel_ways,
        tuple(cfg.sublevel_capacity_lines(i) for i in range(3)),
    )


@pytest.fixture
def runtime(tiny_system):
    return SlipRuntime(tiny_system, seed=0)


def make_controller(tiny_system, space, runtime):
    level = CacheLevel(tiny_system.l2, LruReplacement(),
                       track_metadata_energy=True)
    controller = SlipPlacement(space, runtime)
    controller.attach(level)
    return level, controller


def force_policy(runtime, space, page, slip, level_name="L2"):
    """Pin a stable page to a specific SLIP."""
    runtime.on_demand_access(page)
    entry = runtime.pages[page]
    entry.state = PageState.STABLE
    entry.policies[level_name] = space.id_of(slip)


class TestInsertion:
    def test_sampling_page_uses_default_chunk(self, tiny_system, space,
                                               runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        runtime.on_demand_access(0)
        controller.fill(0, page=0)
        assert level.stats.insertions_by_class["default"] == 1

    def test_stable_page_inserts_into_chunk0(self, tiny_system, space,
                                             runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        force_policy(runtime, space, 0, Slip(((0,), (1, 2))))
        controller.fill(0, page=0)
        _, way = level.probe(0)
        assert level.cfg.sublevel_of_way(way) == 0
        assert level.sets[level.set_index(0)][way].chunk_idx == 0
        assert level.stats.insertions_by_class["other"] == 1

    def test_abp_bypasses_level(self, tiny_system, space, runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        force_policy(runtime, space, 0, Slip(()))
        outcome = controller.fill(0, page=0)
        assert not outcome.inserted
        _, way = level.probe(0)
        assert way is None
        assert level.stats.bypasses == 1
        assert level.stats.insertions_by_class["abp"] == 1

    def test_abp_dirty_line_forwarded(self, tiny_system, space, runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        force_policy(runtime, space, 0, Slip(()))
        outcome = controller.fill(0, page=0, dirty=True)
        assert outcome.writebacks == [0]

    def test_metadata_lines_use_default(self, tiny_system, space, runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        controller.fill(12345, is_metadata=True)
        _, way = level.probe(12345)
        assert way is not None
        line = level.sets[level.set_index(12345)][way]
        assert line.policy_id == space.default_id

    def test_line_carries_policy_id(self, tiny_system, space, runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        slip = Slip(((0,), (1,)))
        force_policy(runtime, space, 0, slip)
        controller.fill(0, page=0)
        _, way = level.probe(0)
        line = level.sets[level.set_index(0)][way]
        assert line.policy_id == space.id_of(slip)


class TestCascade:
    def test_victim_moves_to_its_next_chunk(self, tiny_system, space,
                                            runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        slip = Slip(((0,), (1, 2)))
        force_policy(runtime, space, 0, slip)
        sets = level.cfg.sets
        controller.fill(0, page=0)          # into sublevel 0 (way 0)
        controller.fill(sets, page=0)       # same set: victim moves
        _, way0 = level.probe(0)
        assert way0 is not None
        assert level.cfg.sublevel_of_way(way0) in (1, 2)
        line = level.sets[0][way0]
        assert line.chunk_idx == 1
        assert level.stats.movements == 1

    def test_last_chunk_eviction_leaves_level(self, tiny_system, space,
                                              runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        slip = Slip(((0,),))  # single chunk: eviction leaves the level
        force_policy(runtime, space, 0, slip)
        sets = level.cfg.sets
        controller.fill(0, page=0)
        outcome = controller.fill(sets, page=0)
        _, way = level.probe(0)
        assert way is None
        assert outcome.inserted
        # The departure is fully accounted (Figure 1 histogram).
        assert sum(level.stats.reuse_histogram.values()) == 1

    def test_general_path_enumerates_clean_evictions(self, tiny_system,
                                                     space, runtime):
        """The primitive-built fill reports clean evictions upward.

        The fused fast path deliberately does not enumerate them (no
        consumer reads them — same contract as the fused baseline
        fill); the general path keeps the full report for SimCheck and
        any future inclusion upkeep.
        """
        level, controller = make_controller(tiny_system, space, runtime)
        level._fast_fill = False
        force_policy(runtime, space, 0, Slip(((0,),)))
        sets = level.cfg.sets
        controller.fill(0, page=0)
        outcome = controller.fill(sets, page=0)
        _, way = level.probe(0)
        assert way is None
        assert outcome.clean_evictions == [0]

    def test_dirty_eviction_produces_writeback(self, tiny_system, space,
                                               runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        force_policy(runtime, space, 0, Slip(((0,),)))
        sets = level.cfg.sets
        controller.fill(0, page=0, dirty=True)
        outcome = controller.fill(sets, page=0)
        assert outcome.writebacks == [0]

    def test_cascade_chain_through_three_chunks(self, tiny_system, space,
                                                runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        slip = Slip(((0,), (1,), (2,)))
        force_policy(runtime, space, 0, slip)
        sets = level.cfg.sets
        for i in range(3):
            controller.fill(i * sets, page=0)
        # addr 0 was displaced twice: chunk 0 -> 1 -> 2.
        _, way = level.probe(0)
        assert level.cfg.sublevel_of_way(way) == 2
        assert level.sets[0][way].chunk_idx == 2

    def test_cascade_terminates_under_pressure(self, tiny_system, space,
                                               runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        slip = Slip(((0,), (1,), (2,)))
        force_policy(runtime, space, 0, slip)
        # Hammer one set far beyond capacity; must not loop forever.
        sets = level.cfg.sets
        for i in range(100):
            controller.fill(i * sets, page=0)
        assert level.occupancy() <= 1.0


class TestOnHit:
    def test_hit_refreshes_timestamp(self, tiny_system, space, runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        runtime.on_demand_access(0)
        controller.fill(0, page=0)
        set_idx, way = level.probe(0)
        for _ in range(200):
            level.tick()
        controller.on_hit(set_idx, way)
        assert level.sets[set_idx][way].ts == level.timestamp_now()

    def test_hit_records_reuse_for_sampling_page(self, tiny_system, space,
                                                 runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        runtime.on_demand_access(0)
        assert runtime.is_sampling(0)
        controller.fill(0, page=0)
        set_idx, way = level.probe(0)
        controller.on_hit(set_idx, way)
        assert runtime.pages[0].distributions["L2"].total() >= 1

    def test_hit_on_stable_page_records_nothing(self, tiny_system, space,
                                                runtime):
        level, controller = make_controller(tiny_system, space, runtime)
        force_policy(runtime, space, 0, Slip(((0, 1, 2),)))
        controller.fill(0, page=0)
        set_idx, way = level.probe(0)
        before = runtime.pages[0].distributions["L2"].total()
        controller.on_hit(set_idx, way)
        assert runtime.pages[0].distributions["L2"].total() == before

    def test_no_movement_on_hit(self, tiny_system, space, runtime):
        """SLIP never promotes on hit — that is the energy thesis."""
        level, controller = make_controller(tiny_system, space, runtime)
        force_policy(runtime, space, 0, Slip(((0,), (1, 2))))
        controller.fill(0, page=0)
        set_idx, way = level.probe(0)
        for _ in range(10):
            controller.on_hit(set_idx, way)
        assert level.stats.movements == 0
        _, same_way = level.probe(0)
        assert same_way == way


class TestAttachValidation:
    def test_sublevel_mismatch_rejected(self, tiny_system, runtime):
        wrong_space = SlipSpace((2, 2), (32, 32))
        controller = SlipPlacement(wrong_space, runtime)
        with pytest.raises(ValueError):
            controller.attach(
                CacheLevel(tiny_system.l2, LruReplacement())
            )
