"""Tests for the simulation drivers and result roll-ups."""

import pytest

from repro.sim.build import POLICY_NAMES, build_hierarchy
from repro.sim.single_core import run_benchmark, run_policy_sweep, run_trace
from repro.workloads.benchmarks import make_trace

LENGTH = 12_000


class TestBuildHierarchy:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_all_policies_build(self, tiny_system, policy):
        hierarchy = build_hierarchy(tiny_system, policy)
        hierarchy.access(0)
        assert hierarchy.counters.demand_accesses == 1

    def test_unknown_policy_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            build_hierarchy(tiny_system, "magic")

    def test_slip_tracks_metadata_energy(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "slip_abp")
        assert hierarchy.l2.track_metadata_energy

    def test_baseline_no_metadata_energy(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert not hierarchy.l2.track_metadata_energy

    def test_slip_runtime_wired(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "slip")
        assert hierarchy.runtime.slip_enabled
        assert not hierarchy.runtime.allow_abp

    def test_slip_abp_allows_bypass(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "slip_abp")
        assert hierarchy.runtime.allow_abp


class TestRunTrace:
    def test_result_fields_populated(self, tiny_system):
        trace = make_trace("soplex", LENGTH)
        result = run_trace(trace, "baseline", config=tiny_system)
        assert result.policy == "baseline"
        assert result.benchmark == "soplex"
        assert result.l2.accesses > 0
        assert result.dram.reads > 0
        assert result.timing.exec_cycles > 0

    def test_warmup_excluded_from_stats(self, tiny_system):
        trace = make_trace("soplex", LENGTH)
        full = run_trace(trace, "baseline", config=tiny_system,
                         warmup_fraction=0.0)
        warmed = run_trace(trace, "baseline", config=tiny_system,
                           warmup_fraction=0.5)
        assert warmed.counters.demand_accesses < (
            full.counters.demand_accesses
        )

    def test_deterministic(self, tiny_system):
        trace = make_trace("soplex", LENGTH)
        a = run_trace(trace, "slip_abp", config=tiny_system, seed=1)
        b = run_trace(trace, "slip_abp", config=tiny_system, seed=1)
        assert a.level_energy_pj("L2") == b.level_energy_pj("L2")
        assert a.dram.accesses == b.dram.accesses

    def test_eou_energy_reported_for_slip(self, tiny_system):
        trace = make_trace("soplex", LENGTH)
        result = run_trace(trace, "slip_abp", config=tiny_system)
        assert "L2" in result.eou_energy_pj

    def test_run_benchmark_wrapper(self, tiny_system):
        result = run_benchmark("lbm", "baseline", length=5000,
                               config=tiny_system)
        assert result.benchmark == "lbm"


class TestPolicyComparisons:
    """The paper's ordering on the scaled-down system."""

    @pytest.fixture(scope="class")
    def sweep(self):
        # Paper-scale config: orderings are the point of this class.
        return run_policy_sweep(
            "soplex",
            ["baseline", "nurapid", "lru_pea", "slip_abp"],
            length=100_000,
        )

    def test_nurapid_increases_energy(self, sweep):
        base = sweep["baseline"]
        assert sweep["nurapid"].energy_savings_over(base, "L2") < -0.2
        assert sweep["nurapid"].energy_savings_over(base, "L3") < -0.2

    def test_lru_pea_increases_energy(self, sweep):
        base = sweep["baseline"]
        assert sweep["lru_pea"].energy_savings_over(base, "L2") < -0.1

    def test_slip_abp_saves_energy(self, sweep):
        base = sweep["baseline"]
        assert sweep["slip_abp"].energy_savings_over(base, "L2") > 0.0
        assert sweep["slip_abp"].energy_savings_over(base, "L3") > -0.05

    def test_nuca_policies_move_lines(self, sweep):
        assert sweep["nurapid"].l2.movements > 0
        assert sweep["lru_pea"].l2.movements > 0

    def test_slip_shifts_hits_to_sublevel0(self, sweep):
        base_frac = sweep["baseline"].l2.sublevel_access_fractions()[0]
        slip_frac = sweep["slip_abp"].l2.sublevel_access_fractions()[0]
        assert slip_frac > base_frac

    def test_nuca_promotions_concentrate_sublevel0(self, sweep):
        base_frac = sweep["baseline"].l2.sublevel_access_fractions()[0]
        nurapid_frac = sweep["nurapid"].l2.sublevel_access_fractions()[0]
        assert nurapid_frac > base_frac

    def test_slip_abp_bypasses(self, sweep):
        assert sweep["slip_abp"].l2.bypasses > 0

    def test_speedups_within_few_percent(self, sweep):
        base = sweep["baseline"]
        for name in ("nurapid", "lru_pea", "slip_abp"):
            assert abs(sweep[name].speedup_over(base)) < 0.08, name


class TestResultMethods:
    @pytest.fixture(scope="class")
    def pair(self):
        sweep = run_policy_sweep("sphinx3", ["baseline", "slip_abp"],
                                 length=30_000)
        return sweep["baseline"], sweep["slip_abp"]

    def test_full_system_energy_includes_core(self, pair):
        base, _ = pair
        cache_total = sum(
            base.level_energy_pj(lvl) for lvl in ("L1", "L2", "L3")
        )
        assert base.full_system_energy_pj() > cache_total

    def test_full_system_savings_small_positive_shape(self, pair):
        base, slip = pair
        saving = slip.full_system_savings_over(base)
        assert -0.05 < saving < 0.2

    def test_relative_misses_near_one(self, pair):
        base, slip = pair
        assert 0.5 < slip.relative_misses(base, "L2") < 1.5

    def test_miss_traffic_keys(self, pair):
        base, _ = pair
        traffic = base.miss_traffic("L2")
        assert set(traffic) == {"demand", "metadata"}

    def test_self_comparison_is_zero(self, pair):
        base, _ = pair
        assert base.energy_savings_over(base, "L2") == 0.0
        assert base.speedup_over(base) == 0.0
        assert base.relative_dram_traffic(base) == 1.0
