"""slip-audit: the real src/ tree must audit clean, and deleting any
single counter-update line from a registered twin (fused or reference
side) must make the drift rules fire on the mutated copy. Fixture
modules cover the gate-registration, taint and pragma rules, and the
CLI must use the documented exit codes."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.audit import (
    AUDIT_RULES,
    TWIN_REGISTRY,
    audit_paths,
    audit_sources,
    explain_pair,
    main,
    parse_annotations,
)
from repro.analysis.lint import discover_files, read_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

FIXTURE = "src/repro/sim/fixture.py"


def _src_sources():
    sources = {}
    for path in discover_files([SRC_DIR]):
        source, failure = read_source(path)
        assert failure is None, failure
        sources[path] = source
    return sources


def _audit_fixture(source):
    findings, _ = audit_sources({FIXTURE: textwrap.dedent(source)})
    return findings


# ----------------------------------------------------------------------
# The shipped tree is the first fixture: it must be clean.
# ----------------------------------------------------------------------
def test_src_tree_audits_clean():
    findings, files_scanned = audit_paths([SRC_DIR])
    assert findings == []
    assert files_scanned > 0


def test_registry_covers_the_documented_pairs():
    assert {p.pair_id for p in TWIN_REGISTRY} == {
        "baseline-fill", "slip-fill", "l1-access", "below-l1",
        "wb-l2", "wb-l3", "eou-optimize", "vector-replay",
        "slip-vector-replay", "vector-frontend", "replay-plan",
    }


# ----------------------------------------------------------------------
# Mutation sensitivity (SLIP010/SLIP011): delete one real counter
# line, audit the mutated copy, expect drift.
# ----------------------------------------------------------------------
MUTATIONS = [
    # (file suffix, unique line fragment to delete)
    ("policies/baseline.py",
     'level.stats.insertions_by_class["default"] += 1'),   # _fill_general
    ("policies/baseline.py", "stats.insertions += 1"),      # fused fill
    ("policies/baseline.py", "stats.writebacks_out += 1"),
    ("core/controller.py", "stats.bypasses += 1"),          # fused SLIP fill
    ("core/controller.py", "stats.insertions_by_class["),   # 1 of 2 sites
    ("mem/hierarchy.py", "stats.demand_hits += 1"),         # fused L1 hit
    ("mem/hierarchy.py", "stats.writebacks_in += 1"),       # fused wb
    ("core/eou.py", "stats.optimizations += 1"),            # EOU ledger
    ("sim/vector_replay.py", "counters.total_latency_cycles +="),
]


@pytest.mark.parametrize("suffix,needle", MUTATIONS,
                         ids=[f"{s}:{n[:30]}" for s, n in MUTATIONS])
def test_deleting_counter_line_fires_drift(suffix, needle):
    sources = _src_sources()
    path = next(p for p in sources if p.endswith(suffix))
    lines = sources[path].splitlines()
    hits = [i for i, line in enumerate(lines) if needle in line]
    assert hits, f"needle not found in {suffix}: {needle!r}"
    sources[path] = "\n".join(lines[:hits[0]] + lines[hits[0] + 1:])

    findings, _ = audit_sources(sources)
    drift = [f for f in findings if f.code in ("SLIP010", "SLIP011")]
    assert drift, f"deleting {needle!r} from {suffix} went unnoticed"
    assert all(f.path == path for f in drift if f.path.endswith(suffix))


def test_duplicating_counter_line_fires_site_count():
    # The inverse edit — bumping a counter twice — leaves the write
    # *set* unchanged; only the pinned site counts can see it.
    sources = _src_sources()
    path = next(p for p in sources if p.endswith("core/eou.py"))
    lines = sources[path].splitlines()
    idx = next(i for i, line in enumerate(lines)
               if "stats.optimizations += 1" in line)
    sources[path] = "\n".join(lines[:idx + 1] + [lines[idx]]
                              + lines[idx + 1:])
    findings, _ = audit_sources(sources)
    assert any(f.code == "SLIP011"
               and "2 direct write site(s)" in f.message
               for f in findings)


# ----------------------------------------------------------------------
# SLIP012: unregistered fast gates and annotation discipline
# ----------------------------------------------------------------------
def test_slip012_unregistered_gate_over_counter_writes():
    findings = _audit_fixture("""
        class Thing:
            def bump(self):
                if self._fast_path:
                    self.stats.hits += 1
                else:
                    self.record_hit()
    """)
    assert [f.code for f in findings] == ["SLIP012"]
    assert "not the registered fast path" in findings[0].message


def test_slip012_quiet_on_gate_without_counter_writes():
    findings = _audit_fixture("""
        class Thing:
            def choose(self):
                if self._fast_path:
                    return self.quick()
                return self.slow()
    """)
    assert findings == []


def test_slip012_annotation_for_unknown_pair():
    findings = _audit_fixture("""
        class Thing:
            # slip-audit: twin=not-a-pair role=fast
            def bump(self):
                pass
    """)
    assert [f.code for f in findings] == ["SLIP012"]
    assert "not in TWIN_REGISTRY" in findings[0].message


def test_slip012_annotation_role_must_match_registry():
    findings = _audit_fixture("""
        class Thing:
            # slip-audit: twin=baseline-fill role=fast
            def bump(self):
                pass
    """)
    assert [f.code for f in findings] == ["SLIP012"]
    assert "registry names" in findings[0].message


def test_parse_annotations_reads_real_twin_markers():
    path = os.path.join(SRC_DIR, "repro", "policies", "baseline.py")
    source, failure = read_source(path)
    assert failure is None
    found = {(pair, role) for _, pair, role in parse_annotations(source)}
    assert ("baseline-fill", "fast") in found
    assert ("baseline-fill", "ref") in found


def test_removing_annotation_fires_slip012():
    sources = _src_sources()
    path = next(p for p in sources if p.endswith("core/eou.py"))
    sources[path] = sources[path].replace(
        "# slip-audit: twin=eou-optimize role=fast", "# (removed)")
    findings, _ = audit_sources(sources)
    assert any(f.code == "SLIP012" and "carries no" in f.message
               for f in findings)


# ----------------------------------------------------------------------
# SLIP013 / SLIP014: determinism taint into published stats
# ----------------------------------------------------------------------
def test_slip013_wall_clock_into_stats():
    findings = _audit_fixture("""
        import time

        class Probe:
            def tick(self):
                self.stats.last_seen = time.time()
    """)
    assert [f.code for f in findings] == ["SLIP013"]
    assert "time.time" in findings[0].message


def test_slip014_counter_guarded_by_environment():
    findings = _audit_fixture("""
        import os

        class Probe:
            def cond(self):
                if os.getenv("FAST"):
                    self.stats.hits += 1
    """)
    assert [f.code for f in findings] == ["SLIP014"]
    assert "run-order-dependent" in findings[0].message


def test_taint_killed_by_clean_reassignment():
    # Flow sensitivity: the tainted value never reaches the counter.
    findings = _audit_fixture("""
        import time

        class Probe:
            def killed(self):
                t = time.time()
                t = 0
                self.stats.safe = t
    """)
    assert findings == []


def test_slip013_unseeded_rng_into_stats():
    findings = _audit_fixture("""
        import random

        class Probe:
            def roll(self):
                rng = random.Random()
                self.stats.sample = rng.random()
    """)
    assert any(f.code == "SLIP013" for f in findings)


# ----------------------------------------------------------------------
# Pragmas are tool-scoped
# ----------------------------------------------------------------------
TAINTED = """
    import time

    class Probe:
        def tick(self):
            self.stats.last_seen = time.time(){pragma}
"""


def test_slip_audit_pragma_suppresses():
    findings = _audit_fixture(
        TAINTED.format(pragma="  # slip-audit: disable=SLIP013"))
    assert findings == []


def test_slip_lint_pragma_does_not_suppress_audit_findings():
    findings = _audit_fixture(
        TAINTED.format(pragma="  # slip-lint: disable=SLIP013"))
    assert [f.code for f in findings] == ["SLIP013"]


# ----------------------------------------------------------------------
# SLIP999 stays on regardless of --select
# ----------------------------------------------------------------------
def test_syntax_error_reported_even_under_select():
    findings, _ = audit_sources({FIXTURE: "def broken(:\n"},
                                select=["SLIP013"])
    assert [f.code for f in findings] == ["SLIP999"]


# ----------------------------------------------------------------------
# --explain-pair
# ----------------------------------------------------------------------
def test_explain_pair_dumps_both_side_sets():
    text = explain_pair("baseline-fill", [SRC_DIR])
    assert "shared (fast & ref)" in text
    assert "stats.insertions" in text
    assert "ref direct site counts" in text


def test_explain_pair_unknown_id_lists_known_pairs():
    text = explain_pair("nope", [SRC_DIR])
    assert "unknown pair" in text
    assert "baseline-fill" in text


# ----------------------------------------------------------------------
# CLI exit codes and formats
# ----------------------------------------------------------------------
def test_cli_clean_tree_exits_zero(capsys):
    assert main([SRC_DIR]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_findings_exit_one(tmp_path, capsys):
    bad = tmp_path / "repro_fixture.py"
    bad.write_text("import time\n\nclass P:\n"
                   "    def t(self):\n"
                   "        self.stats.x = time.time()\n")
    # Outside the audited packages taint is skipped, so point the
    # in-memory API at a package path instead for the finding itself;
    # the CLI path check here uses a syntax error, which is scope-free.
    bad.write_text("def broken(:\n")
    assert main([str(bad)]) == 1
    assert "SLIP999" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    assert main(["--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "slip-audit"
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "SLIP999"


def test_cli_no_paths_exits_two(capsys):
    assert main([]) == 2
    assert "no paths" in capsys.readouterr().err


def test_cli_missing_path_exits_two(capsys):
    assert main(["definitely/not/here"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_unknown_select_exits_two(capsys):
    assert main(["--select", "SLIP042", SRC_DIR]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_list_rules_catalogs_every_audit_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in AUDIT_RULES:
        assert rule.code in out
    assert "SLIP999" in out
    assert "always on" in out


def test_cli_explain_pair(capsys):
    assert main(["--explain-pair", "wb-l2", SRC_DIR]) == 0
    assert "wb-l2" in capsys.readouterr().out


def test_module_invocation_matches_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.audit", SRC_DIR],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": SRC_DIR}, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stderr
    assert "clean" in proc.stdout
