"""Cross-module integration invariants on full simulations."""

import pytest

from repro.sim.build import POLICY_NAMES, build_hierarchy
from repro.sim.single_core import run_trace
from repro.workloads.benchmarks import make_trace

# Long enough for SLIP page policies to reach steady state; the module
# fixture is computed once and shared by every test below.
LENGTH = 60_000


@pytest.fixture(scope="module")
def results(request):
    trace = make_trace("soplex", LENGTH)
    from repro.sim.config import default_system

    config = default_system()
    return {
        policy: run_trace(trace, policy, config=config,
                          warmup_fraction=0.3)
        for policy in POLICY_NAMES
    }


class TestAccountingInvariants:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_hits_misses_consistent(self, results, policy):
        r = results[policy]
        for stats in (r.l1, r.l2, r.l3):
            assert stats.hits + stats.misses == stats.accesses
            assert stats.demand_hits <= stats.hits

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_energy_components_nonnegative(self, results, policy):
        r = results[policy]
        for stats in (r.l1, r.l2, r.l3):
            e = stats.energy
            for field in ("read_pj", "insertion_pj", "movement_pj",
                          "writeback_pj", "metadata_pj"):
                assert getattr(e, field) >= 0.0

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_total_is_sum_of_parts(self, results, policy):
        r = results[policy]
        e = r.l2.energy
        assert e.total_pj == pytest.approx(
            e.read_pj + e.insertion_pj + e.movement_pj + e.writeback_pj
            + e.metadata_pj + e.movement_queue_pj + e.eou_pj
        )

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_sublevel_hits_sum_to_hits(self, results, policy):
        r = results[policy]
        for stats in (r.l2, r.l3):
            assert sum(stats.hits_by_sublevel) == stats.hits

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_dram_demand_reads_bounded_by_l3_misses(self, results, policy):
        r = results[policy]
        assert r.counters.dram_demand_reads <= r.l3.demand_misses

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_insertions_match_class_counts(self, results, policy):
        r = results[policy]
        for stats in (r.l2, r.l3):
            classified = sum(stats.insertions_by_class.values())
            assert classified == stats.insertions + stats.bypasses

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_reuse_histogram_covers_departures(self, results, policy):
        r = results[policy]
        histogram_total = sum(r.l3.reuse_histogram.values())
        assert histogram_total >= r.l3.insertions * 0.5

    def test_movement_only_for_nuca_and_slip(self, results):
        assert results["baseline"].l2.movements == 0
        assert results["nurapid"].l2.movements > 0

    def test_same_demand_access_count_across_policies(self, results):
        counts = {
            p: results[p].counters.demand_accesses for p in POLICY_NAMES
        }
        assert len(set(counts.values())) == 1


class TestEnergyShapeAcrossPolicies:
    def test_paper_ordering_l2(self, results):
        """NuRAPID and LRU-PEA > baseline > SLIP variants (L2 energy)."""
        energy = {
            p: results[p].level_energy_pj("L2") for p in POLICY_NAMES
        }
        assert energy["nurapid"] > energy["baseline"]
        assert energy["lru_pea"] > energy["baseline"]
        assert energy["slip_abp"] < energy["baseline"]

    def test_abp_saves_at_least_as_much_as_slip_l2(self, results):
        base = results["baseline"]
        slip = results["slip"].energy_savings_over(base, "L2")
        abp = results["slip_abp"].energy_savings_over(base, "L2")
        assert abp >= slip - 0.03

    def test_movement_dominates_nuca_energy(self, results):
        """Figure 11's claim: NUCA movement energy exceeds access."""
        stats = results["nurapid"].l2
        movement = stats.energy.move_total_pj
        assert movement > stats.energy.read_pj


class TestHierarchyStateConsistency:
    def test_no_duplicate_tags_within_set(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "slip_abp")
        trace = make_trace("mcf", 8_000)
        for addr, wr in zip(trace.addresses.tolist()[:8000],
                            trace.is_write.tolist()[:8000]):
            hierarchy.access(addr, wr)
        for level in hierarchy.levels:
            for line_set in level.sets:
                tags = [l.tag for l in line_set if l.valid]
                assert len(tags) == len(set(tags))

    def test_lines_map_to_correct_set(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "nurapid")
        trace = make_trace("gcc", 6_000)
        for addr in trace.addresses.tolist():
            hierarchy.access(addr)
        for level in hierarchy.levels:
            for set_idx, line_set in enumerate(level.sets):
                for line in line_set:
                    if line.valid:
                        assert level.set_index(line.tag) == set_idx
