"""The reporters shared by slip-lint and slip-audit: text and JSON
rendering, stable machine output, and the rule catalog."""

import json

from repro.analysis.reporting import (
    render_json,
    render_rule_catalog,
    render_text,
)
from repro.analysis.rules import RULES, Finding
from repro.analysis.audit import AUDIT_RULES

FINDINGS = [
    Finding(path="src/a.py", line=3, col=4, code="SLIP002",
            message="wall clock in simulator"),
    Finding(path="src/a.py", line=9, col=0, code="SLIP002",
            message="wall clock in simulator"),
    Finding(path="src/b.py", line=1, col=0, code="SLIP999",
            message="syntax error: unexpected EOF"),
]


# ----------------------------------------------------------------------
# render_text
# ----------------------------------------------------------------------
def test_render_text_one_line_per_finding_plus_summary():
    out = render_text(FINDINGS, files_scanned=7)
    lines = out.splitlines()
    assert len(lines) == len(FINDINGS) + 1
    assert lines[0] == FINDINGS[0].render()
    assert lines[-1] == ("slip-lint: 3 finding(s) in 7 file(s) scanned "
                         "(SLIP002 x2, SLIP999 x1)")


def test_render_text_clean_summary_carries_files_scanned():
    assert render_text([], files_scanned=42) == \
        "slip-lint: clean (42 file(s) scanned)"


def test_render_text_tool_parameter_brands_the_summary():
    out = render_text([], files_scanned=1, tool="slip-audit")
    assert out.startswith("slip-audit:")


# ----------------------------------------------------------------------
# render_json
# ----------------------------------------------------------------------
def test_render_json_payload_fields():
    payload = json.loads(render_json(FINDINGS, files_scanned=7))
    assert payload["tool"] == "slip-lint"
    assert payload["files_scanned"] == 7
    assert payload["count"] == 3
    assert payload["findings"][0] == {
        "path": "src/a.py", "line": 3, "col": 4, "code": "SLIP002",
        "message": "wall clock in simulator",
    }


def test_render_json_key_order_is_stable():
    # sort_keys guarantees byte-identical output across runs and
    # Python versions — CI diffs the raw text.
    out = render_json(FINDINGS, files_scanned=7)
    assert out == render_json(list(FINDINGS), files_scanned=7)
    top_keys = [line.split('"')[1] for line in out.splitlines()
                if line.startswith('  "')]
    assert top_keys == sorted(top_keys)
    finding_keys = [line.split('"')[1] for line in out.splitlines()
                    if line.startswith('      "')]
    per_object = finding_keys[:5]
    assert per_object == sorted(per_object)


def test_render_json_tool_parameter():
    payload = json.loads(render_json([], 0, tool="slip-audit"))
    assert payload["tool"] == "slip-audit"
    assert payload["findings"] == []


# ----------------------------------------------------------------------
# render_rule_catalog
# ----------------------------------------------------------------------
def test_catalog_lists_every_lint_rule_and_slip999():
    out = render_rule_catalog()
    for rule in RULES:
        assert f"{rule.code}  {rule.name}:" in out
    assert "SLIP999" in out
    assert "always on" in out


def test_catalog_accepts_audit_rules():
    out = render_rule_catalog(AUDIT_RULES)
    for rule in AUDIT_RULES:
        assert f"{rule.code}  {rule.name}:" in out
    # SLIP999 is appended for either tool's catalog.
    assert out.splitlines()[-1].startswith("SLIP999")
