"""slip-lint: every rule must trigger on its fixture and stay quiet on
the corrected form, the pragma escape hatch must work, the CLI must use
the documented exit codes — and the real src/ tree must lint clean."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import lint_source, module_parts_of
from repro.analysis.lint import discover_files, lint_paths, main
from repro.analysis.rules import RULES

SIM_MODULE = ("repro", "mem", "fixture")
EXPERIMENTS_MODULE = ("repro", "experiments", "fixture")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")


def codes(source, module=SIM_MODULE):
    source = textwrap.dedent(source)
    return [f.code for f in lint_source(source, path="fixture.py",
                                        module=module)]


# ----------------------------------------------------------------------
# SLIP001 unseeded RNG
# ----------------------------------------------------------------------
def test_slip001_triggers_on_unseeded_random():
    assert "SLIP001" in codes("""
        import random
        rng = random.Random()
    """)


def test_slip001_triggers_on_unseeded_default_rng():
    assert "SLIP001" in codes("""
        import numpy as np
        rng = np.random.default_rng()
    """)


def test_slip001_quiet_on_seeded_rng():
    found = codes("""
        import random
        import numpy as np
        a = random.Random(42)
        b = np.random.default_rng(seed=7)
    """)
    assert "SLIP001" not in found


# ----------------------------------------------------------------------
# SLIP002 wall-clock in simulator packages
# ----------------------------------------------------------------------
def test_slip002_triggers_in_sim_package():
    assert "SLIP002" in codes("""
        import time
        started = time.time()
    """)


def test_slip002_triggers_on_datetime_now():
    assert "SLIP002" in codes("""
        import datetime
        stamp = datetime.datetime.now()
    """)


def test_slip002_quiet_in_experiments_package():
    found = codes("""
        import time
        started = time.perf_counter()
    """, module=EXPERIMENTS_MODULE)
    assert "SLIP002" not in found


# ----------------------------------------------------------------------
# SLIP003 unordered iteration
# ----------------------------------------------------------------------
def test_slip003_triggers_on_set_iteration():
    assert "SLIP003" in codes("""
        def pick_victim(ways):
            for way in set(ways):
                return way
    """)


def test_slip003_triggers_on_keys_iteration():
    assert "SLIP003" in codes("""
        def enumerate_policies(table):
            return [k for k in table.keys()]
    """)


def test_slip003_quiet_on_sorted_and_plain_dict():
    found = codes("""
        def pick_victim(ways, table):
            for way in sorted(set(ways)):
                pass
            for key in table:
                pass
    """)
    assert "SLIP003" not in found


def test_slip003_quiet_outside_policy_packages():
    found = codes("""
        def dedupe(names):
            for name in set(names):
                yield name
    """, module=EXPERIMENTS_MODULE)
    assert "SLIP003" not in found


# ----------------------------------------------------------------------
# SLIP004 mutable default arguments
# ----------------------------------------------------------------------
def test_slip004_triggers_on_list_default():
    assert "SLIP004" in codes("""
        def record(events=[]):
            events.append(1)
    """)


def test_slip004_triggers_on_dict_call_default():
    assert "SLIP004" in codes("""
        def record(*, table=dict()):
            pass
    """)


def test_slip004_quiet_on_none_default():
    assert "SLIP004" not in codes("""
        def record(events=None, size=0, name="x"):
            events = events or []
    """)


# ----------------------------------------------------------------------
# SLIP005 float sum on energy quantities
# ----------------------------------------------------------------------
def test_slip005_triggers_on_pj_sum():
    assert "SLIP005" in codes("""
        def total(stats):
            return sum(s.energy.read_pj for s in stats)
    """)


def test_slip005_triggers_inside_energy_function():
    assert "SLIP005" in codes("""
        def level_energy_pj(values):
            return sum(values)
    """)


def test_slip005_quiet_on_fsum_and_plain_counts():
    found = codes("""
        import math

        def total_pj_exact(stats):
            return math.fsum(s.read_pj for s in stats)

        def total_hits(stats):
            return sum(s.hits for s in stats)
    """)
    assert "SLIP005" not in found


# ----------------------------------------------------------------------
# SLIP006 missing __slots__ on record classes
# ----------------------------------------------------------------------
RECORD_CLASS = """
    class LineMeta:
        def __init__(self):
            self.tag = -1
            self.dirty = False
            self.ts = 0
            self.hits = 0
"""


def test_slip006_triggers_on_unslotted_record():
    assert "SLIP006" in codes(RECORD_CLASS)


def test_slip006_quiet_with_slots():
    found = codes("""
        class LineMeta:
            __slots__ = ("tag", "dirty", "ts", "hits")

            def __init__(self):
                self.tag = -1
                self.dirty = False
                self.ts = 0
                self.hits = 0
    """)
    assert "SLIP006" not in found


def test_slip006_quiet_on_dataclass_and_behavior_class():
    found = codes("""
        from dataclasses import dataclass

        @dataclass
        class Stats:
            hits: int = 0
            misses: int = 0
            energy: float = 0.0

        class Controller:
            def __init__(self):
                self.a = 1
                self.b = 2
                self.c = 3

            def step(self):
                return self.a
    """)
    assert "SLIP006" not in found


def test_slip006_quiet_outside_sim_packages():
    assert "SLIP006" not in codes(RECORD_CLASS,
                                  module=EXPERIMENTS_MODULE)


# ----------------------------------------------------------------------
# SLIP007 float += onto *_pj stats fields
# ----------------------------------------------------------------------
def test_slip007_triggers_on_pj_augassign():
    assert "SLIP007" in codes("""
        def charge(stats, read_pj):
            stats.read_pj += read_pj
    """)


def test_slip007_triggers_on_nested_attribute_chain():
    assert "SLIP007" in codes("""
        def charge(level):
            level.stats.energy.movement_queue_pj += 0.3
    """)


def test_slip007_quiet_on_event_counters_and_assignment():
    found = codes("""
        def charge(stats, events):
            stats.read_events[0] += 1
            stats.read_pj = stats.read_events[0] * 1.27
            stats.read_pj -= 0.0
    """)
    assert "SLIP007" not in found


def test_slip007_quiet_outside_sim_packages():
    found = codes("""
        def tally(report, cell):
            report.total_pj += cell.total_pj
    """, module=EXPERIMENTS_MODULE)
    assert "SLIP007" not in found


def test_slip007_pragma_suppresses():
    found = codes("""
        def complete(stats, lookup_pj):
            stats.energy_pj += lookup_pj  # slip-lint: disable=SLIP007
    """)
    assert "SLIP007" not in found


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_single_code():
    found = codes("""
        def total_energy_pj(values):
            return sum(values)  # slip-lint: disable=SLIP005
    """)
    assert "SLIP005" not in found


def test_line_pragma_leaves_other_lines_alone():
    found = codes("""
        def total_energy_pj(values):
            a = sum(values)  # slip-lint: disable=SLIP005
            b = sum(values)
            return a + b
    """)
    assert found.count("SLIP005") == 1


def test_file_pragma_suppresses_whole_file():
    found = codes("""
        # slip-lint: disable-file=SLIP005,SLIP004
        def total_energy_pj(values, extra=[]):
            return sum(values)
    """)
    assert "SLIP005" not in found and "SLIP004" not in found


def test_disable_all_pragma():
    found = codes("""
        import random
        rng = random.Random()  # slip-lint: disable=all
    """)
    assert found == []


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_syntax_error_reported_as_slip999():
    assert codes("def broken(:\n    pass") == ["SLIP999"]


def test_module_parts_derivation():
    assert module_parts_of("src/repro/mem/cache.py") == (
        "repro", "mem", "cache")
    assert module_parts_of("/abs/path/src/repro/sim/config.py") == (
        "repro", "sim", "config")
    assert module_parts_of("scripts/tool.py") == ("tool",)


def test_select_restricts_rules():
    source = textwrap.dedent("""
        import random
        rng = random.Random()

        def f(x=[]):
            pass
    """)
    only = lint_source(source, path="fixture.py", module=SIM_MODULE,
                       select=["SLIP004"])
    assert [f.code for f in only] == ["SLIP004"]


def test_every_rule_has_unique_code_and_docs():
    seen = set()
    for rule in RULES:
        assert rule.code.startswith("SLIP") and rule.code not in seen
        assert rule.summary
        seen.add(rule.code)


# ----------------------------------------------------------------------
# CLI behaviour and exit codes
# ----------------------------------------------------------------------
def test_cli_nonzero_on_violation_fixture(tmp_path, capsys):
    bad = tmp_path / "repro" / "mem" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nrng = random.Random()\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "SLIP001" in out


def test_cli_zero_on_clean_tree(tmp_path, capsys):
    good = tmp_path / "clean.py"
    good.write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(x=[]):\n    pass\n")
    assert main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "SLIP004"


def test_cli_usage_errors(capsys):
    assert main([]) == 2
    assert main(["--select", "SLIP777", "."]) == 2
    assert main(["/no/such/path-xyz"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.code in out


def test_discovery_skips_caches_and_sorts(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x=1")
    (tmp_path / "b.py").write_text("x=1")
    (tmp_path / "a.py").write_text("x=1")
    files = discover_files([str(tmp_path)])
    assert [os.path.basename(f) for f in files] == ["a.py", "b.py"]


def test_module_entry_point_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0
    assert "SLIP001" in proc.stdout
    assert "RuntimeWarning" not in proc.stderr


# ----------------------------------------------------------------------
# Robustness: one unreadable file must not abort the whole run
# ----------------------------------------------------------------------
def test_non_utf8_file_reported_and_scan_continues(tmp_path):
    (tmp_path / "garbled.py").write_bytes(b"x = 1\n\xff\xfe\x00bad\n")
    (tmp_path / "repro" / "mem").mkdir(parents=True)
    bad = tmp_path / "repro" / "mem" / "bad.py"
    bad.write_text("import random\nrng = random.Random()\n")

    findings, files_scanned = lint_paths([str(tmp_path)])
    assert files_scanned == 2
    by_code = {f.code for f in findings}
    # The decode failure is a finding, not a crash...
    assert "SLIP999" in by_code
    decode = next(f for f in findings if f.code == "SLIP999")
    assert "not valid UTF-8" in decode.message
    assert decode.path.endswith("garbled.py")
    # ...and the other file was still scanned.
    assert "SLIP001" in by_code


def test_non_utf8_file_cli_exit_code(tmp_path, capsys):
    (tmp_path / "garbled.py").write_bytes(b"\xff\xfe\x00")
    assert main([str(tmp_path)]) == 1
    assert "SLIP999" in capsys.readouterr().out


# ----------------------------------------------------------------------
# SLIP999 is always on, independent of --select
# ----------------------------------------------------------------------
def test_slip999_fires_even_when_select_names_other_rules():
    findings = lint_source("def broken(:\n", path="fixture.py",
                           module=SIM_MODULE, select=["SLIP001"])
    assert [f.code for f in findings] == ["SLIP999"]


def test_select_slip999_is_a_valid_code(tmp_path, capsys):
    good = tmp_path / "clean.py"
    good.write_text("x = 1\n")
    assert main(["--select", "SLIP999", str(tmp_path)]) == 0
    capsys.readouterr()


def test_list_rules_documents_always_on_slip999(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SLIP999" in out
    assert "always on" in out


# ----------------------------------------------------------------------
# The real tree must lint clean (wires slip-lint into every pytest run)
# ----------------------------------------------------------------------
def test_src_tree_lints_clean():
    findings, files_scanned = lint_paths([SRC_DIR])
    assert files_scanned > 50
    assert findings == [], "\n".join(f.render() for f in findings)
