"""Tests for time-based sampling (Section 4.2)."""

import pytest

from repro.core.sampling import PageState, TimeBasedSampler


class TestTransitions:
    def test_initial_state_is_sampling(self):
        assert TimeBasedSampler().initial_state() is PageState.SAMPLING

    def test_expected_sampling_fraction_paper_values(self):
        sampler = TimeBasedSampler(nsamp=16, nstab=256)
        assert sampler.expected_sampling_fraction() == pytest.approx(
            16 / 272
        )

    def test_sampling_to_stable_rate(self):
        sampler = TimeBasedSampler(nsamp=16, nstab=256, seed=7)
        transitions = sum(
            sampler.transition(PageState.SAMPLING) is PageState.STABLE
            for _ in range(20000)
        )
        assert transitions / 20000 == pytest.approx(1 / 16, rel=0.15)

    def test_stable_to_sampling_rate(self):
        sampler = TimeBasedSampler(nsamp=16, nstab=256, seed=7)
        transitions = sum(
            sampler.transition(PageState.STABLE) is PageState.SAMPLING
            for _ in range(60000)
        )
        assert transitions / 60000 == pytest.approx(1 / 256, rel=0.25)

    def test_deterministic_given_seed(self):
        a = TimeBasedSampler(seed=3)
        b = TimeBasedSampler(seed=3)
        seq_a = [a.transition(PageState.SAMPLING) for _ in range(50)]
        seq_b = [b.transition(PageState.SAMPLING) for _ in range(50)]
        assert seq_a == seq_b

    def test_nsamp_one_always_stabilizes(self):
        sampler = TimeBasedSampler(nsamp=1, nstab=256)
        for _ in range(20):
            assert sampler.transition(PageState.SAMPLING) is PageState.STABLE

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            TimeBasedSampler(nsamp=0)
        with pytest.raises(ValueError):
            TimeBasedSampler(nstab=0)

    def test_steady_state_distribution(self):
        """Empirical steady-state sampling fraction matches theory."""
        sampler = TimeBasedSampler(nsamp=4, nstab=32, seed=1)
        state = sampler.initial_state()
        sampling_count = 0
        iterations = 40000
        for _ in range(iterations):
            state = sampler.transition(state)
            sampling_count += state is PageState.SAMPLING
        expected = sampler.expected_sampling_fraction()
        assert sampling_count / iterations == pytest.approx(
            expected, rel=0.2
        )
