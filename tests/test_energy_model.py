"""Tests for the analytical energy model (Section 3.2, Eq. 1-5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.distribution import ReuseDistanceDistribution
from repro.core.energy_model import (
    LevelEnergyParams,
    SlipEnergyModel,
    slip_coefficients,
)
from repro.core.policy import Slip, SlipSpace, abp_slip, default_slip

CAPS = (1024, 1024, 2048)
ENERGIES = (21.0, 33.0, 50.0)
E_NL = 133.0


def params(include_insertion=False):
    return LevelEnergyParams(
        sublevel_capacity_lines=CAPS,
        sublevel_energy_pj=ENERGIES,
        next_level_energy_pj=E_NL,
        include_insertion_energy=include_insertion,
    )


def space():
    return SlipSpace((4, 4, 8), CAPS)


class TestChunkEnergy:
    def test_single_sublevel(self):
        assert params().chunk_energy_pj((0,)) == 21.0

    def test_capacity_weighted_mean(self):
        # Sublevels 1 and 2: (1024*33 + 2048*50) / 3072
        expected = (1024 * 33 + 2048 * 50) / 3072
        assert params().chunk_energy_pj((1, 2)) == pytest.approx(expected)

    def test_whole_level(self):
        expected = (1024 * 21 + 1024 * 33 + 2048 * 50) / 4096
        assert params().chunk_energy_pj((0, 1, 2)) == pytest.approx(expected)


class TestCoefficients:
    def test_abp_all_miss(self):
        alpha = slip_coefficients(abp_slip(), params())
        assert alpha == (E_NL,) * 4

    def test_default_slip(self):
        alpha = slip_coefficients(default_slip(3), params())
        mean = params().chunk_energy_pj((0, 1, 2))
        # Bins 0-2 are hits from the single chunk; bin 3 misses.
        assert alpha[0] == pytest.approx(mean)
        assert alpha[1] == pytest.approx(mean)
        assert alpha[2] == pytest.approx(mean)
        assert alpha[3] == pytest.approx(E_NL)

    def test_single_sublevel_slip(self):
        # {[0]}: bin 0 hits at 21 pJ; everything else misses.
        alpha = slip_coefficients(Slip(((0,),)), params())
        assert alpha[0] == pytest.approx(21.0)
        for i in (1, 2, 3):
            assert alpha[i] == pytest.approx(E_NL)

    def test_two_chunk_movement_term(self):
        # {[0], [1,2]}: accesses beyond 1024 lines move chunk0 -> chunk1
        # (Eq. 2): cost E0 + E1 added to bins 1..3.
        slip = Slip(((0,), (1, 2)))
        alpha = slip_coefficients(slip, params())
        e0 = 21.0
        e1 = params().chunk_energy_pj((1, 2))
        assert alpha[0] == pytest.approx(e0)
        assert alpha[1] == pytest.approx(e1 + (e0 + e1))
        assert alpha[2] == pytest.approx(e1 + (e0 + e1))
        assert alpha[3] == pytest.approx((e0 + e1) + E_NL)

    def test_three_chunk_cascaded_movement(self):
        slip = Slip(((0,), (1,), (2,)))
        alpha = slip_coefficients(slip, params())
        # Bin 3 sees both movements plus the miss.
        expected_bin3 = (21 + 33) + (33 + 50) + E_NL
        assert alpha[3] == pytest.approx(expected_bin3)

    def test_insertion_term_added_to_miss_bins(self):
        with_ins = slip_coefficients(Slip(((0,),)), params(True))
        without = slip_coefficients(Slip(((0,),)), params(False))
        assert with_ins[0] == without[0]
        for i in (1, 2, 3):
            assert with_ins[i] == pytest.approx(without[i] + 21.0)

    def test_abp_has_no_insertion_term(self):
        assert slip_coefficients(abp_slip(), params(True)) == (E_NL,) * 4

    def test_partial_bypass_misses_beyond_own_capacity(self):
        # {[0,1]}: capacity 2048; bins 2 and 3 are misses.
        alpha = slip_coefficients(Slip(((0, 1),)), params())
        e01 = params().chunk_energy_pj((0, 1))
        assert alpha[0] == pytest.approx(e01)
        assert alpha[1] == pytest.approx(e01)
        assert alpha[2] == pytest.approx(E_NL)
        assert alpha[3] == pytest.approx(E_NL)


class TestOptimizerChoices:
    """The argmin should reproduce the paper's Section 2 policies."""

    @pytest.fixture
    def model(self):
        return SlipEnergyModel(space(), params(include_insertion=True))

    def test_pure_miss_line_prefers_abp(self, model):
        best = model.best_slip((0.0, 0.0, 0.0, 1.0))
        assert model.space.slip_of(best).is_abp

    def test_pure_miss_without_abp_prefers_smallest_chunk(self, model):
        best = model.best_slip((0.0, 0.0, 0.0, 1.0), allow_abp=False)
        assert model.space.slip_of(best) == Slip(((0,),))

    def test_small_hot_line_prefers_sublevel0(self, model):
        best = model.best_slip((1.0, 0.0, 0.0, 0.0))
        slip = model.space.slip_of(best)
        assert slip.chunks[0] == (0,)

    def test_soplex_cperm_pattern_gets_two_chunks(self, model):
        # 66% within 64 KB, 10% needing full capacity, 24% missing:
        # Section 2's policy is {[0], [1,2]}-style insertion.
        best = model.best_slip((0.66, 0.05, 0.05, 0.24))
        slip = model.space.slip_of(best)
        # An energy-aware policy, not the Default and not full bypass:
        # the hot 64 KB mass keeps the first chunk small (1-2 sublevels).
        assert not slip.is_abp
        assert not slip.is_default(3)
        assert len(slip.chunks[0]) <= 2

    def test_uniform_distribution_not_abp(self, model):
        best = model.best_slip((0.25, 0.25, 0.25, 0.25))
        assert not model.space.slip_of(best).is_abp

    def test_energy_of_matches_dot_product(self, model):
        probs = (0.3, 0.3, 0.2, 0.2)
        for slip_id in range(len(model.space)):
            alpha = model.alphas[slip_id]
            expected = sum(a * p for a, p in zip(alpha, probs))
            assert model.energy_of(slip_id, probs) == pytest.approx(expected)


class TestQuantization:
    def test_quantized_preserves_argmin_on_corners(self):
        model = SlipEnergyModel(space(), params(True))
        quantized = model.quantized_alphas()
        for corner in range(4):
            probs = [0.0] * 4
            probs[corner] = 1.0
            float_best = model.best_slip(probs)
            counts = [0] * 4
            counts[corner] = 15
            int_best = min(
                range(len(quantized)),
                key=lambda j: sum(
                    a * c for a, c in zip(quantized[j], counts)
                ),
            )
            assert int_best == float_best

    def test_quantized_nonnegative_and_bounded(self):
        model = SlipEnergyModel(space(), params(True))
        for row in model.quantized_alphas():
            for value in row:
                assert 0 <= value < (1 << 16)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LevelEnergyParams((1,), (1.0, 2.0), 3.0)

    def test_space_params_mismatch_rejected(self):
        bad = LevelEnergyParams((10, 10), (1.0, 2.0), 3.0)
        with pytest.raises(ValueError):
            SlipEnergyModel(space(), bad)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4
    ).filter(lambda p: sum(p) > 0)
)
def test_property_energy_nonnegative(raw):
    total = sum(raw)
    probs = [p / total for p in raw]
    model = SlipEnergyModel(space(), params(True))
    for slip_id in range(len(model.space)):
        assert model.energy_of(slip_id, probs) >= 0.0


@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=4, max_size=4)
    .filter(lambda c: sum(c) >= 4)
)
def test_property_quantized_argmin_close_to_float(counts):
    """Fixed-point argmin must pick a SLIP within 2% of the float optimum."""
    model = SlipEnergyModel(space(), params(True))
    total = sum(counts)
    probs = [c / total for c in counts]
    float_best = model.best_slip(probs)
    quantized = model.quantized_alphas()
    int_best = min(
        range(len(quantized)),
        key=lambda j: sum(a * c for a, c in zip(quantized[j], counts)),
    )
    best_energy = model.energy_of(float_best, probs)
    chosen_energy = model.energy_of(int_best, probs)
    assert chosen_energy <= best_energy * 1.02 + 1e-9
