"""Tests for the multi-level hierarchy driver."""

import pytest

from repro.sim.build import build_hierarchy


@pytest.fixture
def baseline(tiny_system):
    return build_hierarchy(tiny_system, "baseline")


class TestAccessPath:
    def test_first_access_reaches_dram(self, baseline):
        baseline.access(0)
        assert baseline.l1.stats.demand_misses == 1
        assert baseline.l2.stats.demand_misses == 1
        assert baseline.l3.stats.demand_misses == 1
        assert baseline.dram.stats.reads >= 1

    def test_second_access_hits_l1(self, baseline):
        baseline.access(0)
        hits_before = baseline.l1.stats.demand_hits
        baseline.access(0)
        assert baseline.l1.stats.demand_hits == hits_before + 1

    def test_fills_all_levels(self, baseline):
        baseline.access(0)
        for level in baseline.levels:
            _, way = level.probe(0)
            assert way is not None, level.cfg.name

    def test_l2_hit_after_l1_eviction(self, baseline, tiny_system):
        # Fill enough same-L1-set lines to evict addr 0 from L1 but not
        # from the bigger L2.
        l1_sets = tiny_system.l1.sets
        baseline.access(0)
        for i in range(1, tiny_system.l1.ways + 2):
            baseline.access(i * l1_sets * 2)  # same L1 set, varied L2 sets
        _, way = baseline.l1.probe(0)
        if way is None:
            before = baseline.l2.stats.demand_hits
            baseline.access(0)
            assert baseline.l2.stats.demand_hits == before + 1

    def test_latency_accumulates_along_path(self, baseline, tiny_system):
        lat = baseline.access(0)
        expected_min = (
            tiny_system.l1.latency_cycles
            + tiny_system.l2.latency_cycles
            + tiny_system.l3.latency_cycles
            + tiny_system.dram.latency_cycles
        )
        assert lat >= expected_min

    def test_l1_hit_latency(self, baseline, tiny_system):
        baseline.access(0)
        assert baseline.access(0) == tiny_system.l1.latency_cycles


class TestL1Tick:
    def test_demand_accesses_advance_l1_counter(self, baseline):
        # Regression: the hierarchy never ticked L1, freezing its
        # access counter (and so every L1 timestamp/reuse distance) at 0.
        for addr in range(5):
            baseline.access(addr)
        assert baseline.l1.access_counter == 5

    def test_l1_timestamps_advance(self, baseline):
        granule = max(1, baseline.l1.timestamp_wrap
                      >> baseline.l1.timestamp_bits)
        for addr in range(granule + 1):
            baseline.access(addr)
        assert baseline.l1.timestamp_now() > 0

    def test_metadata_accesses_do_not_tick_l1(self, baseline):
        # Metadata fetches enter the hierarchy below L1.
        before = baseline.l1.access_counter
        baseline._access_below_l1(1 << 40, is_metadata=True, page=-1)
        assert baseline.l1.access_counter == before

    def test_l1_counter_wraps(self, baseline):
        wrap = baseline.l1.timestamp_wrap
        for addr in range(wrap + 3):
            baseline.access(addr)
        assert baseline.l1.access_counter == 3


class TestWritebacks:
    def test_dirty_line_written_back_to_dram_eventually(self, baseline,
                                                        tiny_system):
        # Write a line, then flood every level so it is evicted
        # everywhere; the dirty data must reach DRAM.
        baseline.access(0, is_write=True)
        total_lines = tiny_system.l3.lines
        for i in range(1, 4 * total_lines):
            baseline.access(i)
        assert baseline.dram.stats.writes >= 1

    def test_writeback_updates_resident_l2_copy(self, baseline,
                                                tiny_system):
        baseline.access(0, is_write=True)
        # Evict from L1 only (L1 is tiny), keeping the L2 copy.
        l1_sets = tiny_system.l1.sets
        for i in range(1, tiny_system.l1.ways + 2):
            baseline.access(i * l1_sets)
        set_idx, way = baseline.l2.probe(0)
        if way is not None:
            assert baseline.l2.sets[set_idx][way].dirty

    def test_clean_eviction_no_dram_write(self, baseline, tiny_system):
        baseline.access(0)  # read only
        for i in range(1, 2 * tiny_system.l3.lines):
            baseline.access(i)
        # addr 0 was clean everywhere: at most metadata/dirty-from-fill
        # writes, but none caused by line 0. Strongest cheap check: no
        # write before any dirty access happened at all.
        assert baseline.dram.stats.writes == 0


class TestMetadataTraffic:
    def test_tlb_miss_issues_metadata_access(self, baseline):
        baseline.access(0)
        assert (
            baseline.l2.stats.metadata_hits
            + baseline.l2.stats.metadata_misses
            >= 1
        )

    def test_tlb_hit_no_metadata_access(self, baseline):
        baseline.access(0)
        meta_before = (
            baseline.l2.stats.metadata_hits
            + baseline.l2.stats.metadata_misses
        )
        baseline.access(1)  # same page
        assert (
            baseline.l2.stats.metadata_hits
            + baseline.l2.stats.metadata_misses
            == meta_before
        )

    def test_metadata_not_counted_as_demand(self, baseline):
        baseline.access(0)
        assert baseline.counters.demand_accesses == 1

    def test_pte_lines_cached(self, baseline, tiny_system):
        """Page-table lines live in the cache like any other line."""
        baseline.access(0)
        # Touch another page whose PTE shares the same PTE line.
        baseline.access(tiny_system.lines_per_page * 3)
        assert baseline.l2.stats.metadata_hits >= 1


class TestCounters:
    def test_hit_miss_accounting_consistent(self, baseline):
        for i in range(200):
            baseline.access(i % 37)
        l1 = baseline.l1.stats
        assert l1.demand_hits + l1.demand_misses == 200

    def test_dram_reads_split_demand_metadata(self, baseline):
        for i in range(0, 640, 64):
            baseline.access(i)
        counters = baseline.counters
        assert counters.dram_reads == baseline.dram.stats.reads
        assert counters.dram_metadata_reads > 0

    def test_reset_stats_clears_everything(self, baseline):
        for i in range(50):
            baseline.access(i)
        baseline.reset_stats()
        assert baseline.counters.demand_accesses == 0
        assert baseline.dram.stats.reads == 0
        assert baseline.l2.stats.accesses == 0
        assert baseline.runtime.tlb.stats.accesses == 0

    def test_reset_keeps_cache_contents(self, baseline):
        baseline.access(0)
        baseline.reset_stats()
        baseline.access(0)
        assert baseline.l1.stats.demand_hits == 1

    def test_finalize_flushes_reuse_histogram(self, baseline):
        baseline.access(0)
        baseline.access(0)
        baseline.finalize()
        histogram = baseline.l1.stats.reuse_histogram
        assert sum(histogram.values()) >= 1


class TestInvalidate:
    def test_invalidate_removes_everywhere(self, baseline):
        baseline.access(0)
        baseline.invalidate(0)
        for level in baseline.levels:
            _, way = level.probe(0)
            assert way is None

    def test_invalidate_dirty_writes_back(self, baseline):
        baseline.access(0, is_write=True)
        writes_before = baseline.dram.stats.writes
        baseline.invalidate(0)
        assert baseline.dram.stats.writes > writes_before
