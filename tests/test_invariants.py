"""SimCheck runtime invariants: a clean simulation passes every check,
and each invariant fires on deliberately corrupted cache state with a
violation that names the level/set/way/counter involved."""

import pytest

from repro.analysis import InvariantViolation, check_period, \
    invariants_enabled
from repro.mem.cache import NO_CHUNK
from repro.sim.build import build_hierarchy


@pytest.fixture
def checked_hierarchy(tiny_system, monkeypatch):
    """A slip_abp hierarchy with SimCheck installed, lightly warmed."""
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "64")
    hierarchy = build_hierarchy(tiny_system, "slip_abp")
    assert hierarchy.simcheck is not None
    for step in range(2000):
        hierarchy.access((step * 17) % 1200, step % 5 == 0)
    return hierarchy


def first_valid(level, want_chunk=False):
    for set_idx, line_set in enumerate(level.sets):
        for way, line in enumerate(line_set):
            if line.valid and (not want_chunk
                               or line.chunk_idx != NO_CHUNK):
                return set_idx, way, line
    raise AssertionError("no valid line found")


# ----------------------------------------------------------------------
# Enablement plumbing
# ----------------------------------------------------------------------
def test_disabled_by_default(tiny_system, monkeypatch):
    monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
    assert not invariants_enabled()
    hierarchy = build_hierarchy(tiny_system, "baseline")
    assert hierarchy.simcheck is None


def test_env_value_sets_period(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    assert invariants_enabled() and check_period() == 256
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "512")
    assert check_period() == 512
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
    assert not invariants_enabled()


def test_clean_run_passes_and_checks_fire(checked_hierarchy):
    simcheck = checked_hierarchy.simcheck
    assert simcheck.checks_run >= 2000 // 64
    simcheck.check()  # explicit full check on top of the periodic ones


def test_clean_run_survives_warmup_reset(checked_hierarchy):
    checked_hierarchy.reset_stats()
    for step in range(500):
        checked_hierarchy.access((step * 13) % 900, step % 7 == 0)
    checked_hierarchy.simcheck.check()


def test_finalize_runs_final_check_and_tolerates_histogram_fold(
        checked_hierarchy):
    checked_hierarchy.finalize()
    # Post-finalize the reuse histogram legitimately includes resident
    # lines; the checker must not flag that as drift.
    checked_hierarchy.simcheck.check()


# ----------------------------------------------------------------------
# Structural corruption
# ----------------------------------------------------------------------
def test_duplicate_tag_raises(checked_hierarchy):
    level = checked_hierarchy.l2
    for set_idx, line_set in enumerate(level.sets):
        ways = [w for w, ln in enumerate(line_set) if ln.valid]
        if len(ways) >= 2:
            line_set[ways[1]].tag = line_set[ways[0]].tag
            break
    else:
        raise AssertionError("no set with two valid lines")
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "tag-uniqueness"
    assert exc.value.level == "L2"
    assert exc.value.set_idx == set_idx


def test_stale_probe_index_raises(checked_hierarchy):
    level = checked_hierarchy.l3
    set_idx, way, line = first_valid(level)
    level._index[set_idx][line.tag] = (way + 1) % level.cfg.ways
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant in ("index-consistency", "tag-uniqueness")
    assert exc.value.level == "L3"


def test_chunk_index_out_of_range_raises(checked_hierarchy):
    level = checked_hierarchy.l2
    set_idx, way, line = first_valid(level, want_chunk=True)
    line.chunk_idx = 99
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "chunk-occupancy"
    assert (exc.value.set_idx, exc.value.way) == (set_idx, way)


def test_line_outside_its_chunk_ways_raises(checked_hierarchy):
    level = checked_hierarchy.l2
    space = checked_hierarchy.l2_placement.space
    # Find a line whose claimed chunk does not span every way, then
    # claim a policy/chunk pair whose ways exclude its actual way.
    for set_idx, line_set in enumerate(level.sets):
        for way, line in enumerate(line_set):
            if not line.valid or line.chunk_idx == NO_CHUNK:
                continue
            for slip_id in range(len(space)):
                if space.num_chunks(slip_id) == 0:
                    continue
                if way not in space.chunk_ways(slip_id, 0):
                    line.policy_id, line.chunk_idx = slip_id, 0
                    with pytest.raises(InvariantViolation) as exc:
                        checked_hierarchy.simcheck.check()
                    assert exc.value.invariant == "chunk-occupancy"
                    return
    raise AssertionError("no suitable line/SLIP pair found")


# ----------------------------------------------------------------------
# Ledger corruption
# ----------------------------------------------------------------------
def test_tampered_hit_counter_raises(checked_hierarchy):
    checked_hierarchy.l2.stats.demand_hits += 1
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "counter-truth"
    assert exc.value.counter == "demand_hits"


def test_vanished_line_breaks_conservation(checked_hierarchy):
    level = checked_hierarchy.l1
    set_idx, way, line = first_valid(level)
    # Drop the line *and* its index entry: the index stays consistent,
    # so what fails is insertions == departures + resident.
    del level._index[set_idx][line.tag]
    line.reset()
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "line-conservation"
    assert exc.value.counter == "insertions==evictions+resident"


def test_tampered_dram_writeback_counter_raises(checked_hierarchy):
    checked_hierarchy.counters.dram_writebacks += 1
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    # Both the DRAM cross-check and writeback conservation watch this
    # counter; either naming is a correct diagnosis.
    assert exc.value.invariant in ("counter-truth",
                                   "writeback-conservation")


def test_negative_energy_raises(checked_hierarchy):
    # Energy is deferred to event counters: corrupt the ledger at its
    # source and the materialized read_pj goes negative.
    checked_hierarchy.l2.stats.read_events[0] = -10 ** 6
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "energy-monotonicity"
    assert exc.value.counter == "read_pj"


def test_decreasing_energy_raises(checked_hierarchy):
    checked_hierarchy.simcheck.check()  # records the current floor
    stats = checked_hierarchy.l3.stats
    stats.insert_events = [c // 2 for c in stats.insert_events]
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "energy-monotonicity"
    assert exc.value.counter == "insertion_pj"


# ----------------------------------------------------------------------
# EOU guards
# ----------------------------------------------------------------------
def test_eou_energy_property_refuses_accumulation(checked_hierarchy):
    # The ledger is a materialized product now; the old corruption
    # vector (drifting the accumulated float) no longer type-checks.
    eou = checked_hierarchy.runtime.eous["L2"]
    with pytest.raises(AttributeError):
        eou.stats.energy_pj += 5.0


def test_eou_cycle_ledger_mismatch_raises(checked_hierarchy):
    eou = checked_hierarchy.runtime.eous["L2"]
    eou.stats.tlb_block_cycles += 1
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "eou-energy"
    assert exc.value.counter == "tlb_block_cycles"


def test_eou_lost_per_op_cost_raises(checked_hierarchy):
    # The failure mode deferred EOU accounting introduces: a stats
    # reset that drops the configured per-op energy (e.g. rebuilding
    # the dataclass with defaults) silently rescales the whole ledger.
    eou = checked_hierarchy.runtime.eous["L2"]
    eou.stats.energy_pj_per_op = eou.energy_pj_per_op * 2
    with pytest.raises(InvariantViolation) as exc:
        checked_hierarchy.simcheck.check()
    assert exc.value.invariant == "eou-energy"
    assert exc.value.counter == "energy_pj_per_op"


def test_eou_memo_corruption_raises(checked_hierarchy):
    # Poison the argmin memo: the SimCheck optimize guard re-derives
    # the answer with optimize_direct and must flag the stale entry.
    from repro.core.distribution import ReuseDistanceDistribution

    eou = checked_hierarchy.runtime.eous["L2"]
    distribution = ReuseDistanceDistribution(
        boundaries=tuple(range(1, eou.model.num_bins)))
    for _ in range(8):
        distribution.record(0)
    good = eou.optimize(distribution)
    key = next(k for k, v in eou._memo.items()
               if k[0] == tuple(distribution.counts))
    eou._memo[key] = (good + 1) % len(eou.space)
    with pytest.raises(InvariantViolation) as exc:
        eou.optimize(distribution)
    assert exc.value.invariant == "eou-memo"


def test_eou_rejects_negative_distribution(checked_hierarchy):
    from repro.core.distribution import ReuseDistanceDistribution

    eou = checked_hierarchy.runtime.eous["L2"]
    distribution = ReuseDistanceDistribution(
        boundaries=tuple(range(1, eou.model.num_bins)))
    distribution.counts[0] = -3
    with pytest.raises(InvariantViolation) as exc:
        eou.optimize(distribution)
    assert exc.value.invariant == "eou-distribution"


# ----------------------------------------------------------------------
# Multicore (shared L3 wraps once, per-core checks still run)
# ----------------------------------------------------------------------
def test_multicore_runs_clean_under_simcheck(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "128")
    from repro.sim.multi_core import run_mix

    result = run_mix(("soplex", "milc"), "slip_abp", length_per_core=4000)
    assert result.l3_energy_pj() > 0
