"""Tests for the EXPERIMENTS.md generator script."""

import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" \
    / "make_experiments_md.py"

SAMPLE_LOG = """\
Figure 9: energy savings over the regular hierarchy
===================================================
benchmark  slip:L2
---------  -------
soplex       +4.7%

Paper averages: ...
[fig09 took 255.9s]

Ablation: H-tree
================
benchmark  L2 increase
---------  -----------
soplex          +47.9%
[ablation-htree took 65.9s]

ALL DONE rc=0
"""


def test_generator_parses_sections(tmp_path):
    log = tmp_path / "run.log"
    out = tmp_path / "EXPERIMENTS.md"
    log.write_text(SAMPLE_LOG)
    result = subprocess.run(
        [sys.executable, str(SCRIPT), str(log), str(out)],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    assert "### `fig09` (255.9s)" in text
    assert "### `ablation-htree` (65.9s)" in text
    assert "+4.7%" in text
    assert "paper vs. measured" in text


def test_generator_output_is_markdown(tmp_path):
    log = tmp_path / "run.log"
    out = tmp_path / "EXPERIMENTS.md"
    log.write_text(SAMPLE_LOG)
    subprocess.run([sys.executable, str(SCRIPT), str(log), str(out)],
                   check=True, capture_output=True)
    text = out.read_text()
    assert text.startswith("# EXPERIMENTS")
    assert text.count("```") % 2 == 0  # balanced code fences
