"""Filtered-trace replay: equivalence, store keying, recovery.

The contract under test is absolute: for every policy and every legal
configuration, ``run_trace_filtered`` must produce a ``RunResult``
whose ``to_json()`` is byte-identical to a direct ``run_trace`` —
whether the result came from a capture-through run, a replay against a
memory- or disk-resident capture, or a bypass fallback.
"""

import copy
import dataclasses
import json
import os

import numpy as np
import pytest

from repro.analysis.invariants import InvariantViolation
from repro.core.energy_model import LevelEnergyParams
from repro.experiments.parallel import RunRequest, run_jobs
from repro.sim.build import build_hierarchy
from repro.sim.config import LINES_PER_PAGE, line_to_page_shift
from repro.sim.filtered import (
    capture_front_end,
    front_end_fingerprint,
    replay_capture,
    run_trace_capturing,
    run_trace_filtered,
)
from repro.sim.single_core import run_trace
from repro.workloads.benchmarks import make_trace
from repro.workloads.capture_store import (
    DiskCaptureStore,
    MemoryCaptureStore,
    TraceCapture,
    fingerprint_key,
)
from repro.workloads.trace import _ITER_CHUNK, Trace

ALL_POLICIES = ("baseline", "nurapid", "lru_pea", "slip", "slip_abp")
LENGTH = 2_500


def canonical(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def entry_dirs(root) -> list:
    return [name for name in os.listdir(root) if ".tmp-" not in name]


# ----------------------------------------------------------------------
# Byte-identical equivalence
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_filtered_matches_direct(self, policy, tiny_system):
        trace = make_trace("soplex", LENGTH)
        store = MemoryCaptureStore()
        direct = run_trace(trace, policy, config=tiny_system, seed=2)
        filtered = run_trace_filtered(trace, policy, config=tiny_system,
                                      seed=2, store=store)
        assert canonical(direct) == canonical(filtered)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_replay_from_shared_capture_matches(self, policy,
                                                tiny_system):
        """All five policies replay one store entry byte-identically."""
        trace = make_trace("lbm", LENGTH)
        store = MemoryCaptureStore()
        # Warm the store through the baseline cell (capture-through).
        run_trace_filtered(trace, "baseline", config=tiny_system,
                           store=store)
        assert len(store._entries) == 1
        direct = run_trace(trace, policy, config=tiny_system)
        filtered = run_trace_filtered(trace, policy, config=tiny_system,
                                      store=store)
        assert canonical(direct) == canonical(filtered)
        assert len(store._entries) == 1  # no second capture taken

    def test_simcheck_mode_still_identical(self, monkeypatch,
                                           tiny_system):
        """REPRO_CHECK_INVARIANTS=1 bypasses replay but not equality."""
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        direct = run_trace(trace, "slip", config=tiny_system)
        filtered = run_trace_filtered(trace, "slip", config=tiny_system,
                                      store=store)
        assert canonical(direct) == canonical(filtered)
        assert not store._entries  # replay is illegal under SimCheck

    def test_filtered_env_off_bypasses(self, monkeypatch, tiny_system):
        monkeypatch.setenv("REPRO_FILTERED", "0")
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        filtered = run_trace_filtered(trace, "baseline",
                                      config=tiny_system, store=store)
        assert not store._entries
        assert filtered == run_trace(trace, "baseline",
                                     config=tiny_system)

    def test_rd_block_slip_bypasses(self, tiny_system):
        config = tiny_system.with_slip(rd_block_lines=4)
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        filtered = run_trace_filtered(trace, "slip", config=config,
                                      store=store)
        assert not store._entries
        assert filtered == run_trace(trace, "slip", config=config)

    def test_energy_overrides_bypass(self, tiny_system):
        l3 = tiny_system.l3
        overrides = {
            "L3": LevelEnergyParams(
                sublevel_capacity_lines=tuple(
                    l3.sublevel_capacity_lines(i)
                    for i in range(l3.num_sublevels)
                ),
                sublevel_energy_pj=tuple(
                    e * 0.5 for e in l3.sublevel_energy_pj
                ),
                next_level_energy_pj=tiny_system.dram.energy_pj_per_line,
            )
        }
        trace = make_trace("soplex", 1_200)
        store = MemoryCaptureStore()
        filtered = run_trace_filtered(
            trace, "slip", config=tiny_system, store=store,
            level_energy_overrides=overrides,
        )
        assert not store._entries
        assert filtered == run_trace(trace, "slip", config=tiny_system,
                                     level_energy_overrides=overrides)

    def test_default_system_smoke(self):
        """Paper-scale config, the sweep bench's own geometry."""
        trace = make_trace("soplex", LENGTH)
        store = MemoryCaptureStore()
        run_trace_filtered(trace, "baseline", store=store)
        direct = run_trace(trace, "slip_abp")
        filtered = run_trace_filtered(trace, "slip_abp", store=store)
        assert canonical(direct) == canonical(filtered)


# ----------------------------------------------------------------------
# Capture modes
# ----------------------------------------------------------------------
class TestCaptureModes:
    def test_capture_through_equals_capture_pass(self, tiny_system):
        """Both capture modes freeze the identical front end."""
        trace = make_trace("soplex", LENGTH)
        shadow = capture_front_end(trace, tiny_system)
        result, through = run_trace_capturing(trace, "baseline",
                                              tiny_system)
        assert through is not None
        assert (shadow.n, shadow.warmup, shadow.event_boundary) == (
            through.n, through.warmup, through.event_boundary)
        for name in ("ops", "addrs", "l1_miss_pos", "l1_miss_wb",
                     "tlb_miss_pos"):
            np.testing.assert_array_equal(getattr(shadow, name),
                                          getattr(through, name))
        assert shadow.frozen == through.frozen
        # The capture-through result IS the direct result of the cell.
        assert result == run_trace(trace, "baseline", config=tiny_system)

    def test_conservation_invariant_trips_on_corruption(self,
                                                        tiny_system):
        trace = make_trace("soplex", 1_500)
        capture = capture_front_end(trace, tiny_system)
        frozen = copy.deepcopy(capture.frozen)
        frozen["event_counts"]["demand"] += 1
        bad = TraceCapture(
            n=capture.n, warmup=capture.warmup,
            event_boundary=capture.event_boundary, ops=capture.ops,
            addrs=capture.addrs, l1_miss_pos=capture.l1_miss_pos,
            l1_miss_wb=capture.l1_miss_wb,
            tlb_miss_pos=capture.tlb_miss_pos, frozen=frozen,
        )
        with pytest.raises(InvariantViolation) as excinfo:
            replay_capture(trace, "baseline", bad, tiny_system)
        assert excinfo.value.invariant == "capture-replay-conservation"


# ----------------------------------------------------------------------
# Fingerprint keying
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_front_end_knobs_change_the_key(self, tiny_system):
        trace = make_trace("soplex", 1_500)
        base = fingerprint_key(
            front_end_fingerprint(trace, tiny_system, 0, 0.25))
        variants = [
            front_end_fingerprint(trace, tiny_system, 1, 0.25),
            front_end_fingerprint(trace, tiny_system, 0, 0.5),
            front_end_fingerprint(
                trace,
                dataclasses.replace(tiny_system, tlb_entries=16),
                0, 0.25),
            front_end_fingerprint(
                trace,
                dataclasses.replace(
                    tiny_system,
                    l1=dataclasses.replace(tiny_system.l1,
                                           size_bytes=512)),
                0, 0.25),
            front_end_fingerprint(
                make_trace("soplex", 1_500, seed=1), tiny_system,
                0, 0.25),
        ]
        for variant in variants:
            assert fingerprint_key(variant) != base

    def test_back_end_knobs_share_the_key(self, tiny_system):
        """L2/L3 geometry and SLIP params never reach the front end."""
        trace = make_trace("soplex", 1_500)
        base = fingerprint_key(
            front_end_fingerprint(trace, tiny_system, 0, 0.25))
        bigger_l2 = dataclasses.replace(
            tiny_system,
            l2=dataclasses.replace(tiny_system.l2, size_bytes=8192))
        assert fingerprint_key(
            front_end_fingerprint(trace, bigger_l2, 0, 0.25)) == base
        tweaked = tiny_system.with_slip(nsamp=3)
        assert fingerprint_key(
            front_end_fingerprint(trace, tweaked, 0, 0.25)) == base


# ----------------------------------------------------------------------
# Disk store
# ----------------------------------------------------------------------
class TestDiskStore:
    def test_same_key_hits_from_fresh_store(self, tmp_path, tiny_system):
        trace = make_trace("soplex", LENGTH)
        run_trace_filtered(trace, "baseline", config=tiny_system,
                           store=DiskCaptureStore(str(tmp_path)))
        assert len(entry_dirs(tmp_path)) == 1
        key = fingerprint_key(
            front_end_fingerprint(trace, tiny_system, 0, 0.25))
        # A fresh store (cold memo) must load the entry from disk.
        loaded = DiskCaptureStore(str(tmp_path)).get(key)
        assert loaded is not None
        assert loaded.n == LENGTH

    def test_capture_shared_across_runtime_kinds(self, tmp_path,
                                                 tiny_system):
        """The fingerprint excludes the runtime kind: a slip cell

        replays the capture the baseline cell recorded rather than
        taking its own.
        """
        trace = make_trace("lbm", LENGTH)
        run_trace_filtered(trace, "baseline", config=tiny_system,
                           store=DiskCaptureStore(str(tmp_path)))
        filtered = run_trace_filtered(
            trace, "slip_abp", config=tiny_system,
            store=DiskCaptureStore(str(tmp_path)))
        assert len(entry_dirs(tmp_path)) == 1
        assert filtered == run_trace(trace, "slip_abp",
                                     config=tiny_system)

    def test_corrupt_array_quarantined_and_recovered(self, tmp_path,
                                                     tiny_system):
        trace = make_trace("soplex", LENGTH)
        run_trace_filtered(trace, "slip", config=tiny_system,
                           store=DiskCaptureStore(str(tmp_path)))
        (entry,) = [tmp_path / d for d in entry_dirs(tmp_path)]
        (entry / "ops.npy").write_bytes(b"garbage, not an npy")
        fresh = DiskCaptureStore(str(tmp_path))
        key = fingerprint_key(
            front_end_fingerprint(trace, tiny_system, 0, 0.25))
        assert fresh.get(key) is None
        assert not entry.exists()  # quarantined
        # The driver re-captures and still matches the direct run.
        filtered = run_trace_filtered(trace, "slip", config=tiny_system,
                                      store=fresh)
        assert canonical(filtered) == canonical(
            run_trace(trace, "slip", config=tiny_system))
        assert len(entry_dirs(tmp_path)) == 1

    def test_truncated_meta_quarantined(self, tmp_path, tiny_system):
        trace = make_trace("soplex", LENGTH)
        run_trace_filtered(trace, "baseline", config=tiny_system,
                           store=DiskCaptureStore(str(tmp_path)))
        (entry,) = [tmp_path / d for d in entry_dirs(tmp_path)]
        (entry / "meta.json").write_text("{not json", encoding="utf-8")
        key = fingerprint_key(
            front_end_fingerprint(trace, tiny_system, 0, 0.25))
        assert DiskCaptureStore(str(tmp_path)).get(key) is None
        assert not entry.exists()


# ----------------------------------------------------------------------
# Parallel engine integration
# ----------------------------------------------------------------------
@pytest.mark.multiproc
def test_jobs_parity_with_shared_disk_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path))
    grid = [
        RunRequest("soplex", policy, length=2_000)
        for policy in ("baseline", "slip", "slip_abp")
    ]
    serial = run_jobs(grid, jobs=1)
    parallel = run_jobs(grid, jobs=2)
    for ours, theirs in zip(serial.results, parallel.results):
        assert ours.result == theirs.result, ours.request.label()
    assert len(entry_dirs(tmp_path)) == 1


# ----------------------------------------------------------------------
# Page-grain unification (satellite: shared shift hook)
# ----------------------------------------------------------------------
class TestPageShift:
    def test_shift_derivation(self):
        assert line_to_page_shift(1) == 0
        assert line_to_page_shift(16) == 4
        assert line_to_page_shift(64) == 6
        assert line_to_page_shift(LINES_PER_PAGE) == 6

    def test_hierarchy_and_trace_agree(self, tiny_system):
        config = dataclasses.replace(tiny_system, page_size=1024)
        assert config.lines_per_page == 16
        hierarchy = build_hierarchy(config, "baseline")
        assert hierarchy._page_shift == line_to_page_shift(
            config.lines_per_page)
        trace = make_trace("soplex", 1_000)
        expected = int(np.unique(
            trace.addresses >> hierarchy._page_shift).size)
        assert trace.footprint_pages(config.lines_per_page) == expected

    def test_default_grain_matches(self, tiny_system):
        hierarchy = build_hierarchy(tiny_system, "baseline")
        assert hierarchy._page_shift == line_to_page_shift(
            LINES_PER_PAGE)
        trace = make_trace("lbm", 1_000)
        assert trace.footprint_pages() == int(np.unique(
            trace.addresses >> hierarchy._page_shift).size)


# ----------------------------------------------------------------------
# Chunked Trace.__iter__
# ----------------------------------------------------------------------
def test_trace_iter_chunked_equivalence():
    rng = np.random.default_rng(0)
    n = _ITER_CHUNK + 1_234  # spans a chunk boundary
    addresses = rng.integers(0, 1 << 30, size=n, dtype=np.int64)
    is_write = rng.random(n) < 0.3
    trace = Trace("iter-test", addresses, is_write)
    assert list(trace) == list(zip(addresses.tolist(),
                                   is_write.tolist()))


# ----------------------------------------------------------------------
# Capture-store correctness fixes (PR 6 satellites)
# ----------------------------------------------------------------------
class TestDigestCollision:
    def test_foreign_entry_is_miss_not_quarantine(self, tmp_path,
                                                  monkeypatch,
                                                  tiny_system):
        """Two keys forced into one digest dir: the second key's get()
        is a miss that leaves the first key's capture intact."""
        import repro.workloads.capture_store as cs

        monkeypatch.setattr(cs, "key_digest", lambda key: "collision")
        trace_a = make_trace("soplex", 1_200)
        run_trace_filtered(trace_a, "baseline", config=tiny_system,
                           store=cs.DiskCaptureStore(str(tmp_path)))
        assert entry_dirs(tmp_path) == ["collision"]

        trace_b = make_trace("lbm", 1_200)
        key_b = fingerprint_key(
            front_end_fingerprint(trace_b, tiny_system, 0, 0.25))
        fresh = cs.DiskCaptureStore(str(tmp_path))
        assert fresh.get(key_b) is None          # miss, not an error
        assert entry_dirs(tmp_path) == ["collision"]  # not deleted

        key_a = fingerprint_key(
            front_end_fingerprint(trace_a, tiny_system, 0, 0.25))
        survivor = cs.DiskCaptureStore(str(tmp_path)).get(key_a)
        assert survivor is not None
        assert survivor.n == 1_200


class TestMaxMbClamp:
    def test_bad_values_fall_back_to_default(self, tmp_path,
                                             monkeypatch, capsys):
        import repro.workloads.capture_store as cs

        monkeypatch.setenv(cs.CAPTURE_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(cs, "_WARNED_MAX_MB", set())
        for bad in ("0", "-5", "junk"):
            monkeypatch.setenv(cs.CAPTURE_MAX_MB_ENV, bad)
            store = cs.default_store()
            assert store.max_bytes == cs._DEFAULT_MAX_MB * 1024 * 1024
            assert cs.CAPTURE_MAX_MB_ENV in capsys.readouterr().err
        monkeypatch.setenv(cs.CAPTURE_MAX_MB_ENV, "7")
        assert cs.default_store().max_bytes == 7 * 1024 * 1024
        # Valid values warn nothing.
        assert capsys.readouterr().err == ""

    def test_zero_cap_no_longer_evicts_everything(self, tmp_path,
                                                  monkeypatch,
                                                  tiny_system):
        """Regression: REPRO_CAPTURE_MAX_MB=0 used to make _evict
        delete every entry except the one just written."""
        monkeypatch.setenv("REPRO_CAPTURE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CAPTURE_MAX_MB", "0")
        run_trace_filtered(make_trace("soplex", 1_200), "baseline",
                           config=tiny_system)
        run_trace_filtered(make_trace("lbm", 1_200), "baseline",
                           config=tiny_system)
        assert len(entry_dirs(tmp_path)) == 2
