"""Tests for replacement policies and chunk-restricted victim choice."""

import pytest

from repro.mem.cache import CacheLevel
from repro.mem.replacement import (
    DrripReplacement,
    LruReplacement,
    RandomReplacement,
    ShipReplacement,
    make_replacement,
)
from repro.policies.lru_pea import PeaLruReplacement


def filled_level(cfg, replacement, addrs):
    level = CacheLevel(cfg, replacement)
    for addr in addrs:
        set_idx = level.set_index(addr)
        way = level.choose_victim(set_idx, range(cfg.ways))
        level.extract(set_idx, way)
        level.place_fill(set_idx, way, addr)
    return level


class TestLru:
    def test_victim_is_least_recent(self, tiny_system):
        cfg = tiny_system.l2
        sets = cfg.sets
        level = filled_level(cfg, LruReplacement(),
                             [0, sets, 2 * sets, 3 * sets])
        # Touch everything except way holding addr 'sets'.
        for addr in (0, 2 * sets, 3 * sets):
            s, w = level.probe(addr)
            level.record_hit(s, w, False)
        victim_way = level.choose_victim(0, range(cfg.ways))
        assert level.sets[0][victim_way].tag == sets

    def test_restricted_candidates_respected(self, tiny_system):
        cfg = tiny_system.l2
        level = filled_level(
            cfg, LruReplacement(),
            [0, cfg.sets, 2 * cfg.sets, 3 * cfg.sets],
        )
        victim = level.choose_victim(0, [2, 3])
        assert victim in (2, 3)

    def test_invalid_way_preferred(self, tiny_system):
        cfg = tiny_system.l2
        level = CacheLevel(cfg, LruReplacement())
        level.place_fill(0, 0, 0)
        assert level.choose_victim(0, range(cfg.ways)) != 0

    def test_demoted_line_keeps_recency(self, tiny_system):
        cfg = tiny_system.l2
        level = filled_level(cfg, LruReplacement(), [0])
        s, w = level.probe(0)
        old_lru = level.sets[s][w].lru
        moved = level.extract(s, w)
        level.place_moved(s, (w + 1) % cfg.ways, moved, new_chunk_idx=1)
        assert level.sets[s][(w + 1) % cfg.ways].lru == old_lru


class TestPeaLru:
    def test_demoted_evicted_first(self, tiny_system):
        cfg = tiny_system.l2
        level = filled_level(
            cfg, PeaLruReplacement(),
            [0, cfg.sets, 2 * cfg.sets, 3 * cfg.sets],
        )
        # Mark way 3 (most recently inserted) demoted; it should still
        # be evicted before older non-demoted lines.
        level.sets[0][3].demoted = True
        victim = level.choose_victim(0, range(cfg.ways))
        assert victim == 3

    def test_falls_back_to_lru_without_demoted(self, tiny_system):
        cfg = tiny_system.l2
        level = filled_level(
            cfg, PeaLruReplacement(),
            [0, cfg.sets, 2 * cfg.sets, 3 * cfg.sets],
        )
        victim = level.choose_victim(0, range(cfg.ways))
        assert level.sets[0][victim].tag == 0


class TestRandom:
    def test_victim_within_candidates(self, tiny_system):
        cfg = tiny_system.l2
        level = filled_level(
            cfg, RandomReplacement(seed=1),
            [0, cfg.sets, 2 * cfg.sets, 3 * cfg.sets],
        )
        for _ in range(20):
            assert level.choose_victim(0, [1, 2]) in (1, 2)


class TestDrrip:
    def test_insertion_rrpv_long(self, tiny_system):
        cfg = tiny_system.l2
        policy = DrripReplacement(seed=0)
        level = CacheLevel(cfg, policy)
        level.place_fill(0, 0, 0)
        assert level.sets[0][0].rrpv >= policy.rrpv_max - 1

    def test_hit_promotes_to_zero(self, tiny_system):
        cfg = tiny_system.l2
        policy = DrripReplacement(seed=0)
        level = CacheLevel(cfg, policy)
        level.place_fill(0, 0, 0)
        level.record_hit(0, 0, False)
        assert level.sets[0][0].rrpv == 0

    def test_victim_has_max_rrpv_after_aging(self, tiny_system):
        cfg = tiny_system.l2
        policy = DrripReplacement(seed=0)
        level = filled_level(cfg, policy,
                             [0, cfg.sets, 2 * cfg.sets, 3 * cfg.sets])
        level.record_hit(0, 0, False)
        victim = policy.choose_victim(0, list(range(cfg.ways)),
                                      level.sets[0])
        assert level.sets[0][victim].rrpv == policy.rrpv_max
        assert victim != 0  # the hit line was protected

    def test_dueling_counter_moves(self, tiny_system):
        policy = DrripReplacement(seed=0)
        level = CacheLevel(tiny_system.l2, policy)
        start = policy.psel
        policy.record_miss(0)   # leader set 0 is SRRIP
        assert policy.psel == start + 1

    def test_sublevel_randomization_stays_in_sublevel(self, tiny_system):
        """Section 7: victims come from one sublevel of the chunk."""
        cfg = tiny_system.l2
        policy = DrripReplacement(seed=3)
        level = filled_level(cfg, policy,
                             [0, cfg.sets, 2 * cfg.sets, 3 * cfg.sets])
        chunk = [0, 1, 2, 3]  # spans sublevels (1,1,2)
        for _ in range(10):
            victim = policy.choose_victim(0, chunk, level.sets[0])
            assert victim in chunk


class TestShip:
    def test_signature_from_address(self, tiny_system):
        policy = ShipReplacement()
        assert policy.signature_of(0) == policy.signature_of(63 << 0) or True
        sig = policy.signature_of(1 << policy.signature_shift)
        assert 0 <= sig < len(policy.shct)

    def test_dead_on_arrival_training(self, tiny_system):
        cfg = tiny_system.l2
        policy = ShipReplacement(seed=0)
        level = CacheLevel(cfg, policy)
        sig = policy.signature_of(0)
        start = policy.shct[sig]
        level.place_fill(0, 0, 0)
        evicted = level.extract(0, 0)
        level.record_departure(evicted)
        assert policy.shct[sig] == max(0, start - 1)

    def test_reused_line_trains_up(self, tiny_system):
        cfg = tiny_system.l2
        policy = ShipReplacement(seed=0)
        level = CacheLevel(cfg, policy)
        sig = policy.signature_of(0)
        start = policy.shct[sig]
        level.place_fill(0, 0, 0)
        level.record_hit(0, 0, False)
        assert policy.shct[sig] == min(policy.shct_max, start + 1)

    def test_predicted_dead_inserted_distant(self, tiny_system):
        cfg = tiny_system.l2
        policy = ShipReplacement(seed=0)
        level = CacheLevel(cfg, policy)
        sig = policy.signature_of(0)
        policy.shct[sig] = 0
        level.place_fill(0, 0, 0)
        assert level.sets[0][0].rrpv == policy.rrpv_max


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruReplacement),
        ("random", RandomReplacement),
        ("drrip", DrripReplacement),
        ("ship", ShipReplacement),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_replacement(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_replacement("LRU"), LruReplacement)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_replacement("plru")
