"""Tests for the experiment harness (figures + ablations)."""

import numpy as np
import pytest

from repro.experiments import ExperimentSettings, Table
from repro.experiments import ablations
from repro.experiments.common import (
    SweepCache,
    arithmetic_mean,
    geometric_mean,
    pct,
)
from repro.experiments.fig03_soplex import stack_distance_bins
from repro.experiments.fig11_breakdown import breakdown
from repro.experiments.runner import EXPERIMENTS, main

SMALL = ExperimentSettings(length=6_000, seed=0,
                           benchmarks=("soplex", "lbm"))


class TestTable:
    def test_formatting_aligns(self):
        table = Table("T", ["a", "bb"], [["x", "1"], ["yy", "22"]],
                      notes="n")
        text = table.formatted()
        assert "T" in text
        assert "n" in text
        lines = text.splitlines()
        assert len(lines) >= 6

    def test_empty_rows_ok(self):
        assert Table("T", ["a"], []).formatted()


class TestHelpers:
    def test_pct(self):
        assert pct(0.356) == "+35.6%"
        assert pct(-0.01) == "-1.0%"

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0


class TestSweepCache:
    def test_results_memoized(self):
        cache = SweepCache(SMALL)
        first = cache.result("lbm", "baseline")
        second = cache.result("lbm", "baseline")
        assert first is second

    def test_traces_shared_across_policies(self):
        cache = SweepCache(SMALL)
        cache.result("lbm", "baseline")
        trace = cache.trace("lbm")
        cache.result("lbm", "slip_abp")
        assert cache.trace("lbm") is trace


class TestStackDistance:
    def test_repeated_scan(self):
        # Two scans of 10 lines: second scan all at distance 10.
        addrs = np.array(list(range(10)) * 2, dtype=np.int64)
        fractions = stack_distance_bins(addrs, edges=(5, 15, 100))
        assert fractions[1] == pytest.approx(0.5)  # 10 in [5, 15)
        assert fractions[3] == pytest.approx(0.5)  # 10 cold misses

    def test_immediate_reuse_bin_zero(self):
        addrs = np.array([1, 1, 1, 1], dtype=np.int64)
        fractions = stack_distance_bins(addrs, edges=(5, 15, 100))
        assert fractions[0] == pytest.approx(0.75)

    def test_all_cold(self):
        addrs = np.arange(50, dtype=np.int64)
        fractions = stack_distance_bins(addrs, edges=(5, 15, 30))
        assert fractions[-1] == 1.0


class TestFigureModules:
    def test_fig01_runs(self):
        from repro.experiments import fig01_reuse

        settings = ExperimentSettings(length=6_000, seed=0)
        table = fig01_reuse.run(settings)
        assert len(table.rows) == 8  # 7 benchmarks + average

    def test_fig03_runs(self):
        from repro.experiments import fig03_soplex

        table = fig03_soplex.run(ExperimentSettings(length=20_000))
        names = {row[0] for row in table.rows}
        assert "rperm" in names

    def test_fig09_shape(self):
        from repro.experiments import fig09_energy

        table = fig09_energy.run(SMALL)
        assert table.rows[-1][0] == "average"
        assert len(table.rows) == len(SMALL.benchmarks) + 1

    def test_fig14_fractions_sum_to_one(self):
        from repro.experiments import fig14_insertion_classes

        fractions = fig14_insertion_classes.class_fractions(
            SMALL, level="L2"
        )
        for benchmark, per_class in fractions.items():
            assert sum(per_class.values()) == pytest.approx(1.0), benchmark

    def test_fig15_fractions_valid(self):
        from repro.experiments import fig15_sublevel_fractions

        data = fig15_sublevel_fractions.average_fractions(SMALL, "L2")
        for policy, fractions in data.items():
            assert sum(fractions) == pytest.approx(1.0, abs=0.01), policy

    def test_breakdown_definition(self):
        cache = SweepCache(SMALL)
        result = cache.result("lbm", "baseline")
        access, movement = breakdown(result.l2)
        assert access == result.l2.energy.read_pj
        assert movement >= result.l2.energy.insertion_pj


class TestAblations:
    def test_htree_config_uniform(self):
        config = ablations.htree_config()
        assert len(set(config.l2.sublevel_energy_pj)) == 1
        assert config.l2.access_energy_pj > 39.0

    def test_htree_increases_energy(self):
        settings = ExperimentSettings(length=6_000)
        table = ablations.run_htree(settings)
        average = table.rows[-1]
        assert average[0] == "average"
        assert average[1].startswith("+")

    def test_22nm_config_cheaper(self):
        config = ablations.config_22nm()
        assert config.l2.access_energy_pj < 39.0
        assert config.l3.access_energy_pj < 136.0


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out

    def test_unknown_experiment(self):
        assert main(["not-an-experiment"]) == 2

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 1

    def test_registry_complete(self):
        expected = {
            "fig01", "fig03", "fig09", "fig10", "fig13", "fig16",
            "ablation-htree", "ablation-22nm", "ablation-binwidth",
            "ablation-sampling",
        }
        assert expected <= set(EXPERIMENTS)

    def test_run_single_small(self, capsys):
        assert main(["fig03", "--length", "15000"]) == 0
        assert "rperm" in capsys.readouterr().out
