"""Tests for the two-core shared-L3 simulation (Figure 16 machinery)."""

import pytest

from repro.sim.multi_core import RoutedSlipRuntime, run_mix
from repro.core.runtime import SlipRuntime
from repro.workloads.mixes import CORE_ADDRESS_STRIDE

MIX = ("soplex", "mcf")
LENGTH = 60_000


class TestRunMix:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            policy: run_mix(MIX, policy, length_per_core=LENGTH, seed=0)
            for policy in ("baseline", "slip_abp")
        }

    def test_two_private_l2s(self, results):
        base = results["baseline"]
        assert len(base.l2_stats) == 2
        for stats in base.l2_stats:
            assert stats.accesses > 0

    def test_shared_l3_sees_both_cores(self, results):
        base = results["baseline"]
        per_core_l2_misses = [s.demand_misses for s in base.l2_stats]
        assert all(m > 0 for m in per_core_l2_misses)
        assert base.l3_stats.demand_accesses > max(per_core_l2_misses)

    def test_energy_rollups_positive(self, results):
        base = results["baseline"]
        assert base.l2_energy_pj() > 0
        assert base.l3_energy_pj() > 0
        assert base.combined_energy_pj() == pytest.approx(
            base.l2_energy_pj() + base.l3_energy_pj()
        )

    def test_slip_saves_shared_l3_energy(self, results):
        saving = results["slip_abp"].savings_over(
            results["baseline"], "L3"
        )
        assert saving > 0.0

    def test_savings_over_self_is_zero(self, results):
        base = results["baseline"]
        assert base.savings_over(base, "L3") == 0.0
        assert base.savings_over(base, "DRAM") == 0.0

    def test_dram_accesses_aggregated(self, results):
        base = results["baseline"]
        assert base.dram_accesses == base.dram.accesses

    def test_mix_recorded(self, results):
        assert results["baseline"].mix == MIX


class TestRoutedRuntime:
    def test_routes_by_core_address_region(self, tiny_system):
        runtimes = [SlipRuntime(tiny_system, seed=i) for i in range(2)]
        router = RoutedSlipRuntime(runtimes)
        page_core0 = 5
        page_core1 = (CORE_ADDRESS_STRIDE >> 6) + 5
        runtimes[0].on_demand_access(page_core0)
        runtimes[1].on_demand_access(page_core1)
        assert router.is_sampling(page_core0)
        assert router.is_sampling(page_core1)
        # Distribution updates land in the owning runtime only.
        router.record_miss_sample("L2", page_core1)
        assert runtimes[1].pages[page_core1].distributions["L2"].total() == 1
        assert page_core1 not in runtimes[0].pages

    def test_policy_for_routed(self, tiny_system):
        runtimes = [SlipRuntime(tiny_system, seed=i) for i in range(2)]
        router = RoutedSlipRuntime(runtimes)
        page = (CORE_ADDRESS_STRIDE >> 6) + 1
        assert router.policy_for("L2", page) == (
            runtimes[1].spaces["L2"].default_id
        )


class TestNucaMulticore:
    def test_nurapid_mix_increases_l3_energy(self):
        base = run_mix(MIX, "baseline", length_per_core=20_000)
        nurapid = run_mix(MIX, "nurapid", length_per_core=20_000)
        assert nurapid.savings_over(base, "L3") < 0.0

    def test_lru_pea_mix_builds_and_runs(self):
        result = run_mix(MIX, "lru_pea", length_per_core=4000)
        assert result.l3_stats.movements >= 0
