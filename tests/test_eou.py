"""Tests for the Energy Optimizer Unit (Section 4.4)."""

import pytest

from repro.core.distribution import ReuseDistanceDistribution
from repro.core.energy_model import LevelEnergyParams, SlipEnergyModel
from repro.core.eou import EnergyEvaluationUnit, EnergyOptimizerUnit
from repro.core.policy import SlipSpace

CAPS = (1024, 1024, 2048)


def make_eou(include_insertion=True):
    space = SlipSpace((4, 4, 8), CAPS)
    model = SlipEnergyModel(space, LevelEnergyParams(
        CAPS, (21.0, 33.0, 50.0), 133.0,
        include_insertion_energy=include_insertion,
    ))
    return EnergyOptimizerUnit(model)


def dist_with(counts):
    dist = ReuseDistanceDistribution(CAPS[0:1] + (2048, 4096))
    dist.counts = list(counts)
    return dist


class TestEEU:
    def test_dot_product(self):
        eeu = EnergyEvaluationUnit(0, (1, 2, 3, 4))
        assert eeu.evaluate((1, 1, 1, 1)) == 10
        assert eeu.evaluate((4, 0, 0, 1)) == 8

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EnergyEvaluationUnit(0, (1, 2)).evaluate((1, 2, 3))


class TestEOU:
    def test_one_eeu_per_slip(self):
        eou = make_eou()
        assert len(eou.eeus) == 8

    def test_cold_distribution_returns_default(self):
        eou = make_eou()
        cold = dist_with([0, 0, 0, 0])
        assert eou.optimize(cold) == eou.space.default_id

    def test_nearly_cold_returns_default(self):
        eou = make_eou()
        assert eou.optimize(dist_with([1, 0, 1, 0])) == eou.space.default_id

    def test_miss_heavy_distribution_returns_abp(self):
        eou = make_eou()
        best = eou.optimize(dist_with([0, 0, 0, 15]))
        assert best == eou.space.abp_id

    def test_allow_abp_false_never_bypasses_fully(self):
        eou = make_eou()
        best = eou.optimize(dist_with([0, 0, 0, 15]), allow_abp=False)
        assert best != eou.space.abp_id

    def test_hot_distribution_prefers_small_chunk(self):
        eou = make_eou()
        best = eou.optimize(dist_with([15, 0, 0, 0]))
        slip = eou.space.slip_of(best)
        assert not slip.is_abp
        assert slip.chunks[0] == (0,)

    def test_stats_accumulate(self):
        eou = make_eou()
        for _ in range(5):
            eou.optimize(dist_with([15, 0, 0, 0]))
        assert eou.stats.optimizations == 5
        assert eou.stats.energy_pj == pytest.approx(5 * 1.27)
        assert eou.stats.tlb_block_cycles == 5

    def test_fixed_point_matches_float_reference(self):
        eou = make_eou()
        patterns = [
            [15, 0, 0, 0], [0, 15, 0, 0], [0, 0, 15, 0], [0, 0, 0, 15],
            [10, 2, 1, 2], [5, 5, 5, 5], [8, 0, 0, 7], [1, 1, 1, 12],
        ]
        for counts in patterns:
            dist = dist_with(counts)
            assert eou.optimize(dist) == eou.optimize_float(dist), counts

    def test_tie_breaks_to_lower_id(self):
        space = SlipSpace((2, 2), (16, 16))
        model = SlipEnergyModel(space, LevelEnergyParams(
            (16, 16), (5.0, 5.0), 5.0, include_insertion_energy=False,
        ))
        eou = EnergyOptimizerUnit(model)
        dist = ReuseDistanceDistribution((16, 32))
        dist.counts = [8, 8, 0]
        winners = [eou.optimize(dist) for _ in range(3)]
        assert len(set(winners)) == 1  # deterministic


# ----------------------------------------------------------------------
# Memoization equivalence: for every input, the memoized optimize()
# (both the miss that populates the cache and the hit that reads it)
# must return exactly what the un-memoized argmin computes.
# ----------------------------------------------------------------------
#: (chunk ways per sublevel, capacities, distribution boundaries,
#:  min_abp_samples) — one entry per distinct SlipSpace shape.
EQUIV_CONFIGS = [
    ((4, 4, 8), (1024, 1024, 2048), (1024, 2048, 4096), 0),
    ((2, 2), (16, 16), (16, 32), 0),
    ((8,), (2048,), (2048,), 0),
    ((4, 4, 8), (1024, 1024, 2048), (1024, 2048, 4096), 8),
]

VECTORS_PER_CONFIG = 1000


def equiv_eou(chunks, caps, min_abp_samples):
    space = SlipSpace(chunks, caps)
    model = SlipEnergyModel(space, LevelEnergyParams(
        caps, tuple(21.0 + 12.0 * i for i in range(len(caps))), 133.0,
    ))
    return EnergyOptimizerUnit(model, min_abp_samples=min_abp_samples)


class TestMemoEquivalence:
    @pytest.mark.parametrize(
        "chunks,caps,bounds,min_abp", EQUIV_CONFIGS,
        ids=lambda v: str(v).replace(" ", ""))
    def test_randomized_vectors_match_direct(self, chunks, caps, bounds,
                                             min_abp):
        import random

        rng = random.Random(20260805)
        eou = equiv_eou(chunks, caps, min_abp)
        num_bins = len(bounds) + 1
        invocations = 0
        for trial in range(VECTORS_PER_CONFIG):
            # Bias one vector in eight toward tiny totals so the cold
            # (< DEFAULT_WARM_SAMPLES) path and the evidence gate see
            # real coverage instead of only saturated counters.
            if trial % 8 == 0:
                counts = [rng.randint(0, 1) for _ in range(num_bins)]
            else:
                counts = [rng.randint(0, 15) for _ in range(num_bins)]
            dist = ReuseDistanceDistribution(bounds)
            dist.counts = counts
            allow_abp = trial % 3 != 2
            evidence = (None, 0, 3, 7, 8, 63)[trial % 6]
            expected = eou.optimize_direct(
                dist, allow_abp=allow_abp, evidence_samples=evidence)
            # Miss (populates the memo), then hit (reads it): both must
            # agree with the fresh argmin, and both must be charged.
            for _ in range(2):
                got = eou.optimize(dist, allow_abp=allow_abp,
                                   evidence_samples=evidence)
                invocations += 1
                assert got == expected, (
                    counts, allow_abp, evidence, chunks, min_abp)
        assert eou.stats.optimizations == invocations
        assert eou.stats.energy_pj == invocations * 1.27
        # The memo never outgrows its key space and actually hit.
        assert 0 < len(eou._memo) <= invocations

    def test_min_abp_samples_gate_blocks_thin_evidence(self):
        eou = equiv_eou((4, 4, 8), (1024, 1024, 2048), 8)
        miss_heavy = ReuseDistanceDistribution((1024, 2048, 4096))
        miss_heavy.counts = [0, 0, 0, 15]
        abp = eou.space.abp_id
        assert eou.optimize(miss_heavy, evidence_samples=7) != abp
        assert eou.optimize(miss_heavy, evidence_samples=8) == abp
        assert eou.optimize(miss_heavy, evidence_samples=None) == abp
        # The gate is part of the memo key: the gated and ungated
        # answers coexist without evicting one another.
        assert eou.optimize(miss_heavy, evidence_samples=7) != abp
        assert eou.optimize_direct(miss_heavy, evidence_samples=7) != abp
        assert eou.optimize_direct(miss_heavy, evidence_samples=8) == abp

    def test_direct_bypasses_stats_and_memo(self):
        eou = equiv_eou((2, 2), (16, 16), 0)
        dist = ReuseDistanceDistribution((16, 32))
        dist.counts = [8, 8, 0]
        eou.optimize_direct(dist)
        assert eou.stats.optimizations == 0
        assert eou._memo == {}
