"""Tests for the wire-geometry energy model against Table 2."""

import pytest

from repro.topology import (
    NODE_22NM,
    NODE_45NM,
    htree_energies,
    l2_geometry_45nm,
    l3_geometry_45nm,
    scale_to_22nm,
    set_interleaved_energies,
)
from repro.topology.geometry import BankArrayGeometry, TechnologyNode

SUBLEVELS = (4, 4, 8)


class TestTechnologyNode:
    def test_45nm_wire_parameters(self):
        assert NODE_45NM.wire_energy_pj_per_bit_mm == 0.16
        assert NODE_45NM.wire_delay_ns_per_mm == 0.3

    def test_wire_energy_per_mm(self):
        # 512 bits at 0.16 pJ/bit/mm with 50% activity.
        assert NODE_45NM.wire_energy_pj_per_mm(512) == pytest.approx(40.96)

    def test_activity_factor_scales(self):
        node = TechnologyNode("x", 0.16, 0.3, activity_factor=1.0)
        assert node.wire_energy_pj_per_mm(100) == pytest.approx(16.0)


class TestL2Geometry:
    def test_reproduces_table2_sublevels(self):
        energies = l2_geometry_45nm().sublevel_energies_pj(SUBLEVELS)
        paper = (21.0, 33.0, 50.0)
        for ours, theirs in zip(energies, paper):
            assert ours == pytest.approx(theirs, rel=0.05)

    def test_reproduces_table2_baseline(self):
        uniform = l2_geometry_45nm().uniform_access_energy_pj()
        assert uniform == pytest.approx(39.0, rel=0.05)

    def test_monotone_with_distance(self):
        geom = l2_geometry_45nm()
        energies = [geom.row_energy_pj(r) for r in range(geom.rows)]
        assert energies == sorted(energies)
        assert energies[0] < energies[-1]

    def test_way_to_row_mapping(self):
        geom = l2_geometry_45nm()
        assert geom.row_of_way(0) == 0
        assert geom.row_of_way(3) == 0
        assert geom.row_of_way(4) == 1
        assert geom.row_of_way(15) == 3

    def test_way_out_of_range(self):
        with pytest.raises(IndexError):
            l2_geometry_45nm().row_of_way(16)


class TestL3Geometry:
    def test_reproduces_table2_sublevels(self):
        energies = l3_geometry_45nm().sublevel_energies_pj(SUBLEVELS)
        paper = (67.0, 113.0, 176.0)
        for ours, theirs in zip(energies, paper):
            assert ours == pytest.approx(theirs, rel=0.05)

    def test_reproduces_table2_baseline(self):
        uniform = l3_geometry_45nm().uniform_access_energy_pj()
        assert uniform == pytest.approx(136.0, rel=0.05)


class TestHTree:
    def test_htree_costs_furthest_row(self):
        geom = l2_geometry_45nm()
        assert geom.htree_access_energy_pj() == pytest.approx(
            geom.row_energy_pj(geom.rows - 1)
        )

    def test_htree_energy_increase_range(self):
        # Paper: +37% L2, +32% L3 for total cache energy; the raw access
        # ratio should land in the same 30-55% band.
        for geom, label in (
            (l2_geometry_45nm(), "L2"),
            (l3_geometry_45nm(), "L3"),
        ):
            ratio = (
                geom.htree_access_energy_pj()
                / geom.uniform_access_energy_pj()
            )
            assert 1.30 < ratio < 1.55, label

    def test_htree_energies_tuple_uniform(self):
        energies = htree_energies(l2_geometry_45nm(), 3)
        assert len(energies) == 3
        assert len(set(energies)) == 1


class TestSetInterleaving:
    def test_uniform_energy_no_movement_incentive(self):
        energies = set_interleaved_energies(l2_geometry_45nm(), 3)
        assert len(set(energies)) == 1
        assert energies[0] == pytest.approx(39.0, rel=0.05)


class Test22nmScaling:
    def test_energies_shrink(self):
        l2_45 = l2_geometry_45nm()
        l2_22 = scale_to_22nm(l2_45)
        assert (
            l2_22.uniform_access_energy_pj()
            < l2_45.uniform_access_energy_pj()
        )

    def test_wire_fraction_grows(self):
        # The Section 6 insight: at 22nm the wire-dependent spread
        # between nearest and furthest sublevel is a *larger* fraction
        # of the mean access energy.
        for make in (l2_geometry_45nm, l3_geometry_45nm):
            old = make()
            new = scale_to_22nm(old)
            def spread(geom):
                e = geom.sublevel_energies_pj(SUBLEVELS)
                return (e[-1] - e[0]) / geom.uniform_access_energy_pj()
            assert spread(new) > spread(old)

    def test_node_swapped(self):
        assert scale_to_22nm(l2_geometry_45nm()).node is NODE_22NM


class TestGeometryValidation:
    def test_ways_must_divide_rows(self):
        with pytest.raises(ValueError):
            BankArrayGeometry(
                name="bad", rows=3, cols=2, ways=16,
                bank_energy_pj=1.0, row_pitch_mm=0.1, node=NODE_45NM,
            )

    def test_sublevel_ways_must_sum(self):
        with pytest.raises(ValueError):
            l2_geometry_45nm().sublevel_energies_pj((4, 4))

    def test_row_latency_increases_with_distance(self):
        geom = l3_geometry_45nm()
        lat = [
            geom.row_latency_cycles(r, frequency_ghz=2.4, base_cycles=10)
            for r in range(geom.rows)
        ]
        assert lat == sorted(lat)
        assert lat[-1] > lat[0]
